#![forbid(unsafe_code)]

//! Umbrella crate for the FDIP reproduction workspace.
//!
//! Re-exports the public API of every member crate so examples and
//! integration tests can use a single dependency. See the individual
//! crates for documentation:
//!
//! * [`fdip_types`] — shared vocabulary (addresses, instruction model).
//! * [`fdip_program`] — synthetic program model and workload suite.
//! * [`fdip_bpred`] — branch-prediction substrate (TAGE, BTB, ITTAGE, RAS,
//!   history management).
//! * [`fdip_mem`] — memory hierarchy (caches, MSHRs, DRAM).
//! * [`fdip_prefetch`] — instruction prefetchers (NL1, FNL+MMA, D-JOLT,
//!   EIP, SN4L+Dis, perfect).
//! * [`fdip_sim`] — the decoupled-frontend cycle-level simulator with FDP,
//!   taken-only target history, and post-fetch correction.
//! * [`fdip_exec`] — the bounded work-stealing job pool every sweep runs on.
//! * [`fdip_harness`] — the per-table/per-figure experiment harness.

pub use fdip_bpred as bpred;
pub use fdip_exec as exec;
pub use fdip_harness as harness;
pub use fdip_mem as mem;
pub use fdip_prefetch as prefetch;
pub use fdip_program as program;
pub use fdip_sim as sim;
pub use fdip_types as types;
