//! Quickstart: build a synthetic workload, run the FDP frontend against
//! the no-FDP baseline, and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fdip_repro::program::workload::{Workload, WorkloadFamily};
use fdip_repro::sim::{run_workload, CoreConfig};

fn main() {
    // 1. Pick a workload. `server_a` is a data-center-style program with
    //    a ~1MB instruction footprint — the kind of frontend-bound code
    //    the paper targets.
    let workload = Workload::family_default("server_a", WorkloadFamily::Server, 101);
    let program = workload.build();
    println!(
        "workload {}: {} KB code, {} static branches",
        program.name(),
        program.image().footprint_bytes() / 1024,
        program.static_branch_count()
    );

    // 2. Run the paper's baseline (no prefetching, no FDP: a 2-entry FTQ
    //    kills the run-ahead) and the improved FDP frontend (24-entry
    //    FTQ, taken-only target history, post-fetch correction).
    let (warmup, measure) = (50_000, 200_000);
    let base = run_workload(&CoreConfig::no_fdp(), &program, warmup, measure);
    let fdp = run_workload(&CoreConfig::fdp(), &program, warmup, measure);

    // 3. Report.
    println!(
        "baseline : IPC {:.3}  branch MPKI {:5.1}  L1I MPKI {:5.1}",
        base.ipc(),
        base.branch_mpki(),
        base.l1i_mpki()
    );
    println!(
        "FDP      : IPC {:.3}  branch MPKI {:5.1}  L1I MPKI {:5.1}",
        fdp.ipc(),
        fdp.branch_mpki(),
        fdp.l1i_mpki()
    );
    println!(
        "FDP speedup: {:+.1}%  (PFC restreams: {}, of which harmful: {})",
        100.0 * (fdp.ipc() / base.ipc() - 1.0),
        fdp.pfc_restreams,
        fdp.pfc_harmful
    );
}
