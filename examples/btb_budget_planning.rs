//! BTB budget planning: an architect's what-if study.
//!
//! Given a fixed transistor budget, is it better spent on a bigger BTB
//! or on a dedicated instruction prefetcher? This example reproduces the
//! paper's §VI-D ISO-budget argument on one server workload, sweeping
//! BTB capacity with and without PFC, and comparing the 8K-BTB frontend
//! against a 4K-BTB + EIP-27KB combination at similar storage.
//!
//! ```text
//! cargo run --release --example btb_budget_planning
//! ```

use fdip_repro::prefetch::PrefetcherKind;
use fdip_repro::program::workload::{Workload, WorkloadFamily};
use fdip_repro::sim::{run_workload, CoreConfig};

fn main() {
    let program = Workload::family_default("server_a", WorkloadFamily::Server, 101).build();
    let (warmup, measure) = (50_000, 300_000);
    let base = run_workload(&CoreConfig::no_fdp(), &program, warmup, measure);

    println!(
        "-- BTB capacity sweep (FDP frontend), {} --",
        program.name()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12}",
        "BTB", "IPC (PFC)", "IPC (no)", "est. bytes", "PFC gain %"
    );
    for entries in [1024usize, 2048, 4096, 8192, 16384, 32768] {
        let on = run_workload(
            &CoreConfig::fdp().with_btb_entries(entries),
            &program,
            warmup,
            measure,
        );
        let off = run_workload(
            &CoreConfig::fdp().with_btb_entries(entries).with_pfc(false),
            &program,
            warmup,
            measure,
        );
        println!(
            "{:>7}K {:>10.3} {:>10.3} {:>12} {:>+11.1}%",
            entries / 1024,
            on.ipc(),
            off.ipc(),
            on.btb.allocs.min(entries as u64) * 7, // paper's 7B/branch estimate
            100.0 * (on.ipc() / off.ipc() - 1.0),
        );
    }

    println!();
    println!("-- ISO-budget: 8K BTB vs 4K BTB + EIP-27KB (both ~56KB of state) --");
    for (label, cfg) in [
        ("8K-BTB        ", CoreConfig::fdp().with_btb_entries(8192)),
        (
            "4K-BTB+EIP27KB",
            CoreConfig::fdp()
                .with_btb_entries(4096)
                .with_prefetcher(PrefetcherKind::Eip27),
        ),
        ("4K-BTB        ", CoreConfig::fdp().with_btb_entries(4096)),
    ] {
        let s = run_workload(&cfg, &program, warmup, measure);
        println!(
            "{label}  speedup {:+6.1}%  MPKI {:5.2}  starvation/KI {:6.1}  I$ tag/KI {:7.1}",
            100.0 * (s.ipc() / base.ipc() - 1.0),
            s.branch_mpki(),
            s.starvation_pki(),
            s.icache_tag_pki(),
        );
    }
    println!("\nThe paper's conclusion (§VI-D): the two ISO-budget options perform");
    println!("similarly, but the prefetcher multiplies I-cache tag traffic — spend");
    println!("the budget on the BTB.");
}
