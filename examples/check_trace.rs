//! Validate a `fdip-run --trace` Chrome trace_event file with the
//! in-repo JSON parser: the document must parse, carry a non-empty
//! `traceEvents` array, and its event timestamps must be non-decreasing
//! (the exporter sorts by `ts` so Perfetto and `chrome://tracing` never
//! see out-of-order events). `scripts/verify.sh` runs this as the trace
//! smoke check.
//!
//! ```text
//! cargo run --example check_trace -- trace.json
//! ```

use fdip_telemetry::Json;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: check_trace <trace.json>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")));
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail("no traceEvents array"));

    let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut last_ts = f64::NEG_INFINITY;
    let mut timed = 0u64;
    let mut slices = 0u64;
    for e in events {
        let phase = e
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail("event without ph"));
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail("event without name"));
        if phase == "M" {
            continue; // metadata events carry no timestamp
        }
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(&format!("{name} event without numeric ts")));
        if ts < last_ts {
            fail(&format!("ts went backwards at {name}: {ts} < {last_ts}"));
        }
        last_ts = ts;
        timed += 1;
        if phase == "X" {
            slices += 1;
            if e.get("dur").and_then(Json::as_f64).is_none() {
                fail(&format!("{name} slice without numeric dur"));
            }
        }
        *counts.entry(name.to_string()).or_default() += 1;
    }
    if timed == 0 {
        fail("trace holds no timestamped events");
    }
    if slices == 0 {
        fail("trace holds no cycle-attribution slices");
    }
    for (name, n) in &counts {
        println!("{name:<24} {n}");
    }
    println!("ok: {timed} events, monotonic ts");
}
