//! Frontend extensions beyond the paper's baseline: the loop predictor
//! (§II-A) and the two-level BTB hierarchy (§II-A), exercised on
//! targeted microbenchmark-style workloads.
//!
//! ```text
//! cargo run --release --example frontend_extensions
//! ```

use fdip_repro::bpred::{TwoLevelBtb, TwoLevelBtbConfig};
use fdip_repro::program::{ProgramBuilder, ProgramParams};
use fdip_repro::sim::{run_workload, CoreConfig};
use fdip_repro::types::{Addr, BranchKind};

fn main() {
    // --- Loop predictor: long fixed-trip loops whose exits sit beyond
    // TAGE's 260-bit history window.
    let loopy = ProgramBuilder::new(ProgramParams {
        seed: 77,
        num_funcs: 64,
        loop_fraction: 0.45,
        loop_trip: (300, 900),
        cond_fraction: 0.55,
        strongly_biased_fraction: 0.3,
        ..ProgramParams::default()
    })
    .build("long_loops");

    let base = run_workload(&CoreConfig::fdp(), &loopy, 20_000, 200_000);
    let with_lp = run_workload(
        &CoreConfig {
            loop_predictor: true,
            ..CoreConfig::fdp()
        },
        &loopy,
        20_000,
        200_000,
    );
    println!("-- loop predictor on {} --", loopy.name());
    println!(
        "TAGE only      : IPC {:.3}, {} mispredictions",
        base.ipc(),
        base.mispredicts
    );
    println!(
        "TAGE + loop    : IPC {:.3}, {} mispredictions ({:+.0}%)",
        with_lp.ipc(),
        with_lp.mispredicts,
        100.0 * (with_lp.mispredicts as f64 / base.mispredicts.max(1) as f64 - 1.0)
    );

    // --- Two-level BTB: the hot/cold split a commercial hierarchy
    // exploits (fast small L1 BTB backed by the paper's 8K L2).
    println!("\n-- two-level BTB (1K L1 @ 1 cycle + 8K L2 @ 2 cycles) --");
    let mut btb = TwoLevelBtb::new(TwoLevelBtbConfig::default());
    for i in 0..6000u64 {
        btb.insert(
            Addr::new(0x10_0000 + i * 12),
            BranchKind::CondDirect,
            Addr::new(0x20_0000),
        );
    }
    // A zipf-ish access pattern: a hot set dominating, cold tail behind.
    for round in 0..200u64 {
        for i in 0..200u64 {
            let idx = if (round + i) % 10 < 8 {
                i % 256
            } else {
                (i * 37) % 6000
            };
            btb.lookup(Addr::new(0x10_0000 + idx * 12));
        }
    }
    let s = btb.stats();
    let total = s.l1_hits + s.l2_hits + s.misses;
    println!(
        "lookups {total}: {:.1}% served in 1 cycle (L1), {:.1}% promoted from L2, {:.1}% missed",
        100.0 * s.l1_hits as f64 / total as f64,
        100.0 * s.l2_hits as f64 / total as f64,
        100.0 * s.misses as f64 / total as f64,
    );
    println!(
        "storage: {} KB total at the paper's 7 B/branch estimate",
        btb.estimated_bytes() / 1024
    );
}
