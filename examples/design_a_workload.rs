//! Designing a custom synthetic workload with the program-model API.
//!
//! Shows how to go below the stock suite: tune `ProgramParams` to shape
//! instruction footprint, branch mix, and call-graph structure, then
//! verify the resulting frontend behaviour. Useful for generating
//! targeted stress tests (e.g. "what does a 100%-indirect dispatch loop
//! do to the FTQ?").
//!
//! ```text
//! cargo run --release --example design_a_workload
//! ```

use fdip_repro::program::{ProgramBuilder, ProgramParams};
use fdip_repro::sim::{run_workload, CoreConfig};

fn main() {
    // A pathological "virtual-machine dispatch" workload: a huge flat
    // function pool driven almost entirely by indirect calls, with
    // unpredictable targets.
    let vm_dispatch = ProgramParams {
        seed: 7,
        num_funcs: 1500,
        blocks_per_func: (2, 5),
        instrs_per_block: (3, 7),
        call_levels: 2,
        cond_fraction: 0.25,
        call_fraction: 0.45,
        jump_fraction: 0.05,
        indirect_jump_fraction: 0.05,
        indirect_call_fraction: 0.8,
        strongly_biased_fraction: 0.6,
        loop_fraction: 0.05,
        pattern_fraction: 0.1,
        loop_trip: (2, 8),
        mem_fraction: 0.3,
        dispatcher_fanout: 256,
    };
    // A loop-nest workload: deep trip-count loops, tiny footprint.
    let loop_nest = ProgramParams {
        seed: 7,
        num_funcs: 40,
        loop_fraction: 0.5,
        loop_trip: (16, 120),
        cond_fraction: 0.6,
        call_fraction: 0.08,
        dispatcher_fanout: 8,
        ..ProgramParams::default()
    };

    for (name, params) in [("vm_dispatch", vm_dispatch), ("loop_nest", loop_nest)] {
        let program = ProgramBuilder::new(params).build(name);
        let base = run_workload(&CoreConfig::no_fdp(), &program, 30_000, 150_000);
        let fdp = run_workload(&CoreConfig::fdp(), &program, 30_000, 150_000);
        println!(
            "{name:12} footprint {:5} KB, {:5} branches | base IPC {:.3} -> FDP IPC {:.3} ({:+.1}%), \
             MPKI {:.1}, indirect misp. {}",
            program.image().footprint_bytes() / 1024,
            program.static_branch_count(),
            base.ipc(),
            fdp.ipc(),
            100.0 * (fdp.ipc() / base.ipc() - 1.0),
            fdp.branch_mpki(),
            fdp.misp_indirect,
        );
    }
    println!("\nIndirect-heavy dispatch stresses ITTAGE and caps FDP's benefit;");
    println!("loop nests barely touch the I-cache and gain almost nothing — the");
    println!("paper's motivation workloads live between these extremes.");
}
