//! Strip the volatile manifest fields from a harness JSON document so
//! two runs can be compared byte-for-byte.
//!
//! `fdip-run --json` / `fdip-experiments --json` documents are fully
//! deterministic except for four manifest fields: `wall_seconds`,
//! `generated_unix`, `git_revision`, and the `pool` telemetry block
//! (docs/METRICS.md). This example removes exactly those and prints the
//! rest, which `scripts/verify.sh` uses to check that a 1-worker and a
//! 2-worker run (`FDIP_JOBS`) produce identical results:
//!
//! ```text
//! cargo run --example strip_results -- results.json > stripped.json
//! ```

use fdip_telemetry::Json;

const VOLATILE_MANIFEST_KEYS: [&str; 4] =
    ["wall_seconds", "generated_unix", "git_revision", "pool"];

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: strip_results <results.json>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    if let Json::Obj(fields) = &mut doc {
        for (key, value) in fields.iter_mut() {
            if key == "manifest" {
                if let Json::Obj(manifest) = value {
                    manifest.retain(|(k, _)| !VOLATILE_MANIFEST_KEYS.contains(&k.as_str()));
                }
            }
        }
    }
    // The observability blocks are load-bearing for downstream diffing:
    // refuse to emit a document that lost them.
    for w in doc.get("workloads").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = w.get("name").and_then(Json::as_str).unwrap_or("?");
        let counters = w.get("counters");
        let has_stalls = counters.and_then(|c| c.get("stall_cycles")).is_some();
        let has_outcomes = counters
            .and_then(|c| c.get("l1i"))
            .and_then(|c| c.get("prefetch_outcomes"))
            .is_some();
        if !has_stalls || !has_outcomes {
            eprintln!("error: workload {name} lost its stall_cycles/prefetch_outcomes blocks");
            std::process::exit(1);
        }
    }
    println!("{}", doc.to_string_pretty());
}
