//! History-policy audit: why commercial cores use taken-only target
//! history.
//!
//! Replays the paper's §VI-C study on one workload: all six Table V
//! history-management policies (THR, Ideal, GHR0–GHR3), with the
//! mechanism columns that explain the results — misprediction rate,
//! history-fixup frontend flushes, and BTB pressure from not-taken
//! allocation.
//!
//! ```text
//! cargo run --release --example history_policy_audit
//! ```

use fdip_repro::bpred::HistoryPolicy;
use fdip_repro::program::workload::{Workload, WorkloadFamily};
use fdip_repro::sim::{run_workload, CoreConfig};

fn main() {
    let program = Workload::family_default("client_a", WorkloadFamily::Client, 201).build();
    let (warmup, measure) = (50_000, 300_000);
    let base = run_workload(&CoreConfig::no_fdp(), &program, warmup, measure);

    println!(
        "workload {}: Table V history-management policies\n",
        program.name()
    );
    println!(
        "{:>6} {:>10} {:>8} {:>12} {:>12} {:>12}",
        "policy", "speedup %", "MPKI", "fixups/KI", "BTB allocs", "note"
    );
    for policy in HistoryPolicy::ALL {
        let s = run_workload(
            &CoreConfig::fdp().with_policy(policy),
            &program,
            warmup,
            measure,
        );
        let note = match policy {
            HistoryPolicy::Thr => "taken-only target hash",
            HistoryPolicy::Ideal => "oracle detection bound",
            HistoryPolicy::Ghr0 => "holes in history",
            HistoryPolicy::Ghr1 => "holes + BTB pollution",
            HistoryPolicy::Ghr2 => "repair flushes",
            HistoryPolicy::Ghr3 => "academic default",
        };
        println!(
            "{:>6} {:>+9.1}% {:>8.2} {:>12.2} {:>12} {:>17}",
            policy.label(),
            100.0 * (s.ipc() / base.ipc() - 1.0),
            s.branch_mpki(),
            1000.0 * s.fixup_flushes as f64 / s.retired.max(1) as f64,
            s.btb.allocs,
            note
        );
    }
    println!("\nExpected shape (paper Fig. 8): THR ~ Ideal at the top; GHR2/GHR3 pay");
    println!("for history-repair flushes; GHR0/GHR1 pay in mispredictions.");
}
