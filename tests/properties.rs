//! Property-based tests over the core data structures and invariants,
//! exercised through the public API of the workspace crates.

use fdip_bpred::{Btb, BtbConfig, FoldPlan, GlobalHistory, Ras};
use fdip_harness::geomean;
use fdip_mem::{Cache, CacheConfig, FillSrc, Lookup};
use fdip_program::{ExecutionEngine, ProgramBuilder, ProgramParams};
use fdip_sim::{Ftq, FtqEntry};
use fdip_types::{Addr, BranchKind};
use proptest::prelude::*;

proptest! {
    /// Incremental fold maintenance must equal recomputation from the
    /// raw history, for arbitrary push sequences.
    #[test]
    fn folds_match_recompute(pushes in prop::collection::vec((0u64..0x1_0000, 1u32..3), 1..300)) {
        let mut plan = FoldPlan::new();
        for (len, out) in [(7u32, 9u32), (23, 10), (64, 11), (130, 12), (260, 9)] {
            plan.register(len, out);
        }
        let mut h = GlobalHistory::new();
        let mut f = plan.initial();
        for (inject, k) in pushes {
            plan.push(&mut f, &h, inject, k);
            h.push_bits(inject, k);
        }
        prop_assert_eq!(f, plan.recompute(&h));
    }

    /// `GlobalHistory::fold` only depends on the most recent `len` bits.
    #[test]
    fn fold_window_is_respected(
        prefix in prop::collection::vec(any::<bool>(), 0..100),
        suffix in prop::collection::vec(any::<bool>(), 64..100),
    ) {
        let mut a = GlobalHistory::new();
        let mut b = GlobalHistory::new();
        for &bit in &prefix {
            a.push_direction(bit);
        }
        // b skips the prefix entirely.
        for &bit in &suffix {
            a.push_direction(bit);
            b.push_direction(bit);
        }
        let len = suffix.len() as u32;
        prop_assert_eq!(a.fold(len, 11), b.fold(len, 11));
    }

    /// The RAS behaves exactly like a depth-bounded stack.
    #[test]
    fn ras_matches_reference_stack(ops in prop::collection::vec(prop::option::of(1u64..1_000_000), 1..200)) {
        let mut ras = Ras::new();
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    ras.push(Addr::new(v));
                    model.push(v);
                    if model.len() > fdip_bpred::RAS_DEPTH {
                        model.remove(0);
                    }
                }
                None => {
                    let got = ras.pop().map(Addr::raw);
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(ras.len(), model.len());
            prop_assert_eq!(ras.top().map(Addr::raw), model.last().copied());
        }
    }

    /// The BTB never exceeds capacity and always serves the most recent
    /// target for a present branch.
    #[test]
    fn btb_capacity_and_recency(branches in prop::collection::vec((0u64..4096, 0u64..1_000_000), 1..500)) {
        let mut btb = Btb::new(BtbConfig { entries: 64, assoc: 4 });
        let mut last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (slot, target) in branches {
            let pc = Addr::new(0x1000 + slot * 4);
            btb.insert(pc, BranchKind::CondDirect, Addr::new(0x2000 + target * 4));
            last.insert(pc.raw(), 0x2000 + target * 4);
            prop_assert!(btb.occupancy() <= 64);
            // If still present, the target must be the latest one.
            if let Some(e) = btb.peek(pc) {
                prop_assert_eq!(e.target.raw(), last[&pc.raw()]);
            }
        }
    }

    /// A cache line that was just filled and not since evicted must hit;
    /// occupancy never exceeds capacity.
    #[test]
    fn cache_is_a_bounded_set(lines in prop::collection::vec(0u64..256, 1..400)) {
        let mut c = Cache::new("P", CacheConfig {
            size_bytes: 4096, assoc: 4, line_bytes: 64, hit_latency: 1, mshrs: 8,
        });
        let capacity = 4096 / 64;
        for (t, &line) in lines.iter().enumerate() {
            let now = t as u64 * 10;
            match c.probe_demand(line, now) {
                Lookup::Hit(ready) => prop_assert!(ready >= now),
                Lookup::Miss => c.fill(line, now + 5, FillSrc::Demand),
            }
            // Immediately after a fill/probe the line is present.
            prop_assert!(c.contains(line));
            prop_assert!(c.occupancy() <= capacity);
        }
    }

    /// Any generated program yields a contiguous committed path whose
    /// branches respect their static kinds.
    #[test]
    fn engine_stream_is_well_formed(seed in 0u64..5_000, num_funcs in 8usize..40) {
        let program = ProgramBuilder::new(ProgramParams {
            seed,
            num_funcs,
            ..ProgramParams::default()
        })
        .build("prop");
        let mut eng = ExecutionEngine::new(&program, seed ^ 0xabc);
        let mut prev_next = program.entry();
        for _ in 0..2_000 {
            let d = eng.step();
            prop_assert_eq!(d.pc, prev_next);
            if let Some(kind) = d.kind.branch_kind() {
                if kind.is_unconditional() {
                    prop_assert!(d.taken);
                }
                if kind.is_direct() && d.taken {
                    // Taken direct branches land on their static target.
                    let st = program.image().instr_at(d.pc).kind.static_target();
                    prop_assert_eq!(Some(d.next_pc), st);
                }
            } else {
                prop_assert!(!d.taken);
                prop_assert_eq!(d.next_pc, d.pc.next_instr());
            }
            prev_next = d.next_pc;
        }
    }

    /// The Table III overhead formula: 65 bits per entry.
    #[test]
    fn ftq_overhead_scales_linearly(entries in 1usize..512) {
        prop_assert_eq!(fdip_sim::ftq_overhead_bytes(entries), entries * 65 / 8);
    }

    /// A fold to `out` bits always fits in `out` bits, for any history
    /// content and any registered window.
    #[test]
    fn fold_width_is_bounded(
        pushes in prop::collection::vec((any::<u64>(), 1u32..3), 0..200),
        len in 1u32..512,
        out in 1u32..32,
    ) {
        let mut h = GlobalHistory::new();
        for (inject, k) in pushes {
            h.push_bits(inject, k);
        }
        prop_assert!(h.fold(len, out) < 1u64 << out);
    }

    /// FTQ occupancy never exceeds capacity under arbitrary sequences of
    /// gated pushes, head pops and (partial) flushes, and `free`/`len`/
    /// `is_empty` stay mutually consistent.
    #[test]
    fn ftq_occupancy_is_bounded(
        capacity in 1usize..33,
        ops in prop::collection::vec((0u8..4, 0usize..8), 1..300),
    ) {
        let mut ftq = Ftq::new(capacity);
        for (op, arg) in ops {
            match op {
                // Pushes are gated on free(), as the frontend gates.
                0 | 1 => {
                    if ftq.free() > 0 {
                        ftq.push(FtqEntry::new(Addr::new(0x4000), arg));
                    }
                }
                2 => {
                    ftq.pop_head();
                }
                _ => {
                    if ftq.is_empty() || arg % 2 == 0 {
                        ftq.flush_all();
                        prop_assert!(ftq.is_empty());
                    } else {
                        let idx = arg % ftq.len();
                        ftq.flush_younger_than(idx);
                        prop_assert!(ftq.len() <= idx + 1);
                    }
                }
            }
            prop_assert!(ftq.len() <= ftq.capacity());
            prop_assert_eq!(ftq.free(), ftq.capacity() - ftq.len());
            prop_assert_eq!(ftq.is_empty(), ftq.free() == ftq.capacity());
        }
    }

    /// The suite geomean is order-free (any permutation reachable by
    /// reversal/rotation gives the same value) and sits between the
    /// smallest and largest input.
    #[test]
    fn geomean_is_order_free_and_bounded(
        raw in prop::collection::vec(1u64..10_000, 1..24),
        rot in 0usize..24,
    ) {
        let vals: Vec<f64> = raw.iter().map(|&v| v as f64 / 100.0).collect();
        let g = geomean(&vals);
        let mut rev = vals.clone();
        rev.reverse();
        let mut rotated = vals.clone();
        rotated.rotate_left(rot % vals.len());
        let close = |a: f64, b: f64| ((a - b) / b).abs() < 1e-9;
        prop_assert!(close(geomean(&rev), g));
        prop_assert!(close(geomean(&rotated), g));
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(g >= min * (1.0 - 1e-9));
        prop_assert!(g <= max * (1.0 + 1e-9));
    }
}

/// Simulation results must be identical across runs (full determinism),
/// including under different thread interleavings of the runner.
#[test]
fn simulation_is_deterministic_across_runs() {
    use fdip_program::workload::{Workload, WorkloadFamily};
    use fdip_sim::{run_workload, CoreConfig};
    let program = Workload::family_default("det", WorkloadFamily::Client, 9).build();
    let a = run_workload(&CoreConfig::fdp(), &program, 5_000, 20_000);
    let b = run_workload(&CoreConfig::fdp(), &program, 5_000, 20_000);
    assert_eq!(a, b);
}
