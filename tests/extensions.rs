//! Integration tests for the extension features beyond the paper's
//! baseline design: the loop predictor (§II-A), the two-level BTB
//! (§II-A), and the RDIP prefetcher (§VII-A).

use fdip_bpred::{BtbLevel, TwoLevelBtb, TwoLevelBtbConfig};
use fdip_prefetch::PrefetcherKind;
use fdip_program::{ProgramBuilder, ProgramParams};
use fdip_sim::{run_workload, CoreConfig};
use fdip_types::{Addr, BranchKind};

fn loopy_program() -> fdip_program::Program {
    ProgramBuilder::new(ProgramParams {
        seed: 77,
        num_funcs: 64,
        loop_fraction: 0.45,
        // Trip counts beyond TAGE's 260-bit history window: global
        // history cannot time these exits, a loop predictor can.
        loop_trip: (300, 900),
        cond_fraction: 0.55,
        strongly_biased_fraction: 0.3,
        ..ProgramParams::default()
    })
    .build("loopy")
}

#[test]
fn loop_predictor_reduces_mispredictions_on_loop_heavy_code() {
    // Long fixed-trip loops exceed what a 260-bit history can separate;
    // the loop predictor catches their exits exactly.
    let p = loopy_program();
    let base = run_workload(&CoreConfig::fdp(), &p, 20_000, 150_000);
    let with_lp = run_workload(
        &CoreConfig {
            loop_predictor: true,
            ..CoreConfig::fdp()
        },
        &p,
        20_000,
        150_000,
    );
    assert!(
        with_lp.mispredicts < base.mispredicts,
        "loop predictor must reduce mispredictions: {} vs {}",
        with_lp.mispredicts,
        base.mispredicts
    );
    assert!(
        with_lp.ipc() >= base.ipc() * 0.99,
        "loop predictor should not cost IPC: {:.3} vs {:.3}",
        with_lp.ipc(),
        base.ipc()
    );
}

#[test]
fn loop_predictor_is_neutral_on_loop_poor_code() {
    let p = ProgramBuilder::new(ProgramParams {
        seed: 78,
        num_funcs: 64,
        loop_fraction: 0.0,
        ..ProgramParams::default()
    })
    .build("no-loops");
    let base = run_workload(&CoreConfig::fdp(), &p, 10_000, 80_000);
    let with_lp = run_workload(
        &CoreConfig {
            loop_predictor: true,
            ..CoreConfig::fdp()
        },
        &p,
        10_000,
        80_000,
    );
    let delta = (with_lp.ipc() / base.ipc() - 1.0).abs();
    assert!(
        delta < 0.02,
        "loop predictor should be near-neutral: {delta:.4}"
    );
}

#[test]
fn two_level_btb_serves_hot_branches_fast_and_cold_from_l2() {
    let mut btb = TwoLevelBtb::new(TwoLevelBtbConfig::default());
    // Install a working set larger than the L1 level.
    for i in 0..3000u64 {
        btb.insert(
            Addr::new(0x10_0000 + i * 12),
            BranchKind::CondDirect,
            Addr::new(0x20_0000),
        );
    }
    // Touch a hot subset repeatedly: after promotion every hit is L1.
    let hot: Vec<Addr> = (0..64).map(|i| Addr::new(0x10_0000 + i * 12)).collect();
    for _ in 0..3 {
        for &pc in &hot {
            btb.lookup(pc);
        }
    }
    let (_, level, lat) = btb.lookup(hot[0]).expect("hot hit");
    assert_eq!(level, BtbLevel::L1);
    assert_eq!(lat, 1);
    let s = btb.stats();
    assert!(s.l1_hits > s.l2_hits, "{s:?}");
    assert!(s.l2_hits > 0, "cold entries must have been promoted: {s:?}");
}

#[test]
fn rdip_runs_end_to_end_and_does_no_harm() {
    let p = ProgramBuilder::new(ProgramParams {
        seed: 79,
        num_funcs: 400,
        call_fraction: 0.3,
        ..ProgramParams::default()
    })
    .build("cally");
    let base = run_workload(&CoreConfig::no_fdp(), &p, 20_000, 120_000);
    let rdip = run_workload(
        &CoreConfig::no_fdp().with_prefetcher(PrefetcherKind::Rdip),
        &p,
        20_000,
        120_000,
    );
    assert!(
        rdip.ipc() >= base.ipc() * 0.98,
        "RDIP should not regress IPC: {:.3} vs {:.3}",
        rdip.ipc(),
        base.ipc()
    );
    assert!(rdip.prefetch_candidates > 0, "RDIP must emit prefetches");
}

#[test]
fn extension_features_compose() {
    // Loop predictor + prefetcher + small BTB all together: still
    // deterministic and still beats the no-FDP baseline.
    let p = loopy_program();
    let cfg = CoreConfig {
        loop_predictor: true,
        ..CoreConfig::fdp()
            .with_btb_entries(2048)
            .with_prefetcher(PrefetcherKind::NextLine)
    };
    let a = run_workload(&cfg, &p, 10_000, 80_000);
    let b = run_workload(&cfg, &p, 10_000, 80_000);
    assert_eq!(a, b, "composition must stay deterministic");
    let base = run_workload(&CoreConfig::no_fdp(), &p, 10_000, 80_000);
    assert!(a.ipc() > base.ipc());
}
