//! End-to-end guarantees of the `fdip-serve` daemon (`docs/SERVE.md`
//! §"Determinism guarantee"):
//!
//! * a grid submitted twice is served entirely from the
//!   content-addressed cache the second time, and both responses carry
//!   byte-identical results that match a direct local run;
//! * a daemon killed mid-grid resumes from its checkpoint journal
//!   without re-simulating the cells that already reached the cache.

use std::path::PathBuf;

use fdip_harness::remote::{
    grid_request, http_json_request, RemoteClient, GRID_PATH, TELEMETRY_PATH,
};
use fdip_harness::Runner;
use fdip_serve::{Server, ServerConfig};
use fdip_sim::CoreConfig;
use fdip_telemetry::{Json, ToJson};

const WARMUP: u64 = 500;
const MEASURE: u64 = 2_000;

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdip-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cache_entries(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir.join("cache"))
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                .count()
        })
        .unwrap_or(0)
}

/// Serializes a response's cells to the stripped per-cell form used for
/// determinism diffs: just the stats and dists documents, in order.
fn stripped_cells(response: &Json) -> Vec<String> {
    response
        .get("cells")
        .and_then(Json::as_arr)
        .expect("cells")
        .iter()
        .map(|c| {
            format!(
                "{}|{}",
                c.get("stats").expect("stats").to_string(),
                c.get("dists").expect("dists").to_string()
            )
        })
        .collect()
}

/// The same stripped per-cell form for a local `run_configs_detailed`
/// grid, flattened in the response's config-major order.
fn strip_local(grid: &[Vec<(fdip_sim::SimStats, fdip_sim::SimDists)>]) -> Vec<String> {
    grid.iter()
        .flatten()
        .map(|(stats, dists)| {
            format!(
                "{}|{}",
                stats.to_json().to_string(),
                dists.to_json().to_string()
            )
        })
        .collect()
}

fn stats_of(grid: &[Vec<(fdip_sim::SimStats, fdip_sim::SimDists)>]) -> Vec<fdip_sim::SimStats> {
    grid.iter().flatten().map(|(s, _)| *s).collect()
}

#[test]
fn second_submission_hits_cache_and_matches_local_run_byte_for_byte() {
    let dir = state_dir("cache");
    let mut config = ServerConfig::new(dir.clone());
    config.jobs = Some(2);
    let server = Server::spawn(config).expect("server spawns");
    let addr = server.addr().to_string();
    let cfgs = [CoreConfig::no_fdp(), CoreConfig::fdp()];

    // First submission simulates every cell.
    let request = grid_request("e2e", "quick", WARMUP, MEASURE, &cfgs);
    let (status, first) =
        http_json_request(&addr, "POST", GRID_PATH, Some(&request)).expect("first grid");
    assert_eq!(status, 200, "{first:?}");
    let summary = first.get("summary").expect("summary");
    let total = summary.get("total_cells").and_then(Json::as_u64).unwrap();
    assert_eq!(summary.get("simulated").and_then(Json::as_u64), Some(total));
    assert_eq!(summary.get("cache_hits").and_then(Json::as_u64), Some(0));

    // Second submission: 100% cache hits, zero simulation, and the
    // stripped result payload is byte-identical.
    let (status, second) =
        http_json_request(&addr, "POST", GRID_PATH, Some(&request)).expect("second grid");
    assert_eq!(status, 200, "{second:?}");
    let summary = second.get("summary").expect("summary");
    assert_eq!(
        summary.get("cache_hits").and_then(Json::as_u64),
        Some(total),
        "second pass must be served entirely from the cache"
    );
    assert_eq!(summary.get("simulated").and_then(Json::as_u64), Some(0));
    assert_eq!(second.get("grid_id"), first.get("grid_id"));
    assert_eq!(stripped_cells(&first), stripped_cells(&second));
    for cell in second.get("cells").and_then(Json::as_arr).unwrap() {
        assert_eq!(cell.get("cache_hit").and_then(Json::as_bool), Some(true));
    }

    // Both must match a direct local run byte-for-byte once stripped to
    // the stats/dists documents.
    let local = Runner::quick(WARMUP, MEASURE).run_configs_detailed(&cfgs);
    assert_eq!(stripped_cells(&first), strip_local(&local));

    // The typed client and the server-backed Runner agree with the
    // local Runner: raw counters by PartialEq, the full result document
    // (dists carry unserialized sampling-accumulator state) byte-wise.
    let via_client = RemoteClient::new(&addr, "e2e-client")
        .run_grid("quick", WARMUP, MEASURE, &cfgs, local[0].len())
        .expect("client grid");
    assert_eq!(stats_of(&via_client), stats_of(&local));
    assert_eq!(strip_local(&via_client), strip_local(&local));
    let via_runner = Runner::quick(WARMUP, MEASURE)
        .with_server(&addr, "e2e-runner")
        .run_configs_detailed(&cfgs);
    assert_eq!(stats_of(&via_runner), stats_of(&local));
    assert_eq!(strip_local(&via_runner), strip_local(&local));

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_daemon_resumes_from_journal_without_resimulating() {
    let dir = state_dir("resume");
    let cfgs = [CoreConfig::no_fdp(), CoreConfig::fdp()];
    let request = grid_request("e2e", "quick", WARMUP, MEASURE, &cfgs);

    // Phase 1: a daemon rigged to die after two simulated cells. A
    // single-worker pool makes the kill point deterministic.
    let mut config = ServerConfig::new(dir.clone());
    config.jobs = Some(1);
    config.crash_after_cells = Some(2);
    let server = Server::spawn(config).expect("server spawns");
    let addr = server.addr().to_string();
    let (status, body) = http_json_request(&addr, "POST", GRID_PATH, Some(&request)).unwrap();
    assert_eq!(status, 503, "{body:?}");
    server.join();

    // Exactly the two committed cells survive on disk, and the journal
    // still holds the grid's begin record (no end record).
    assert_eq!(cache_entries(&dir), 2);
    let journal = std::fs::read_to_string(dir.join("journal.log")).expect("journal");
    assert!(journal.contains("grid_begin"), "{journal}");
    assert!(!journal.contains("grid_end"), "{journal}");

    // Phase 2: a fresh daemon on the same state dir resumes the grid in
    // the background; the client's resubmission coalesces with it.
    let mut config = ServerConfig::new(dir.clone());
    config.jobs = Some(1);
    let server = Server::spawn(config).expect("server respawns");
    let addr = server.addr().to_string();
    let (status, response) = http_json_request(&addr, "POST", GRID_PATH, Some(&request)).unwrap();
    assert_eq!(status, 200, "{response:?}");
    let summary = response.get("summary").expect("summary");
    let total = summary.get("total_cells").and_then(Json::as_u64).unwrap();
    assert_eq!(total, 6); // 2 configs × 3 quick-suite workloads
    assert_eq!(
        summary.get("cache_hits").and_then(Json::as_u64).unwrap()
            + summary.get("simulated").and_then(Json::as_u64).unwrap()
            + summary.get("coalesced").and_then(Json::as_u64).unwrap(),
        total
    );

    // The load-bearing assertion: across the background resume AND the
    // resubmission, only the four missing cells were simulated — the
    // two cells committed before the kill were never re-run.
    let (status, telemetry) = http_json_request(&addr, "GET", TELEMETRY_PATH, None).unwrap();
    assert_eq!(status, 200);
    let simulated = telemetry
        .get("serve")
        .and_then(|s| s.get("cells"))
        .and_then(|c| c.get("simulated"))
        .and_then(Json::as_u64)
        .expect("serve.cells.simulated");
    assert_eq!(
        simulated,
        total - 2,
        "resume must not re-simulate journaled/cached cells: {telemetry:?}"
    );

    // The served results still match a direct local run exactly.
    let local = Runner::quick(WARMUP, MEASURE).run_configs_detailed(&cfgs);
    assert_eq!(stripped_cells(&response), strip_local(&local));

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runner_falls_back_to_local_when_the_server_is_unreachable() {
    // Grab an ephemeral port, then close it: connections are refused.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let cfgs = [CoreConfig::fdp()];
    let local = Runner::quick(WARMUP, MEASURE).run_configs_detailed(&cfgs);
    let via_fallback = Runner::quick(WARMUP, MEASURE)
        .with_server(&dead, "e2e-fallback")
        .run_configs_detailed(&cfgs);
    assert_eq!(via_fallback, local, "fallback must produce local results");
}
