//! Bidirectional enforcement of the metric catalog in
//! `docs/OBSERVABILITY.md`:
//!
//! * **exposed → documented**: every family a live daemon's
//!   `/v1/metrics` scrape exposes appears in the doc's catalog tables,
//!   with the same type, and its samples only carry documented labels;
//! * **documented → real**: every documented `fdip_serve_` /
//!   `fdip_exec_` family shows up on the scrape, and every documented
//!   `fdip_client_` family is registered in the process-global registry
//!   once the remote client paths have been exercised.
//!
//! The catalog rows are parsed straight out of the markdown tables, so
//! renaming a metric without updating the doc (or vice versa) fails here.

use std::collections::BTreeMap;
use std::path::PathBuf;

use fdip_harness::remote::{http_text_request, RemoteClient, METRICS_PATH};
use fdip_harness::Runner;
use fdip_obs::expo;
use fdip_serve::{Server, ServerConfig};
use fdip_sim::CoreConfig;

fn doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/OBSERVABILITY.md");
    std::fs::read_to_string(path).expect("docs/OBSERVABILITY.md exists")
}

/// A catalog row: family name → (type cell, labels cell).
fn documented_families(doc: &str) -> BTreeMap<String, (String, String)> {
    let mut out = BTreeMap::new();
    for line in doc.lines() {
        let cols: Vec<&str> = line.split('|').map(str::trim).collect();
        // `| `name` | kind | labels | meaning |` splits into
        // ["", "`name`", kind, labels, meaning, ""].
        if cols.len() < 5 {
            continue;
        }
        let Some(name) = cols[1].strip_prefix('`').and_then(|s| s.strip_suffix('`')) else {
            continue;
        };
        if name.starts_with("fdip_") {
            let prior = out.insert(name.to_string(), (cols[2].to_string(), cols[3].to_string()));
            assert!(prior.is_none(), "{name} is catalogued twice");
        }
    }
    assert!(
        out.len() >= 12,
        "catalog parse looks broken: only {} rows",
        out.len()
    );
    out
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdip-obs-doc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every family in `scrape` (matching `prefixes`) must be catalogued
/// with the same type and only documented labels — and every catalogued
/// name with those prefixes must be present in `scrape`.
fn assert_catalog_matches(
    scrape: &expo::Scrape,
    catalog: &BTreeMap<String, (String, String)>,
    prefixes: &[&str],
    context: &str,
) {
    for (name, family) in &scrape.families {
        if !prefixes.iter().any(|p| name.starts_with(p)) {
            continue;
        }
        let (kind, labels) = catalog.get(name).unwrap_or_else(|| {
            panic!("{context}: {name} is exposed but not catalogued in docs/OBSERVABILITY.md")
        });
        assert_eq!(
            &family.kind, kind,
            "{context}: {name} is documented as a {kind} but exposed as a {}",
            family.kind
        );
        for sample in &family.samples {
            for (key, _) in &sample.labels {
                // `le` is structural: every histogram's `_bucket` series
                // carries it (documented in the exposition prose, not
                // per-family).
                if kind == "histogram" && key == "le" {
                    continue;
                }
                assert!(
                    labels.contains(&format!("`{key}`")),
                    "{context}: {name} carries undocumented label `{key}` \
                     (labels cell says: {labels})"
                );
            }
        }
    }
    for name in catalog.keys() {
        if prefixes.iter().any(|p| name.starts_with(p)) {
            assert!(
                scrape.families.contains_key(name),
                "{context}: {name} is catalogued but a live daemon never exposes it"
            );
        }
    }
}

#[test]
fn the_daemon_catalog_matches_a_live_scrape_bidirectionally() {
    let catalog = documented_families(&doc());
    let dir = state_dir("daemon");
    let mut config = ServerConfig::new(dir.clone());
    config.jobs = Some(2);
    let server = Server::spawn(config).expect("server spawns");
    let addr = server.addr().to_string();

    // Traffic first: the per-client labeled families only materialize
    // once a grid has been served.
    let client = RemoteClient::new(&addr, "obs-doc");
    client
        .run_grid("quick", 500, 2_000, &[CoreConfig::fdp()], 3)
        .expect("grid served");

    let (status, text) = http_text_request(&addr, "GET", METRICS_PATH, None).expect("scrape");
    assert_eq!(status, 200);
    let scrape = expo::validate(&text).expect("scrape validates");
    assert_catalog_matches(&scrape, &catalog, &["fdip_serve_", "fdip_exec_"], "daemon");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_client_catalog_matches_the_global_registry_bidirectionally() {
    let catalog = documented_families(&doc());

    // Exercise both client paths: a served grid (outcome `ok`, cells
    // received) and a fallback to local execution after a daemon error.
    let dir = state_dir("client");
    let mut config = ServerConfig::new(dir.clone());
    config.jobs = Some(2);
    let server = Server::spawn(config).expect("server spawns");
    let addr = server.addr().to_string();
    RemoteClient::new(&addr, "obs-doc-client")
        .run_grid("quick", 500, 2_000, &[CoreConfig::fdp()], 3)
        .expect("grid served");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
    // Port 1 refuses connections; the runner must fall back locally.
    let fallback = Runner::quick(500, 2_000).with_server("127.0.0.1:1", "obs-doc-fallback");
    let local = fallback.run_configs_detailed(&[CoreConfig::fdp()]);
    assert_eq!(local.len(), 1);

    // The global registry renders valid exposition too, and its client
    // families match the catalog in both directions.
    let scrape = expo::validate(&fdip_obs::metrics::global().render())
        .expect("global registry renders valid exposition");
    assert_catalog_matches(&scrape, &catalog, &["fdip_client_"], "client");
    assert_eq!(
        scrape.counter_total("fdip_client_fallbacks_total"),
        Some(1),
        "the refused daemon must be counted as a fallback"
    );
}
