//! Schema/documentation coverage: every key the harness emits into its
//! JSON documents must be documented in `docs/METRICS.md`.
//!
//! This is the drift guard promised by the metrics doc — adding a field
//! to `SimStats::to_json`, the histograms, the manifest, or the report
//! serialization without documenting it fails this test.

use fdip_harness::bench::quick_bench;
use fdip_harness::{BenchBaseline, Report, Runner, Table};
use fdip_sim::CoreConfig;
use fdip_telemetry::{Json, RunManifest, ToJson, SCHEMA_VERSION};
use std::collections::BTreeSet;

/// Collects every object key in `v`, except below `metrics` (experiment
/// metric names are experiment-specific and documented as such).
fn collect_keys(v: &Json, keys: &mut BTreeSet<String>) {
    match v {
        Json::Obj(fields) => {
            for (k, child) in fields {
                keys.insert(k.clone());
                if k != "metrics" {
                    collect_keys(child, keys);
                }
            }
        }
        Json::Arr(items) => {
            for item in items {
                collect_keys(item, keys);
            }
        }
        _ => {}
    }
}

fn doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/METRICS.md");
    std::fs::read_to_string(path).expect("docs/METRICS.md exists")
}

fn assert_all_documented(emitted: &Json, doc: &str, context: &str) {
    let mut keys = BTreeSet::new();
    collect_keys(emitted, &mut keys);
    assert!(keys.len() > 10, "{context}: implausibly few keys emitted");
    let undocumented: Vec<&String> = keys
        .iter()
        .filter(|k| !doc.contains(&format!("`{k}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "{context}: fields emitted but not documented in docs/METRICS.md: \
         {undocumented:?} — document them (and bump schema_version on renames)"
    );
}

#[test]
fn every_results_json_field_is_documented() {
    // A real (tiny) suite run, so every field of the schema is emitted
    // through the same path `fdip-run --json` uses.
    let runner = Runner::quick(500, 3_000);
    let suite = runner.run_suite(&CoreConfig::fdp(), "metrics-doc-test");
    let emitted = suite.to_json();
    assert_eq!(
        emitted.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    assert_all_documented(&emitted, &doc(), "results.json");
}

#[test]
fn every_experiments_json_field_is_documented() {
    // Mirror the fdip-experiments --json document shape without the
    // cost of running real experiments.
    let mut report = Report::new("fig7");
    report.metric("fdp_speedup_pct", 14.1);
    let mut table = Table::new("T", &["cfg", "speedup"]);
    table.row_f("fdp", &[14.1]);
    report.tables.push(table);
    let doc_json = Json::obj()
        .with("schema_version", SCHEMA_VERSION)
        .with(
            "manifest",
            RunManifest::new("fdip-experiments", "quick", 500, 3_000, 3).to_json(),
        )
        .with("experiments", Json::Arr(vec![report.to_json()]));
    assert_all_documented(&doc_json, &doc(), "experiments json");
}

#[test]
fn every_bench_json_field_is_documented() {
    // A real (tiny) bench run through the same path `fdip-bench --json`
    // uses, with a baseline attached so the optional block is emitted too.
    let mut bench = quick_bench(1_000, 1);
    bench.baseline = Some(BenchBaseline {
        instrs_per_sec: 1.0,
        cycles_per_sec: 1.0,
        git_revision: "test".to_string(),
    });
    let emitted = bench.to_json();
    assert_eq!(
        emitted.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    assert_all_documented(&emitted, &doc(), "BENCH_core.json");
    // The bench block itself must carry the documented headline numbers.
    let b = emitted.get("bench").expect("bench block");
    for name in ["iters", "workloads", "aggregate", "speedup_vs_baseline"] {
        assert!(b.get(name).is_some(), "bench field {name} missing");
    }
    let agg = b.get("aggregate").unwrap();
    for name in [
        "instrs_per_sec",
        "cycles_per_sec",
        "setup_seconds",
        "run_seconds",
    ] {
        assert!(agg.get(name).is_some(), "aggregate field {name} missing");
    }
}

#[test]
fn every_serve_manifest_field_is_documented() {
    // Document 6: the serve manifest from `GET /v1/telemetry`, with
    // every counter group populated so every key is emitted.
    let t = fdip_serve::telemetry::ServeTelemetry::new();
    t.on_request();
    t.on_grid_admitted(false, 1);
    t.on_grid_admitted(true, 2);
    t.on_grid_completed();
    t.on_grid_interrupted();
    t.on_grid_rejected(true);
    t.on_grid_rejected(false);
    t.on_cells_served("metrics-doc-test", 6, 2, 1);
    t.on_cell_simulated(1_250);
    let emitted = t.to_json();
    assert_eq!(
        emitted.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    assert_all_documented(&emitted, &doc(), "serve manifest");
    // Reverse direction: the documented counter groups must be emitted.
    let serve = emitted.get("serve").expect("serve block");
    for name in [
        "tool",
        "started_unix",
        "uptime_seconds",
        "requests",
        "grids",
        "cells",
        "rejected",
        "queue_depth",
        "clients",
    ] {
        assert!(serve.get(name).is_some(), "serve field {name} missing");
    }
}

#[test]
fn documented_derived_metrics_exist_in_emitted_json() {
    // The reverse direction for the derived block: the metrics the doc
    // tabulates must actually be emitted.
    let runner = Runner::quick(500, 3_000);
    let suite = runner.run_suite(&CoreConfig::fdp(), "metrics-doc-test");
    let emitted = suite.to_json();
    let derived = emitted.get("workloads").and_then(Json::as_arr).unwrap()[0]
        .get("derived")
        .expect("derived block");
    for name in [
        "ipc",
        "branch_mpki",
        "l1i_mpki",
        "starvation_pki",
        "icache_tag_pki",
        "avg_ftq_occupancy",
        "exposed_fraction",
        "btb_hit_rate",
        "pfc_harmful_rate",
        "stall_pki",
        "frontend_bound_fraction",
        "pf_accuracy",
        "pf_timeliness",
        "pf_coverage",
        "fdp_accuracy",
        "fdp_timeliness",
    ] {
        assert!(derived.get(name).is_some(), "derived metric {name} missing");
    }
}

#[test]
fn documented_observability_counters_exist_in_emitted_json() {
    // Reverse direction for the new counter groups: every stall bucket
    // and outcome field the doc tabulates must be emitted, under both
    // the counters block and the per-KI derived block.
    let runner = Runner::quick(500, 3_000);
    let suite = runner.run_suite(&CoreConfig::fdp(), "metrics-doc-test");
    let emitted = suite.to_json();
    let wl = &emitted.get("workloads").and_then(Json::as_arr).unwrap()[0];
    let counters = wl.get("counters").expect("counters block");
    let stall = counters.get("stall_cycles").expect("stall_cycles block");
    let stall_pki = wl
        .get("derived")
        .and_then(|d| d.get("stall_pki"))
        .expect("stall_pki block");
    for name in fdip_sim::STALL_REASON_NAMES {
        assert!(stall.get(name).is_some(), "stall bucket {name} missing");
        assert!(stall_pki.get(name).is_some(), "stall_pki {name} missing");
    }
    let outcomes = counters
        .get("l1i")
        .and_then(|c| c.get("prefetch_outcomes"))
        .expect("prefetch_outcomes block");
    for src in ["fdp", "pf"] {
        let o = outcomes.get(src).expect("outcome source");
        for name in [
            "requests",
            "timely",
            "late",
            "useless_evicted",
            "useless_replaced",
            "dropped",
        ] {
            assert!(o.get(name).is_some(), "outcome {src}.{name} missing");
        }
    }
}

#[test]
fn documented_trace_fields_exist_in_exported_trace() {
    // Document 4: a real traced run must emit the documented top-level
    // fields and both named tracks.
    use fdip_program::workload;
    let program = workload::quick_suite()[0].build();
    let (_, _, tracer) =
        fdip_sim::run_workload_traced(&CoreConfig::fdp(), &program, 500, 3_000, 10_000);
    let trace = tracer.to_chrome_trace(&fdip_sim::STALL_REASON_NAMES);
    for name in ["traceEvents", "displayTimeUnit", "metadata"] {
        assert!(trace.get(name).is_some(), "trace field {name} missing");
    }
    let meta = trace.get("metadata").unwrap();
    for name in ["tool", "clock", "dropped_events", "ring_capacity"] {
        assert!(meta.get(name).is_some(), "trace metadata {name} missing");
    }
    let events = trace.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut names = BTreeSet::new();
    for e in events {
        names.insert(e.get("name").and_then(Json::as_str).unwrap().to_string());
    }
    assert!(
        names.contains("FtqEnqueue"),
        "no FtqEnqueue events: {names:?}"
    );
    // The run mispredicts, so cycle attribution must include slices
    // beyond plain committing.
    assert!(
        fdip_sim::STALL_REASON_NAMES
            .iter()
            .filter(|n| names.contains(**n))
            .count()
            >= 2,
        "too few stall slice kinds: {names:?}"
    );
}
