//! Worker-count determinism: the parallel sweep executor must produce
//! bit-identical results for any `FDIP_JOBS` value, and identical
//! `results.json` bytes once the volatile manifest fields (wall time,
//! timestamp, revision, pool telemetry) are stripped.

use fdip_exec::Pool;
use fdip_harness::{Runner, SuiteResult};
use fdip_sim::CoreConfig;
use fdip_telemetry::{Json, ToJson};
use std::sync::Arc;

/// Manifest fields that legitimately vary between runs: wall-clock and
/// provenance stamps, plus the pool telemetry block (timing-dependent).
const VOLATILE_MANIFEST_KEYS: [&str; 4] =
    ["wall_seconds", "generated_unix", "git_revision", "pool"];

fn runner_with(threads: usize) -> Runner {
    Runner::quick(2_000, 10_000).with_pool(Arc::new(Pool::new(threads)))
}

/// The results.json document with every volatile manifest field removed.
fn stripped_json(suite: &SuiteResult) -> String {
    let mut doc = suite.to_json();
    if let Json::Obj(fields) = &mut doc {
        for (key, value) in fields.iter_mut() {
            if key == "manifest" {
                if let Json::Obj(manifest) = value {
                    manifest.retain(|(k, _)| !VOLATILE_MANIFEST_KEYS.contains(&k.as_str()));
                }
            }
        }
    }
    doc.to_string_pretty()
}

/// A one-worker pool and an eight-worker pool must agree on every stat
/// and distribution of a multi-config sweep, in the same order.
#[test]
fn serial_and_parallel_sweeps_agree() {
    let cfgs = [
        CoreConfig::no_fdp(),
        CoreConfig::fdp(),
        CoreConfig::fdp().with_btb_entries(2048),
    ];
    let serial = runner_with(1).run_configs_detailed(&cfgs);
    let parallel = runner_with(8).run_configs_detailed(&cfgs);
    assert_eq!(serial, parallel);
}

/// The full suite document — workload names, stats, dists, aggregates —
/// is byte-identical across worker counts after stripping the volatile
/// manifest fields.
#[test]
fn results_json_is_byte_stable_across_worker_counts() {
    let cfg = CoreConfig::fdp();
    let serial = runner_with(1).run_suite(&cfg, "determinism-test");
    let parallel = runner_with(8).run_suite(&cfg, "determinism-test");

    for (a, b) in serial.workloads.iter().zip(&parallel.workloads) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.family, b.family);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.dists, b.dists);
    }
    assert_eq!(stripped_json(&serial), stripped_json(&parallel));
}

/// Two runs at the same (racy) worker count are also identical — the
/// schedule may differ, the results may not.
#[test]
fn repeated_parallel_runs_are_identical() {
    let cfg = CoreConfig::fdp();
    let first = runner_with(8).run_suite(&cfg, "determinism-test");
    let second = runner_with(8).run_suite(&cfg, "determinism-test");
    assert_eq!(stripped_json(&first), stripped_json(&second));
}
