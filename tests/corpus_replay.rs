//! Corpus regression: every committed fuzz case under `tests/corpus/`
//! must decode, replay against the full differential config matrix, and
//! hold every invariant (stall partition, outcome ledger, retire bound,
//! worker-count byte-identity, repeated-run byte-stability).
//!
//! The corpus is regenerated with
//! `fdip-fuzz corpus --seed 1 --count 24 --out tests/corpus`; entries
//! are shrunk for compactness but preserve their generator profile's
//! terminator mix, so the suite keeps exercising every control-flow
//! family the fuzzer can emit.

use fdip_fuzz::{CaseFile, Inject, MatrixOptions};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_present_and_diverse() {
    let files = corpus_files();
    assert!(files.len() >= 20, "only {} corpus cases", files.len());
    for profile in ["tiny", "small", "mixed", "large"] {
        assert!(
            files
                .iter()
                .any(|p| p.file_name().unwrap().to_str().unwrap().contains(profile)),
            "no {profile} case in the corpus"
        );
    }
}

#[test]
fn every_corpus_case_replays_clean() {
    let opts = MatrixOptions {
        warmup: 300,
        measure: 1_000,
        jobs: 4,
        inject: Inject::None,
    };
    for path in corpus_files() {
        let case = CaseFile::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(case.inject, "none", "{}", path.display());
        assert!(case.violations.is_empty(), "{}", path.display());
        let out = case.replay(&opts);
        assert!(
            out.violations.is_empty(),
            "{}: {:?}",
            path.display(),
            out.violations
        );
        assert_eq!(out.sims, 20, "{}", path.display());
    }
}
