//! Bidirectional enforcement of `docs/SERVE.md`, in the style of
//! `tests/metrics_doc.rs`:
//!
//! * **emitted → documented**: every key that actually crosses the wire
//!   (grid request, grid response, every GET endpoint, error bodies) and
//!   every key in an on-disk cache entry must be documented — in
//!   `docs/SERVE.md`, or in `docs/METRICS.md` for the embedded
//!   stats/dists/histogram/Document-6 blocks specified there.
//! * **documented → real**: the endpoints, error codes, and
//!   content-address algorithms the doc spells out must behave exactly
//!   as written — the FNV-1a constants and canonical strings are
//!   re-implemented here from the doc's text and compared against the
//!   production codec.

use std::collections::BTreeSet;
use std::path::PathBuf;

use fdip_harness::remote::{
    cell_key, config_hash, config_to_json, fnv1a64, grid_request, http_json_request, workload_hash,
    GRID_PATH, HEALTHZ_PATH, LOGS_PATH, METRICS_PATH, PROGRESS_PATH, SHUTDOWN_PATH, TELEMETRY_PATH,
};
use fdip_serve::{Server, ServerConfig};
use fdip_sim::CoreConfig;
use fdip_telemetry::Json;

fn serve_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/SERVE.md");
    std::fs::read_to_string(path).expect("docs/SERVE.md exists")
}

fn metrics_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/METRICS.md");
    std::fs::read_to_string(path).expect("docs/METRICS.md exists")
}

fn collect_keys(v: &Json, keys: &mut BTreeSet<String>) {
    match v {
        Json::Obj(fields) => {
            for (k, child) in fields {
                keys.insert(k.clone());
                collect_keys(child, keys);
            }
        }
        Json::Arr(items) => {
            for item in items {
                collect_keys(item, keys);
            }
        }
        _ => {}
    }
}

fn assert_documented(emitted: &Json, context: &str) {
    let (serve, metrics) = (serve_doc(), metrics_doc());
    let mut keys = BTreeSet::new();
    collect_keys(emitted, &mut keys);
    let undocumented: Vec<&String> = keys
        .iter()
        .filter(|k| {
            let tagged = format!("`{k}`");
            !serve.contains(&tagged) && !metrics.contains(&tagged)
        })
        .collect();
    assert!(
        undocumented.is_empty(),
        "{context}: keys on the wire but not in docs/SERVE.md (or docs/METRICS.md): \
         {undocumented:?} — document them (and bump schema_version on renames)"
    );
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdip-serve-doc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_server(tag: &str) -> (Server, String, PathBuf) {
    let dir = state_dir(tag);
    let mut config = ServerConfig::new(dir.clone());
    config.jobs = Some(2);
    let server = Server::spawn(config).expect("server spawns");
    let addr = server.addr().to_string();
    (server, addr, dir)
}

#[test]
fn every_wire_key_is_documented() {
    let (server, addr, dir) = test_server("wire");
    let request = grid_request("serve-doc-test", "quick", 500, 2_000, &[CoreConfig::fdp()]);
    assert_documented(&request, "grid request");

    let (status, response) =
        http_json_request(&addr, "POST", GRID_PATH, Some(&request)).expect("grid served");
    assert_eq!(status, 200, "{response:?}");
    assert_documented(&response, "grid response");
    // The documented summary must reflect a fresh, fully simulated grid.
    let summary = response.get("summary").expect("summary");
    assert_eq!(summary.get("total_cells").and_then(Json::as_u64), Some(3));
    assert_eq!(summary.get("simulated").and_then(Json::as_u64), Some(3));
    assert_eq!(summary.get("cache_hits").and_then(Json::as_u64), Some(0));
    assert_eq!(summary.get("coalesced").and_then(Json::as_u64), Some(0));

    // Every JSON GET endpoint, same rule (`/v1/metrics` is text, not
    // JSON — its vocabulary is enforced by tests/obs_doc.rs instead).
    for (path, context) in [
        (HEALTHZ_PATH, "healthz"),
        (PROGRESS_PATH, "progress"),
        (TELEMETRY_PATH, "telemetry"),
        (LOGS_PATH, "logs"),
    ] {
        let (status, body) = http_json_request(&addr, "GET", path, None).expect(context);
        assert_eq!(status, 200, "{context}");
        assert_documented(&body, context);
    }

    // On-disk cache entries are an on-disk format: documented too.
    let cache_dir = dir.join("cache");
    let entry_path = std::fs::read_dir(&cache_dir)
        .expect("cache dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("at least one cache entry");
    let entry = Json::parse(&std::fs::read_to_string(entry_path).unwrap()).expect("entry parses");
    assert_documented(&entry, "cache entry");

    // Shutdown response, and the drain it documents.
    let (status, body) = http_json_request(&addr, "POST", SHUTDOWN_PATH, None).expect("shutdown");
    assert_eq!(status, 200);
    assert_documented(&body, "shutdown response");
    assert_eq!(body.get("draining").and_then(Json::as_bool), Some(true));
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn documented_error_codes_behave_as_written() {
    let (server, addr, dir) = test_server("errors");

    // 404 not_found on an unknown path.
    let (status, body) = http_json_request(&addr, "GET", "/v1/nope", None).unwrap();
    assert_eq!(status, 404);
    assert_eq!(error_code(&body), "not_found");
    assert_documented(&body, "error body");

    // 400 bad_request on a structurally invalid grid.
    let (status, body) = http_json_request(&addr, "POST", GRID_PATH, Some(&Json::obj())).unwrap();
    assert_eq!(status, 400);
    assert_eq!(error_code(&body), "bad_request");

    // 400 unsupported_suite: the daemon only rebuilds named suites.
    let request = grid_request("t", "custom", 500, 2_000, &[CoreConfig::fdp()]);
    let (status, body) = http_json_request(&addr, "POST", GRID_PATH, Some(&request)).unwrap();
    assert_eq!(status, 400);
    assert_eq!(error_code(&body), "unsupported_suite");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_bodies_get_413_as_documented() {
    let dir = state_dir("toolarge");
    let mut config = ServerConfig::new(dir.clone());
    config.jobs = Some(1);
    config.max_body_bytes = 64;
    let server = Server::spawn(config).expect("server spawns");
    let addr = server.addr().to_string();
    let request = grid_request("t", "quick", 500, 2_000, &[CoreConfig::fdp()]);
    let (status, body) = http_json_request(&addr, "POST", GRID_PATH, Some(&request)).unwrap();
    assert_eq!(status, 413);
    assert_eq!(error_code(&body), "too_large");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

fn error_code(body: &Json) -> &str {
    body.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error.code")
}

#[test]
fn documented_hash_algorithm_matches_the_codec() {
    // FNV-1a 64, re-implemented from the doc's stated constants.
    fn doc_fnv(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
    for sample in [&b""[..], b"a", b"fdip", b"\x00\xff"] {
        assert_eq!(fnv1a64(sample), doc_fnv(sample));
    }

    // Config hash: FNV-1a over the canonical object's compact form.
    let cfg = CoreConfig::fdp();
    assert_eq!(
        config_hash(&cfg),
        doc_fnv(config_to_json(&cfg).to_string().as_bytes())
    );

    // Cell key: the documented canonical string, 16 lowercase hex.
    let w = &fdip_program::workload::quick_suite()[0];
    let (ch, wh, seed) = (config_hash(&cfg), workload_hash(w), w.params.seed);
    let canon =
        format!("fdip-cell-v1|cfg={ch:016x}|wl={wh:016x}|seed={seed}|warmup=500|measure=2000");
    assert_eq!(
        cell_key(ch, wh, seed, 500, 2_000),
        format!("{:016x}", doc_fnv(canon.as_bytes()))
    );

    // Workload hash: FNV-1a over the generator parameters' Debug form.
    assert_eq!(wh, doc_fnv(format!("{:?}", w.params).as_bytes()));
}

#[test]
fn documented_paths_and_codes_appear_in_the_doc() {
    // The reverse textual direction: the doc must name every endpoint
    // constant and every error code the daemon can actually produce.
    let doc = serve_doc();
    for path in [
        GRID_PATH,
        HEALTHZ_PATH,
        PROGRESS_PATH,
        TELEMETRY_PATH,
        METRICS_PATH,
        LOGS_PATH,
        SHUTDOWN_PATH,
    ] {
        assert!(doc.contains(path), "docs/SERVE.md does not mention {path}");
    }
    for code in [
        "bad_request",
        "unsupported_suite",
        "not_found",
        "timeout",
        "too_large",
        "busy",
        "internal",
        "draining",
        "interrupted",
    ] {
        assert!(
            doc.contains(&format!("`{code}`")),
            "docs/SERVE.md does not document error code {code}"
        );
    }
    // And the grid-id canonical prefix is pinned verbatim.
    assert!(doc.contains("fdip-grid-v1|suite="));
    assert!(doc.contains("fdip-cell-v1|cfg="));
}
