//! The frontend cycle-accounting invariant, verified end to end: over
//! any measurement interval, the eight stall buckets partition the
//! cycles exactly — `sum(stall_cycles.*) == cycles` — for every
//! quick-suite workload under the frontier configurations (FDP with and
//! without PFC, no-FDP baseline, perfect BTB, and a dedicated
//! prefetcher).

use fdip_prefetch::PrefetcherKind;
use fdip_program::workload;
use fdip_sim::{run_workload, CoreConfig, StallReason};

fn configs() -> Vec<(&'static str, CoreConfig)> {
    let mut no_pfc = CoreConfig::fdp();
    no_pfc.pfc = false;
    let mut perfect_btb = CoreConfig::fdp();
    perfect_btb.perfect_btb = true;
    let mut fnlmma = CoreConfig::fdp();
    fnlmma.prefetcher = PrefetcherKind::FnlMma;
    vec![
        ("fdp", CoreConfig::fdp()),
        ("fdp_no_pfc", no_pfc),
        ("no_fdp", CoreConfig::no_fdp()),
        ("perfect_btb", perfect_btb),
        ("fnlmma", fnlmma),
    ]
}

#[test]
fn stall_buckets_partition_cycles_across_quick_suite() {
    for wl in workload::quick_suite() {
        let program = wl.build();
        for (cname, cfg) in configs() {
            let s = run_workload(&cfg, &program, 10_000, 40_000);
            assert_eq!(
                s.stall.sum(),
                s.cycles,
                "{}/{cname}: buckets {:?} must sum to the cycle count",
                wl.name,
                s.stall
            );
            assert!(s.cycles > 0, "{}/{cname}: empty interval", wl.name);
            // The accounting must not be degenerate: a real run commits
            // on some cycles and stalls on others.
            assert!(
                s.stall.get(StallReason::Committing) > 0,
                "{}/{cname}: no committing cycles",
                wl.name
            );
            assert!(
                s.stall.get(StallReason::Committing) < s.cycles,
                "{}/{cname}: accounting claims zero stalls",
                wl.name
            );
            let fb = s.frontend_bound_fraction();
            assert!(
                (0.0..=1.0).contains(&fb),
                "{}/{cname}: frontend_bound_fraction {fb} out of range",
                wl.name
            );
        }
    }
}

#[test]
fn redirect_cycles_appear_when_mispredictions_flush() {
    let program = workload::quick_suite()[0].build();
    let s = run_workload(&CoreConfig::fdp(), &program, 10_000, 40_000);
    assert!(s.mispredicts > 0, "expected mispredictions in server_a");
    assert!(
        s.stall.get(StallReason::Redirect) > 0,
        "flushes must charge redirect cycles: {:?}",
        s.stall
    );
}
