//! Smoke tests for the experiment harness: every registered experiment
//! must run end-to-end on a tiny suite and produce a well-formed report
//! with the rows/series its figure needs.

use fdip_harness::{experiments, Runner};
use fdip_program::workload::{Workload, WorkloadFamily};

fn tiny_runner() -> Runner {
    // One small workload, very short runs: exercises every code path
    // without caring about metric quality.
    Runner::new(
        vec![Workload::family_default(
            "spec_a",
            WorkloadFamily::Spec,
            301,
        )],
        2_000,
        10_000,
    )
}

#[test]
fn registry_is_complete_and_unique() {
    let ids: Vec<&str> = experiments::all().iter().map(|e| e.id).collect();
    let unique: std::collections::HashSet<&&str> = ids.iter().collect();
    assert_eq!(ids.len(), unique.len());
    assert_eq!(ids.len(), 13, "one experiment per paper artifact");
}

#[test]
fn structural_tables_need_no_simulation() {
    let r = tiny_runner();
    let tab3 = (experiments::by_id("tab3").unwrap().run)(&r);
    assert_eq!(tab3.get("total_bytes"), Some(195.0), "Table III headline");
    let tab4 = (experiments::by_id("tab4").unwrap().run)(&r);
    assert_eq!(tab4.get("btb_entries"), Some(8192.0));
    assert!(!tab4.tables.is_empty());
}

#[test]
fn fig7_produces_all_btb_points() {
    let r = tiny_runner();
    let rep = (experiments::by_id("fig7").unwrap().run)(&r);
    for size in ["1K", "2K", "4K", "8K", "16K", "32K"] {
        assert!(
            rep.get(&format!("speedup_{size}_pfc_on")).is_some(),
            "missing {size}"
        );
    }
    assert_eq!(rep.tables[0].rows.len(), 6);
}

#[test]
fn fig8_covers_all_policies() {
    let r = tiny_runner();
    let rep = (experiments::by_id("fig8").unwrap().run)(&r);
    for p in ["THR", "Ideal", "GHR0", "GHR1", "GHR2", "GHR3"] {
        assert!(rep.get(&format!("speedup_{p}_pfc_on")).is_some(), "{p}");
    }
}

#[test]
fn fig13_reports_bandwidth_and_latency_series() {
    let r = tiny_runner();
    let rep = (experiments::by_id("fig13").unwrap().run)(&r);
    assert_eq!(rep.tables.len(), 2, "13a and 13b");
    for k in ["speedup_B6", "speedup_B12", "speedup_B18", "speedup_B18m"] {
        assert!(rep.get(k).is_some(), "{k}");
    }
    for lat in 1..=4 {
        assert!(rep.get(&format!("speedup_btblat{lat}")).is_some());
    }
}

#[test]
fn fig14_reports_exposure_fractions() {
    let r = tiny_runner();
    let rep = (experiments::by_id("fig14").unwrap().run)(&r);
    for e in [2usize, 4, 8, 12, 16, 24, 32] {
        let f = rep
            .get(&format!("exposed_frac_ftq{e}"))
            .unwrap_or_else(|| panic!("missing ftq{e}"));
        assert!((0.0..=1.0).contains(&f), "fraction out of range: {f}");
    }
    // Exposure must not grow with FTQ depth at the endpoints.
    let f2 = rep.get("exposed_frac_ftq2").unwrap();
    let f32 = rep.get("exposed_frac_ftq32").unwrap();
    assert!(
        f32 <= f2 + 0.05,
        "deep FTQ must not expose more: {f2} -> {f32}"
    );
}

#[test]
fn fig9_reports_all_four_metrics_per_config() {
    let r = tiny_runner();
    let rep = (experiments::by_id("fig9").unwrap().run)(&r);
    for key in ["speedup", "mpki", "starv", "tags"] {
        for cfg in ["8K_BTB", "4K_BTB_EIP_27KB", "4K_BTB"] {
            assert!(rep.get(&format!("{key}_{cfg}")).is_some(), "{key}_{cfg}");
        }
    }
}

#[test]
fn fig1_includes_the_rdip_competitor() {
    let r = tiny_runner();
    let rep = (experiments::by_id("fig1").unwrap().run)(&r);
    // RDIP (the D-JOLT predecessor) rides the limit-study grid with
    // both FTQ depths...
    assert!(rep.get("RDIP_nofdp_pct").is_some());
    assert!(rep.get("RDIP_fdp_pct").is_some());
    assert!(rep.tables[0].rows.iter().any(|row| row[0] == "RDIP"));
    // ...and the column survives into the machine-readable results
    // document (reports carry no volatile fields, so the serialized
    // form *is* the stripped form).
    let json = fdip_telemetry::ToJson::to_json(&rep).to_string();
    assert!(json.contains("\"RDIP_fdp_pct\""), "{json}");
    assert!(json.contains("\"RDIP_nofdp_pct\""), "{json}");
}

#[test]
fn reports_render_to_text() {
    let r = tiny_runner();
    let rep = (experiments::by_id("tab3").unwrap().run)(&r);
    let text = rep.to_string();
    assert!(text.contains("195 bytes"), "{text}");
    assert!(text.contains("Direction hint"), "{text}");
}
