//! Bidirectional enforcement of `docs/FUZZ.md` and the METRICS.md
//! fuzz documents, in the style of `tests/metrics_doc.rs` /
//! `tests/serve_doc.rs`:
//!
//! * **emitted → documented**: every key of a real fuzz report
//!   (Document 7) and a real case file (Document 8) — including the
//!   embedded portable program image — must be documented.
//! * **documented → real**: the profiles, generator knobs, invariant
//!   names, injection modes, config columns, and CLI flags the docs
//!   spell out must exist in the code exactly as written.

use std::collections::BTreeSet;
use std::sync::Arc;

use fdip_fuzz::{
    fuzz_seed_range, generate, report_to_json, run_matrix, CaseFile, FuzzParams, FuzzProfile,
    Inject, MatrixOptions, ReportMeta, CHECK_NAMES,
};
use fdip_telemetry::{Json, SCHEMA_VERSION};

fn fuzz_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/FUZZ.md");
    std::fs::read_to_string(path).expect("docs/FUZZ.md exists")
}

fn metrics_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/METRICS.md");
    std::fs::read_to_string(path).expect("docs/METRICS.md exists")
}

fn collect_keys(v: &Json, keys: &mut BTreeSet<String>) {
    match v {
        Json::Obj(fields) => {
            for (k, child) in fields {
                keys.insert(k.clone());
                collect_keys(child, keys);
            }
        }
        Json::Arr(items) => {
            for item in items {
                collect_keys(item, keys);
            }
        }
        _ => {}
    }
}

fn assert_documented(emitted: &Json, context: &str) {
    let (fuzz, metrics) = (fuzz_doc(), metrics_doc());
    let mut keys = BTreeSet::new();
    collect_keys(emitted, &mut keys);
    assert!(keys.len() > 10, "{context}: implausibly few keys emitted");
    let undocumented: Vec<&String> = keys
        .iter()
        .filter(|k| {
            let tagged = format!("`{k}`");
            !metrics.contains(&tagged) && !fuzz.contains(&tagged)
        })
        .collect();
    assert!(
        undocumented.is_empty(),
        "{context}: keys emitted but not in docs/METRICS.md (or docs/FUZZ.md): \
         {undocumented:?} — document them (and bump schema_version on renames)"
    );
}

fn quick_opts(inject: Inject) -> MatrixOptions {
    MatrixOptions {
        warmup: 300,
        measure: 1_000,
        jobs: 2,
        inject,
    }
}

#[test]
fn every_fuzz_report_field_is_documented() {
    // An injected run so the violations and cases arrays are populated
    // and every Document 7 key is actually emitted.
    let opts = quick_opts(Inject::StallLeak);
    let (_, out) = fuzz_seed_range(FuzzProfile::Tiny, 21, 1, &opts);
    assert!(!out.violations.is_empty(), "injection must fire");
    let meta = ReportMeta {
        seed: 21,
        count: 1,
        profile: "tiny".to_string(),
        cases: vec!["case_fuzz_tiny_00000015".to_string()],
    };
    let emitted = report_to_json(&meta, &opts, &out);
    assert_eq!(
        emitted.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    assert_documented(&emitted, "fuzz report");
}

#[test]
fn every_case_file_field_is_documented() {
    // A mixed-profile program exercises every instruction form the
    // codec can emit: direct/indirect calls and jumps, conditional
    // branches with all behavior models, loads/stores, returns.
    let program = (0..50)
        .map(|s| generate(&FuzzProfile::Mixed.params(), s))
        .max_by_key(fdip_program::CfgProgram::instr_count)
        .unwrap()
        .emit("doc_case")
        .unwrap();
    let case = CaseFile {
        seed: 3,
        profile: "mixed".to_string(),
        inject: "stall-leak".to_string(),
        violations: vec![(
            "fdp".to_string(),
            "stall_partition".to_string(),
            "demo".to_string(),
        )],
        program,
    };
    let emitted = case.to_json();
    assert_eq!(
        emitted.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    assert_documented(&emitted, "case file");
}

#[test]
fn documented_profiles_knobs_and_modes_exist() {
    let doc = fuzz_doc();

    // Every real profile is documented, and FUZZ.md names no others.
    for profile in FuzzProfile::ALL {
        assert!(
            doc.contains(&format!("`{}`", profile.name())),
            "docs/FUZZ.md does not document profile {}",
            profile.name()
        );
    }

    // Every FuzzParams knob named in the doc is a real field — and
    // every real field is named. The Debug form lists the field names.
    let debug = format!("{:?}", FuzzParams::default());
    for knob in [
        "funcs",
        "blocks",
        "body",
        "loop_prob",
        "max_loop_depth",
        "trip",
        "call_prob",
        "cond_prob",
        "indirect_prob",
        "mem_frac",
    ] {
        assert!(
            doc.contains(&format!("`{knob}`")),
            "knob {knob} undocumented"
        );
        assert!(debug.contains(knob), "doc names unknown knob {knob}");
    }

    // Injection modes parse exactly as documented.
    assert_eq!(Inject::from_name("stall-leak"), Some(Inject::StallLeak));
    assert_eq!(Inject::from_name("ledger-drop"), Some(Inject::LedgerDrop));
    for mode in ["stall-leak", "ledger-drop", "none"] {
        assert!(
            doc.contains(&format!("`{mode}`")),
            "mode {mode} undocumented"
        );
    }
}

#[test]
fn documented_invariants_and_configs_match_the_harness() {
    let doc = fuzz_doc();
    // Every check the harness performs is documented by name...
    for name in CHECK_NAMES {
        assert!(
            doc.contains(&format!("`{name}`")),
            "docs/FUZZ.md does not document invariant {name}"
        );
    }
    // ...and every documented config column is a real matrix column.
    let configs: Vec<&str> = fdip_fuzz::config_matrix().iter().map(|(n, _)| *n).collect();
    for cfg in ["fdp", "fdp_no_pfc", "no_fdp", "perfect_btb", "fnlmma"] {
        assert!(configs.contains(&cfg), "doc names unknown config {cfg}");
        assert!(
            doc.contains(&format!("`{cfg}`")),
            "config {cfg} undocumented"
        );
    }
    // A real run must exercise every documented check at least once.
    let (_, out) = fuzz_seed_range(FuzzProfile::Tiny, 33, 1, &quick_opts(Inject::None));
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    for (name, n) in out.checks {
        assert!(n > 0, "documented check {name} never asserted");
    }
}

#[test]
fn documented_corpus_regeneration_command_matches_reality() {
    // The doc pins the regeneration command; its seed/count must match
    // what the committed corpus actually contains.
    let doc = fuzz_doc();
    assert!(
        doc.contains("fdip-fuzz corpus --seed 1 --count 24 --out tests/corpus"),
        "docs/FUZZ.md regeneration command drifted"
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let cases = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "json")
        })
        .count();
    assert_eq!(cases, 24, "corpus size drifted from the documented command");
}

#[test]
fn documented_replay_honesty_holds() {
    // FUZZ.md: "replay re-runs saved cases (always honest — injection
    // is ignored)". Build a case under injection, replay it, and assert
    // the replay is clean.
    let program = generate(&FuzzProfile::Tiny.params(), 2)
        .emit("honest")
        .unwrap();
    let opts = quick_opts(Inject::LedgerDrop);
    let out = run_matrix(&[("honest".to_string(), Arc::new(program.clone()))], &opts);
    assert!(!out.violations.is_empty(), "injection must fire");
    let case = CaseFile {
        seed: 2,
        profile: "tiny".to_string(),
        inject: "ledger-drop".to_string(),
        violations: out
            .violations
            .iter()
            .map(|v| {
                (
                    v.config.clone(),
                    v.violation.invariant.to_string(),
                    v.violation.detail.clone(),
                )
            })
            .collect(),
        program,
    };
    let replay = case.replay(&opts);
    assert!(replay.violations.is_empty(), "{:?}", replay.violations);
}
