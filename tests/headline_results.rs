//! Cross-crate integration tests: the paper's qualitative claims must
//! hold on a reduced-scale run of the workload suite.
//!
//! These are directional ("who wins"), not absolute-number tests, per
//! the reproduction contract in DESIGN.md.

use fdip_harness::Runner;
use fdip_prefetch::PrefetcherKind;
use fdip_sim::{CoreConfig, SimStats};

fn runner() -> Runner {
    Runner::quick(20_000, 100_000)
}

fn speedup(base: &[SimStats], other: &[SimStats]) -> f64 {
    Runner::speedup_pct(base, other)
}

#[test]
fn fdp_gives_a_large_speedup_over_baseline() {
    let r = runner();
    let base = r.run_config(&CoreConfig::no_fdp());
    let fdp = r.run_config(&CoreConfig::fdp());
    let s = speedup(&base, &fdp);
    // Paper: 41.0%. Shape: a large double-digit win.
    assert!(s > 15.0, "FDP speedup only {s:.1}%");
}

#[test]
fn fdp_beats_next_line_prefetching() {
    let r = runner();
    let base = r.run_config(&CoreConfig::no_fdp());
    let nl = r.run_config(&CoreConfig::no_fdp().with_prefetcher(PrefetcherKind::NextLine));
    let fdp = r.run_config(&CoreConfig::fdp());
    assert!(
        speedup(&base, &fdp) > speedup(&base, &nl),
        "FDP must beat NL1"
    );
}

#[test]
fn dedicated_prefetcher_on_top_of_fdp_is_marginal() {
    // Paper Fig. 6a: prefetchers add a lot without FDP but only a few
    // percent on top of FDP (tested with NL1, our strongest prefetcher).
    let r = runner();
    let fdp = r.run_config(&CoreConfig::fdp());
    let fdp_nl = r.run_config(&CoreConfig::fdp().with_prefetcher(PrefetcherKind::NextLine));
    let gain_on_fdp = speedup(&fdp, &fdp_nl);
    let no_fdp = r.run_config(&CoreConfig::no_fdp());
    let nl = r.run_config(&CoreConfig::no_fdp().with_prefetcher(PrefetcherKind::NextLine));
    let gain_no_fdp = speedup(&no_fdp, &nl);
    assert!(
        gain_no_fdp > 2.0 * gain_on_fdp.max(0.5),
        "NL1 gain without FDP ({gain_no_fdp:.1}%) should dwarf gain on FDP ({gain_on_fdp:.1}%)"
    );
}

#[test]
fn pfc_recovers_performance_on_small_btbs() {
    // Paper Fig. 7: PFC is worth ~9% at a 1K-entry BTB.
    let r = runner();
    let off = r.run_config(&CoreConfig::fdp().with_btb_entries(1024).with_pfc(false));
    let on = r.run_config(&CoreConfig::fdp().with_btb_entries(1024).with_pfc(true));
    let gain = speedup(&off, &on);
    assert!(gain > 2.0, "PFC gain at 1K BTB only {gain:.1}%");
    // ... by reducing mispredictions (paper: -75% at 1K).
    assert!(
        Runner::mean_mpki(&on) < Runner::mean_mpki(&off),
        "PFC must reduce MPKI on small BTBs"
    );
}

#[test]
fn pfc_is_neutral_on_huge_btbs() {
    // Paper Fig. 7: +0.1% at 32K entries.
    let r = runner();
    let off = r.run_config(
        &CoreConfig::fdp()
            .with_btb_entries(32 * 1024)
            .with_pfc(false),
    );
    let on = r.run_config(&CoreConfig::fdp().with_btb_entries(32 * 1024).with_pfc(true));
    let gain = speedup(&off, &on);
    assert!(
        gain.abs() < 4.0,
        "PFC at 32K BTB should be near-neutral, got {gain:.1}%"
    );
}

#[test]
fn taken_only_target_history_beats_the_academic_default() {
    // Paper Fig. 8: THR outperforms GHR3 (direction history with fixup
    // and all-branch allocation).
    use fdip_bpred::HistoryPolicy;
    let r = runner();
    let thr = r.run_config(&CoreConfig::fdp().with_policy(HistoryPolicy::Thr));
    let ghr3 = r.run_config(&CoreConfig::fdp().with_policy(HistoryPolicy::Ghr3));
    let edge = speedup(&ghr3, &thr);
    assert!(edge > 0.0, "THR must beat GHR3, got {edge:.1}%");
    // GHR3 pays in history-repair frontend flushes; THR never repairs.
    assert_eq!(thr.iter().map(|s| s.fixup_flushes).sum::<u64>(), 0);
    assert!(ghr3.iter().map(|s| s.fixup_flushes).sum::<u64>() > 0);
}

#[test]
fn perfect_btb_improves_fdp() {
    // Paper §VI-A: a perfect BTB adds ~3.4% on FDP.
    let r = runner();
    let fdp = r.run_config(&CoreConfig::fdp());
    let perfect = r.run_config(&CoreConfig {
        perfect_btb: true,
        ..CoreConfig::fdp()
    });
    let gain = speedup(&fdp, &perfect);
    assert!(gain > 0.0, "perfect BTB should help, got {gain:.1}%");
    assert!(
        gain < 40.0,
        "perfect BTB gain implausibly large: {gain:.1}%"
    );
}

#[test]
fn deeper_ftq_monotonically_helps_until_saturation() {
    // Paper Fig. 14 shape: big jump from 2->12 entries, marginal after.
    let r = runner();
    let f2 = r.run_config(&CoreConfig::fdp().with_ftq(2));
    let f12 = r.run_config(&CoreConfig::fdp().with_ftq(12));
    let f24 = r.run_config(&CoreConfig::fdp().with_ftq(24));
    let s12 = speedup(&f2, &f12);
    let s24 = speedup(&f2, &f24);
    assert!(s12 > 8.0, "12-entry FTQ gain {s12:.1}%");
    assert!(
        s24 >= s12 - 1.0,
        "24-entry should not regress: {s24:.1} vs {s12:.1}"
    );
    let tail = s24 - s12;
    assert!(
        tail < s12 / 2.0,
        "gains beyond 12 entries should be marginal"
    );
}

#[test]
fn iso_budget_tag_traffic_blows_up_with_dedicated_prefetcher() {
    // Paper Fig. 9: EIP-27KB multiplies I-cache tag accesses (3.5x).
    let r = runner();
    let btb8k = r.run_config(&CoreConfig::fdp().with_btb_entries(8192));
    let eip = r.run_config(
        &CoreConfig::fdp()
            .with_btb_entries(4096)
            .with_prefetcher(PrefetcherKind::Eip27),
    );
    let tags_btb = Runner::mean_of(&btb8k, SimStats::icache_tag_pki);
    let tags_eip = Runner::mean_of(&eip, SimStats::icache_tag_pki);
    assert!(
        tags_eip > 1.1 * tags_btb,
        "EIP should multiply tag traffic: {tags_eip:.0} vs {tags_btb:.0} per KI"
    );
}

#[test]
fn perfect_prefetching_is_an_upper_bound_for_prefetchers() {
    let r = runner();
    let base = r.run_config(&CoreConfig::no_fdp());
    let perfect = r.run_config(&CoreConfig::no_fdp().with_prefetcher(PrefetcherKind::Perfect));
    for pk in [
        PrefetcherKind::NextLine,
        PrefetcherKind::FnlMma,
        PrefetcherKind::Djolt,
        PrefetcherKind::Eip128,
    ] {
        let s = r.run_config(&CoreConfig::no_fdp().with_prefetcher(pk));
        assert!(
            speedup(&base, &perfect) >= speedup(&base, &s) - 2.0,
            "{} beat perfect prefetching",
            pk.label()
        );
    }
}

#[test]
fn real_prefetchers_beat_doing_nothing_without_fdp() {
    let r = runner();
    let base = r.run_config(&CoreConfig::no_fdp());
    for pk in [
        PrefetcherKind::NextLine,
        PrefetcherKind::FnlMma,
        PrefetcherKind::Djolt,
        PrefetcherKind::Eip27,
        PrefetcherKind::Eip128,
        PrefetcherKind::SnfourlDis,
    ] {
        let s = r.run_config(&CoreConfig::no_fdp().with_prefetcher(pk));
        let gain = speedup(&base, &s);
        assert!(gain > 0.0, "{} gained {gain:.1}%", pk.label());
    }
}

#[test]
fn btb_prefetching_helps_small_btbs_under_ghr() {
    // Paper Fig. 10: BTB prefetching helps 2K BTBs under GHR (+8.8%).
    use fdip_bpred::HistoryPolicy;
    let r = runner();
    let mk = |pf| {
        CoreConfig::fdp()
            .with_btb_entries(2048)
            .with_policy(HistoryPolicy::Ghr3)
            .with_pfc(false)
            .with_prefetcher(pf)
    };
    let without = r.run_config(&mk(PrefetcherKind::SnfourlDis));
    let with = r.run_config(&mk(PrefetcherKind::SnfourlDisBtb));
    let gain = speedup(&without, &with);
    assert!(
        gain > -1.0,
        "BTB prefetching at 2K/GHR3 should not hurt: {gain:.1}%"
    );
}
