//! End-to-end guarantees of the observability stack (`fdip-obs` wired
//! through `fdip-serve`, `docs/OBSERVABILITY.md` §"Enforcement"):
//!
//! * every `/v1/metrics` scrape passes the in-repo exposition
//!   validator and covers the documented breadth (≥ 12 families);
//! * counters are monotonic across scrapes, and a replayed grid moves
//!   the cache-hit counter by exactly its cell count;
//! * `/v1/logs` serves the grid-lifecycle records with a working
//!   `next_since` cursor, and the ring stays bounded;
//! * `--trace-dir` produces a parseable Chrome trace per grid;
//! * and above all: stripped grid results are **byte-identical** with
//!   observability fully enabled (debug logging + tracing) and fully
//!   disabled.

use std::collections::BTreeMap;
use std::path::PathBuf;

use fdip_harness::remote::{
    grid_request, http_json_request, http_text_request, GRID_PATH, LOGS_PATH, METRICS_PATH,
};
use fdip_harness::Runner;
use fdip_obs::expo;
use fdip_serve::{Server, ServerConfig};
use fdip_sim::CoreConfig;
use fdip_telemetry::Json;

const WARMUP: u64 = 500;
const MEASURE: u64 = 2_000;

/// The logger (filter spec, ring) is process-global; both tests read or
/// reconfigure it, so they take this lock to keep each other's settings
/// from interleaving.
static LOGGER: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdip-obs-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scrape(addr: &str) -> expo::Scrape {
    let (status, text) = http_text_request(addr, "GET", METRICS_PATH, None).expect("scrape");
    assert_eq!(status, 200);
    expo::validate(&text).expect("scrape must pass the in-repo validator")
}

/// Every counter family's total, for monotonicity diffs.
fn counter_totals(s: &expo::Scrape) -> BTreeMap<String, u64> {
    s.families
        .iter()
        .filter(|(_, f)| f.kind == "counter")
        .map(|(name, _)| (name.clone(), s.counter_total(name).expect("whole counter")))
        .collect()
}

fn stripped_cells(response: &Json) -> Vec<String> {
    response
        .get("cells")
        .and_then(Json::as_arr)
        .expect("cells")
        .iter()
        .map(|c| {
            format!(
                "{}|{}",
                c.get("stats").expect("stats").to_string(),
                c.get("dists").expect("dists").to_string()
            )
        })
        .collect()
}

#[test]
fn scrape_validates_counters_are_monotonic_and_cache_hits_move_on_replay() {
    let _logger = LOGGER.lock().unwrap();
    fdip_obs::log::logger().set_filter_spec("info");
    let dir = state_dir("metrics");
    let trace_dir = dir.join("traces");
    let mut config = ServerConfig::new(dir.clone());
    config.jobs = Some(2);
    config.trace_dir = Some(trace_dir.clone());
    let server = Server::spawn(config).expect("server spawns");
    let addr = server.addr().to_string();

    // A cold scrape already validates and shows the full schema.
    let cold = scrape(&addr);
    let families = cold
        .families
        .keys()
        .filter(|n| n.starts_with("fdip_serve_") || n.starts_with("fdip_exec_"))
        .count();
    assert!(
        families >= 12,
        "cold scrape covers only {families} serve/exec families: {:?}",
        cold.families.keys().collect::<Vec<_>>()
    );

    // First grid: everything simulates.
    let request = grid_request("obs-e2e", "quick", WARMUP, MEASURE, &[CoreConfig::fdp()]);
    let (status, first) = http_json_request(&addr, "POST", GRID_PATH, Some(&request)).unwrap();
    assert_eq!(status, 200, "{first:?}");
    let total = first
        .get("summary")
        .and_then(|s| s.get("total_cells"))
        .and_then(Json::as_u64)
        .expect("total_cells");

    let after_first = scrape(&addr);
    assert_eq!(
        after_first.counter_total("fdip_serve_cells_simulated_total"),
        Some(total)
    );
    assert_eq!(
        after_first.counter_total("fdip_serve_grids_completed_total"),
        Some(1)
    );
    // The exec mirrors reflect the pool that ran the cells.
    assert!(
        after_first
            .counter_total("fdip_exec_jobs_completed_total")
            .expect("exec mirror")
            >= total,
        "pool mirror must count the simulated cells"
    );
    assert_eq!(after_first.gauge_value("fdip_exec_workers"), Some(2.0));
    // Per-cell simulation latency was observed once per cell.
    assert_eq!(
        after_first.histogram_count("fdip_serve_cell_sim_duration_us"),
        Some(total)
    );

    // Second grid: pure cache replay. Counters never move backwards,
    // and the cache-hit counter moves by exactly the grid's cells.
    let (status, second) = http_json_request(&addr, "POST", GRID_PATH, Some(&request)).unwrap();
    assert_eq!(status, 200, "{second:?}");
    let after_second = scrape(&addr);
    let (before, after) = (counter_totals(&after_first), counter_totals(&after_second));
    for (name, total_before) in &before {
        let total_after = after.get(name).unwrap_or_else(|| {
            panic!("counter family {name} vanished between scrapes");
        });
        assert!(
            total_after >= total_before,
            "counter {name} went backwards: {total_before} -> {total_after}"
        );
    }
    assert_eq!(
        after["fdip_serve_cell_cache_hits_total"] - before["fdip_serve_cell_cache_hits_total"],
        total,
        "a replayed grid must hit the cache once per cell"
    );
    assert_eq!(
        after["fdip_serve_cells_simulated_total"], before["fdip_serve_cells_simulated_total"],
        "a replayed grid must simulate nothing"
    );
    assert_eq!(stripped_cells(&first), stripped_cells(&second));

    // The labeled client family carries the submitting client.
    let clients = &after_second.families["fdip_serve_client_cells_total"];
    let ours = clients
        .samples
        .iter()
        .find(|s| s.label("client") == Some("obs-e2e"))
        .expect("client sample");
    assert_eq!(ours.value, (2 * total) as f64);

    // /v1/logs: the lifecycle records are there, the cursor works, and
    // the page is bounded by the documented ring capacity.
    let (status, page) = http_json_request(&addr, "GET", LOGS_PATH, None).unwrap();
    assert_eq!(status, 200);
    let records = page.get("logs").and_then(Json::as_arr).expect("logs");
    assert!(records.len() <= 1024, "ring page exceeds capacity");
    let admitted = records
        .iter()
        .filter(|r| {
            r.get("msg").and_then(Json::as_str) == Some("grid admitted")
                && r.get("target").and_then(Json::as_str) == Some("serve")
        })
        .count();
    assert!(admitted >= 2, "both grid admissions must be logged");
    let next = page
        .get("next_since")
        .and_then(Json::as_u64)
        .expect("cursor");
    let (_, newer) =
        http_json_request(&addr, "GET", &format!("{LOGS_PATH}?since={next}"), None).unwrap();
    assert_eq!(
        newer.get("logs").and_then(Json::as_arr).map(<[Json]>::len),
        Some(0),
        "the cursor must exclude already-seen records"
    );
    // Unparseable query parameters are a clean 400.
    let (status, _) =
        http_json_request(&addr, "GET", &format!("{LOGS_PATH}?level=loud"), None).unwrap();
    assert_eq!(status, 400);

    // Each grid wrote (and overwrote — same grid id) a Chrome trace.
    let grid_id = first.get("grid_id").and_then(Json::as_str).unwrap();
    let trace_path = trace_dir.join(format!("grid-{grid_id}.json"));
    let trace = Json::parse(&std::fs::read_to_string(&trace_path).expect("trace file"))
        .expect("trace parses");
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for expected in ["classify", "simulate", "assemble", "completed"] {
        assert!(
            names.contains(&expected),
            "trace lacks {expected}: {names:?}"
        );
    }

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stripped_results_are_byte_identical_with_observability_on_and_off() {
    // "On": trace-everything filter, tracing enabled. "Off": logging
    // filtered out entirely, no trace dir.
    let _logger = LOGGER.lock().unwrap();
    let cfgs = [CoreConfig::no_fdp(), CoreConfig::fdp()];
    let request = grid_request("obs-diff", "quick", WARMUP, MEASURE, &cfgs);

    let dir_on = state_dir("obs-on");
    let mut config = ServerConfig::new(dir_on.clone());
    config.jobs = Some(2);
    config.trace_dir = Some(dir_on.join("traces"));
    fdip_obs::log::logger().set_filter_spec("trace");
    let server = Server::spawn(config).expect("server spawns");
    let addr = server.addr().to_string();
    let (status, with_obs) = http_json_request(&addr, "POST", GRID_PATH, Some(&request)).unwrap();
    assert_eq!(status, 200, "{with_obs:?}");
    server.stop();
    fdip_obs::log::logger().set_filter_spec("off");

    let dir_off = state_dir("obs-off");
    let mut config = ServerConfig::new(dir_off.clone());
    config.jobs = Some(2);
    let server = Server::spawn(config).expect("server spawns");
    let addr = server.addr().to_string();
    let (status, without_obs) =
        http_json_request(&addr, "POST", GRID_PATH, Some(&request)).unwrap();
    assert_eq!(status, 200, "{without_obs:?}");
    server.stop();
    fdip_obs::log::logger().set_filter_spec("info");

    assert_eq!(
        stripped_cells(&with_obs),
        stripped_cells(&without_obs),
        "observability must never change simulation results"
    );
    // And both match a direct local run, which never touches fdip-obs.
    let local = Runner::quick(WARMUP, MEASURE).run_configs_detailed(&cfgs);
    let local_stripped: Vec<String> = local
        .iter()
        .flatten()
        .map(|(stats, dists)| {
            use fdip_telemetry::ToJson;
            format!(
                "{}|{}",
                stats.to_json().to_string(),
                dists.to_json().to_string()
            )
        })
        .collect();
    assert_eq!(stripped_cells(&with_obs), local_stripped);

    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
}
