//! Schema/documentation coverage for Document 5 (`lint.json`): every
//! key `fdip-lint --json` emits must be documented in
//! `docs/METRICS.md`, and the documented report shape must actually be
//! emitted — the same bidirectional guard `tests/metrics_doc.rs`
//! applies to the harness documents.

use fdip_analysis::allow::Allowlist;
use fdip_analysis::report::LINT_SCHEMA_VERSION;
use fdip_analysis::{lint_workspace, passes, ALLOWLIST_PATH};
use fdip_telemetry::Json;
use std::collections::BTreeSet;
use std::path::Path;

fn collect_keys(v: &Json, keys: &mut BTreeSet<String>) {
    match v {
        Json::Obj(fields) => {
            for (k, child) in fields {
                keys.insert(k.clone());
                collect_keys(child, keys);
            }
        }
        Json::Arr(items) => {
            for item in items {
                collect_keys(item, keys);
            }
        }
        _ => {}
    }
}

fn lint_json() -> Json {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allow_text =
        std::fs::read_to_string(root.join(ALLOWLIST_PATH)).expect("lint-allow.txt exists");
    let mut allowlist = Allowlist::parse(&allow_text).expect("allowlist parses");
    lint_workspace(root, &mut allowlist)
        .expect("workspace lints")
        .to_json()
}

#[test]
fn every_lint_json_field_is_documented() {
    let emitted = lint_json();
    // Document 5 carries its own version, not the telemetry documents'
    // global one; v2 introduced the per-finding `kind` field.
    const _: () = assert!(LINT_SCHEMA_VERSION >= 2);
    assert_eq!(
        emitted.get("schema_version").and_then(Json::as_u64),
        Some(LINT_SCHEMA_VERSION)
    );
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/METRICS.md"))
        .expect("docs/METRICS.md exists");
    let mut keys = BTreeSet::new();
    collect_keys(&emitted, &mut keys);
    assert!(keys.len() > 10, "implausibly few keys in lint.json");
    let undocumented: Vec<&String> = keys
        .iter()
        .filter(|k| !doc.contains(&format!("`{k}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "lint.json fields not documented in docs/METRICS.md: {undocumented:?} — \
         document them (and bump schema_version on renames)"
    );
}

#[test]
fn documented_lint_report_shape_is_emitted() {
    // Reverse direction: the blocks and fields Document 5 tabulates
    // must actually exist in a real report.
    let emitted = lint_json();
    let lint = emitted.get("lint").expect("lint block");
    assert_eq!(lint.get("tool").and_then(Json::as_str), Some("fdip-lint"));
    for name in ["files_scanned", "passes", "findings", "summary"] {
        assert!(lint.get(name).is_some(), "lint field {name} missing");
    }
    let passes = lint.get("passes").and_then(Json::as_arr).expect("passes");
    let ids: BTreeSet<&str> = passes
        .iter()
        .filter_map(|p| p.get("id").and_then(Json::as_str))
        .collect();
    for id in [
        "determinism",
        "atomics",
        "panic-audit",
        "unsafe-forbid",
        "schema-drift",
        "hot-alloc",
        "lock-discipline",
        "result-drop",
    ] {
        assert!(ids.contains(id), "pass rollup for {id} missing: {ids:?}");
    }
    for p in passes {
        for name in ["findings", "denied", "allowed"] {
            assert!(p.get(name).is_some(), "pass rollup field {name} missing");
        }
    }
    let summary = lint.get("summary").expect("summary block");
    for name in ["errors", "warnings", "notes", "allowlisted", "denied"] {
        assert!(summary.get(name).is_some(), "summary field {name} missing");
    }
    // The tree at HEAD holds the --deny bar.
    assert_eq!(summary.get("denied").and_then(Json::as_u64), Some(0));
    // Findings entries carry the documented positional fields.
    if let Some(f) = lint
        .get("findings")
        .and_then(Json::as_arr)
        .and_then(|a| a.first())
    {
        for name in [
            "pass", "kind", "file", "line", "col", "severity", "needle", "message",
        ] {
            assert!(f.get(name).is_some(), "finding field {name} missing");
        }
    }
}

#[test]
fn diagnostic_kind_table_matches_the_registry_both_ways() {
    // Document 5's "Diagnostic kinds" table and `passes::KINDS` are the
    // same closed set: every registered kind must be documented as a
    // `| pass | kind | ...` row, and every documented row must name a
    // registered kind — renames fail in both directions.
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/METRICS.md"))
        .expect("docs/METRICS.md exists");
    let documented: BTreeSet<(String, String)> = doc
        .lines()
        .filter_map(|l| {
            let mut cells = l.split('|').map(str::trim);
            cells.next()?; // leading empty cell
            let pass = cells.next()?.strip_prefix('`')?.strip_suffix('`')?;
            let kind = cells.next()?.strip_prefix('`')?.strip_suffix('`')?;
            Some((pass.to_string(), kind.to_string()))
        })
        .filter(|(pass, _)| passes::registry().iter().any(|p| p.id == pass) || pass == "allowlist")
        .collect();
    let registered: BTreeSet<(String, String)> = passes::KINDS
        .iter()
        .map(|(pass, kind, _)| (pass.to_string(), kind.to_string()))
        .collect();
    assert!(registered.len() > 15, "implausibly few registered kinds");
    let missing: Vec<_> = registered.difference(&documented).collect();
    assert!(
        missing.is_empty(),
        "kinds emitted but not documented in docs/METRICS.md: {missing:?}"
    );
    let phantom: Vec<_> = documented.difference(&registered).collect();
    assert!(
        phantom.is_empty(),
        "kinds documented but not registered in passes::KINDS: {phantom:?}"
    );
}

#[test]
fn every_emitted_finding_kind_is_registered() {
    let emitted = lint_json();
    let findings = emitted
        .get("lint")
        .and_then(|l| l.get("findings"))
        .and_then(Json::as_arr)
        .expect("findings array");
    let registered: BTreeSet<(&str, &str)> =
        passes::KINDS.iter().map(|(p, k, _)| (*p, *k)).collect();
    for f in findings {
        let pass = f.get("pass").and_then(Json::as_str).expect("pass");
        let kind = f.get("kind").and_then(Json::as_str).expect("kind");
        assert!(
            registered.contains(&(pass, kind)),
            "finding emitted with unregistered kind {pass}/{kind}"
        );
    }
}
