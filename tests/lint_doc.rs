//! Schema/documentation coverage for Document 5 (`lint.json`): every
//! key `fdip-lint --json` emits must be documented in
//! `docs/METRICS.md`, and the documented report shape must actually be
//! emitted — the same bidirectional guard `tests/metrics_doc.rs`
//! applies to the harness documents.

use fdip_analysis::allow::Allowlist;
use fdip_analysis::{lint_workspace, ALLOWLIST_PATH};
use fdip_telemetry::{Json, SCHEMA_VERSION};
use std::collections::BTreeSet;
use std::path::Path;

fn collect_keys(v: &Json, keys: &mut BTreeSet<String>) {
    match v {
        Json::Obj(fields) => {
            for (k, child) in fields {
                keys.insert(k.clone());
                collect_keys(child, keys);
            }
        }
        Json::Arr(items) => {
            for item in items {
                collect_keys(item, keys);
            }
        }
        _ => {}
    }
}

fn lint_json() -> Json {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allow_text =
        std::fs::read_to_string(root.join(ALLOWLIST_PATH)).expect("lint-allow.txt exists");
    let mut allowlist = Allowlist::parse(&allow_text).expect("allowlist parses");
    lint_workspace(root, &mut allowlist)
        .expect("workspace lints")
        .to_json()
}

#[test]
fn every_lint_json_field_is_documented() {
    let emitted = lint_json();
    assert_eq!(
        emitted.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/METRICS.md"))
        .expect("docs/METRICS.md exists");
    let mut keys = BTreeSet::new();
    collect_keys(&emitted, &mut keys);
    assert!(keys.len() > 10, "implausibly few keys in lint.json");
    let undocumented: Vec<&String> = keys
        .iter()
        .filter(|k| !doc.contains(&format!("`{k}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "lint.json fields not documented in docs/METRICS.md: {undocumented:?} — \
         document them (and bump schema_version on renames)"
    );
}

#[test]
fn documented_lint_report_shape_is_emitted() {
    // Reverse direction: the blocks and fields Document 5 tabulates
    // must actually exist in a real report.
    let emitted = lint_json();
    let lint = emitted.get("lint").expect("lint block");
    assert_eq!(lint.get("tool").and_then(Json::as_str), Some("fdip-lint"));
    for name in ["files_scanned", "passes", "findings", "summary"] {
        assert!(lint.get(name).is_some(), "lint field {name} missing");
    }
    let passes = lint.get("passes").and_then(Json::as_arr).expect("passes");
    let ids: BTreeSet<&str> = passes
        .iter()
        .filter_map(|p| p.get("id").and_then(Json::as_str))
        .collect();
    for id in [
        "determinism",
        "atomics",
        "panic-audit",
        "unsafe-forbid",
        "schema-drift",
    ] {
        assert!(ids.contains(id), "pass rollup for {id} missing: {ids:?}");
    }
    for p in passes {
        for name in ["findings", "denied", "allowed"] {
            assert!(p.get(name).is_some(), "pass rollup field {name} missing");
        }
    }
    let summary = lint.get("summary").expect("summary block");
    for name in ["errors", "warnings", "notes", "allowlisted", "denied"] {
        assert!(summary.get(name).is_some(), "summary field {name} missing");
    }
    // The tree at HEAD holds the --deny bar.
    assert_eq!(summary.get("denied").and_then(Json::as_u64), Some(0));
    // Findings entries carry the documented positional fields.
    if let Some(f) = lint
        .get("findings")
        .and_then(Json::as_arr)
        .and_then(|a| a.first())
    {
        for name in [
            "pass", "file", "line", "col", "severity", "needle", "message",
        ] {
            assert!(f.get(name).is_some(), "finding field {name} missing");
        }
    }
}
