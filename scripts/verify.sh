#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting, docs.
#
# This is what CI runs (quick-suite scale — FDIP_SUITE=quick is set for
# the integration tests' child processes via the tests themselves). All
# cargo invocations are --offline: the three external dependencies
# resolve to in-tree stand-ins under vendor/ (see Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> fdip-lint --deny"
# The workspace's own static-analysis gate (docs/ANALYSIS.md) runs
# first: it needs no build artifacts beyond the lint binary and catches
# invariant violations (determinism hazards, hot-path panics, schema
# drift, unsafe, relaxed executor atomics) before the expensive steps.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -q --release --offline -p fdip-analysis --bin fdip-lint -- \
  --deny --json "$tmp/lint.json"
# Document 5 smoke: the report is parseable JSON with the documented
# envelope (the bidirectional check lives in tests/lint_doc.rs).
grep -q '"schema_version"' "$tmp/lint.json"
grep -q '"tool": "fdip-lint"' "$tmp/lint.json"
echo "    lint clean under --deny, lint.json written"

echo "==> fdip-lint detection liveness (--inject)"
# A pass that silently stops firing would leave the gate above green
# forever (docs/ANALYSIS.md "Detection liveness"). Splice each
# syntax-aware pass's canonical bad construct into the tree in memory;
# the linter must then exit nonzero. The full eight-pass matrix runs in
# crates/analysis/tests/mutation_liveness.rs.
for pass in hot-alloc lock-discipline result-drop; do
  if cargo run -q --release --offline -p fdip-analysis --bin fdip-lint -- \
      --deny --inject "$pass" > /dev/null 2>&1; then
    echo "pass $pass did not fire on its injected mutation" >&2
    exit 1
  fi
done
echo "    injected mutations all caught"

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo clippy"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> determinism smoke: FDIP_JOBS=1 vs FDIP_JOBS=2"
# A quick-suite experiments run must produce byte-identical JSON for any
# worker count once the volatile manifest fields are stripped
# (docs/METRICS.md: wall_seconds, generated_unix, git_revision, pool).
for jobs in 1 2; do
  FDIP_SUITE=quick FDIP_WARMUP=2000 FDIP_INSTRS=10000 FDIP_JOBS="$jobs" \
    ./target/release/fdip-experiments --json "$tmp/j$jobs.json" fig7 fig9 \
    > /dev/null
  cargo run -q --release --offline --example strip_results -- \
    "$tmp/j$jobs.json" > "$tmp/j$jobs.stripped.json"
done
diff -u "$tmp/j1.stripped.json" "$tmp/j2.stripped.json"
echo "    identical results at 1 and 2 workers"

echo "==> trace smoke: --trace emits a valid Chrome trace"
# A short traced run must produce a trace_event document the in-repo
# JSON parser accepts, with nonzero event counts and cycle-monotonic
# timestamps (checked by examples/check_trace.rs).
./target/release/fdip-run --workload server_a --warmup 2000 --instrs 10000 \
  --trace "$tmp/trace.json" --trace-limit 20000 > /dev/null
cargo run -q --release --offline --example check_trace -- "$tmp/trace.json" \
  | tail -n 1
# Tracing must not perturb results: a traced run's stripped results.json
# is byte-identical to an untraced one.
FDIP_WARMUP=2000 FDIP_INSTRS=10000 ./target/release/fdip-run \
  --workload server_a --json "$tmp/untraced.json" > /dev/null
FDIP_WARMUP=2000 FDIP_INSTRS=10000 ./target/release/fdip-run \
  --workload server_a --json "$tmp/traced.json" \
  --trace "$tmp/trace2.json" > /dev/null
for f in untraced traced; do
  cargo run -q --release --offline --example strip_results -- \
    "$tmp/$f.json" > "$tmp/$f.stripped.json"
done
diff -u "$tmp/untraced.stripped.json" "$tmp/traced.stripped.json"
echo "    tracing leaves results byte-identical"

echo "==> serve smoke: served sweep == local sweep, then 100% cache hits"
# Start the daemon on an ephemeral port — with observability fully on
# (debug logging, a log file, span tracing) so the byte-identity diff
# below doubles as the obs-on vs obs-off determinism gate
# (docs/OBSERVABILITY.md) — run the same quick sweep as the determinism
# smoke through it, and require the stripped results to be byte-identical
# to the local run above (docs/SERVE.md "Determinism guarantee"). A
# second served pass must hit only the cache, and the daemon must drain
# cleanly on ctl shutdown.
./target/release/fdip-serve --addr 127.0.0.1:0 --state-dir "$tmp/serve-state" \
  --log debug --log-file "$tmp/serve-file.log" --trace-dir "$tmp/serve-traces" \
  --port-file "$tmp/serve.addr" > "$tmp/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -s "$tmp/serve.addr" ] && break
  sleep 0.1
done
addr="$(cat "$tmp/serve.addr")"
for pass in 1 2; do
  FDIP_SUITE=quick FDIP_WARMUP=2000 FDIP_INSTRS=10000 \
    ./target/release/fdip-experiments --server "$addr" \
    --json "$tmp/served$pass.json" fig7 fig9 > /dev/null
  cargo run -q --release --offline --example strip_results -- \
    "$tmp/served$pass.json" > "$tmp/served$pass.stripped.json"
  diff -u "$tmp/j1.stripped.json" "$tmp/served$pass.stripped.json"
done
./target/release/fdip-serve ctl "$addr" telemetry > "$tmp/serve-telemetry.json"
grep -q '"cache_hits"' "$tmp/serve-telemetry.json"
# Observability smoke (docs/OBSERVABILITY.md "Enforcement"): ctl metrics
# exits nonzero unless the scrape passes the in-repo exposition
# validator; the scrape must cover the catalog's breadth; ctl tail must
# page the structured log ring; every grid must have written a Chrome
# trace; and the daemon's own log file must hold JSON records.
./target/release/fdip-serve ctl "$addr" metrics > "$tmp/serve-metrics.txt"
families="$(grep -c '^# TYPE fdip_' "$tmp/serve-metrics.txt")"
if [ "$families" -lt 12 ]; then
  echo "scrape covers only $families families" >&2
  exit 1
fi
grep -q '^fdip_serve_cells_simulated_total ' "$tmp/serve-metrics.txt"
./target/release/fdip-serve ctl "$addr" tail --limit 1024 > "$tmp/serve-tail.txt"
grep -q 'grid admitted' "$tmp/serve-tail.txt"
ls "$tmp"/serve-traces/grid-*.json > /dev/null
grep -q '"traceEvents"' "$tmp"/serve-traces/grid-*.json
grep -q '"msg":"daemon started"' "$tmp/serve-file.log"
./target/release/fdip-serve ctl "$addr" shutdown > /dev/null
wait "$serve_pid"
echo "    served results byte-identical to local; obs surfaces live; daemon drained"

echo "==> fuzz smoke: differential invariants, report determinism, injection"
# The fuzz gate (docs/FUZZ.md): a fixed-seed campaign must pass every
# invariant on every generated program, its Document 7 report must be
# byte-identical across worker counts (the report is clock- and
# host-free by construction), and a deliberately injected invariant
# break must be caught, exit nonzero, and shrink to a replayable case.
for jobs in 2 3; do
  ./target/release/fdip-fuzz run --seed 7 --count 64 --jobs "$jobs" \
    --json "$tmp/fuzz-j$jobs.json" 2> /dev/null
done
diff -u "$tmp/fuzz-j2.json" "$tmp/fuzz-j3.json"
grep -q '"failures": 0' "$tmp/fuzz-j2.json"
grep -q '"tool": "fdip-fuzz"' "$tmp/fuzz-j2.json"
if ./target/release/fdip-fuzz run --seed 7 --count 2 --profile tiny \
    --inject stall-leak --cases "$tmp/fuzz-cases" \
    --json "$tmp/fuzz-inj.json" 2> /dev/null; then
  echo "injected fuzz run unexpectedly passed" >&2
  exit 1
fi
grep -q '"failures": 2' "$tmp/fuzz-inj.json"
case_file="$(ls "$tmp"/fuzz-cases/*.json | head -n 1)"
test -s "$case_file"
./target/release/fdip-fuzz replay "$case_file" 2> /dev/null
echo "    64-program campaign clean; report jobs-identical; injection caught and shrunk"

echo "==> bench smoke: fdip-bench emits a valid document"
./target/release/fdip-bench --instrs 2000 --iters 1 --json "$tmp/bench.json" \
  > /dev/null
test -s "$tmp/bench.json"
grep -q '"instrs_per_sec"' "$tmp/bench.json"
echo "    bench document written"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "verify: OK"
