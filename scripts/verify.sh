#!/usr/bin/env bash
# Full verification gate: build, tests, formatting, docs.
#
# This is what CI runs (quick-suite scale — FDIP_SUITE=quick is set for
# the integration tests' child processes via the tests themselves). All
# cargo invocations are --offline: the three external dependencies
# resolve to in-tree stand-ins under vendor/ (see Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "verify: OK"
