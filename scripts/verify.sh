#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting, docs.
#
# This is what CI runs (quick-suite scale — FDIP_SUITE=quick is set for
# the integration tests' child processes via the tests themselves). All
# cargo invocations are --offline: the three external dependencies
# resolve to in-tree stand-ins under vendor/ (see Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo clippy"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> determinism smoke: FDIP_JOBS=1 vs FDIP_JOBS=2"
# A quick-suite experiments run must produce byte-identical JSON for any
# worker count once the volatile manifest fields are stripped
# (docs/METRICS.md: wall_seconds, generated_unix, git_revision, pool).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for jobs in 1 2; do
  FDIP_SUITE=quick FDIP_WARMUP=2000 FDIP_INSTRS=10000 FDIP_JOBS="$jobs" \
    ./target/release/fdip-experiments --json "$tmp/j$jobs.json" fig7 fig9 \
    > /dev/null
  cargo run -q --release --offline --example strip_results -- \
    "$tmp/j$jobs.json" > "$tmp/j$jobs.stripped.json"
done
diff -u "$tmp/j1.stripped.json" "$tmp/j2.stripped.json"
echo "    identical results at 1 and 2 workers"

echo "==> bench smoke: fdip-bench emits a valid document"
./target/release/fdip-bench --instrs 2000 --iters 1 --json "$tmp/bench.json" \
  > /dev/null
test -s "$tmp/bench.json"
grep -q '"instrs_per_sec"' "$tmp/bench.json"
echo "    bench document written"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "verify: OK"
