#![forbid(unsafe_code)]

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment is offline, so this crate re-implements the small
//! proptest API the workspace's tests use: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`any`], range strategies, tuple
//! strategies, `prop::collection::vec`, and `prop::option::of`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated input via
//!   `Debug` and panics; minimisation is left to the reader.
//! * **Fixed deterministic seeding** derived from the test's file/line, so
//!   failures reproduce across runs. `PROPTEST_CASES` overrides the case
//!   count (default 64).

use std::fmt;

/// Error carried out of a failing property body by the `prop_assert_*`
/// macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The generator handed to strategies (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

// Strategies compose by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, gen: &mut Gen) -> Self::Value {
        (**self).generate(gen)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + gen.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return gen.next_u64() as $t;
                }
                lo + gen.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

/// Marker strategy produced by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// `any::<T>()` — uniform over the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(core::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, gen: &mut Gen) -> bool {
        gen.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                gen.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$i.generate(gen),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection and option strategies, mirroring `proptest::prop`.
pub mod prop {
    /// `prop::collection` — sized containers of generated elements.
    pub mod collection {
        use crate::{Gen, Strategy};

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        /// A vector whose length is drawn from `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                let len = self.size.clone().generate(gen);
                (0..len).map(|_| self.element.generate(gen)).collect()
            }
        }
    }

    /// `prop::option` — optional values.
    pub mod option {
        use crate::{Gen, Strategy};

        /// Strategy for `Option<S::Value>` (`None` 25% of the time, as the
        /// real crate's default weight).
        #[derive(Clone, Debug)]
        pub struct OptionStrategy<S>(S);

        /// Some(value) three times out of four, `None` otherwise.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy(element)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                if gen.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(gen))
                }
            }
        }
    }
}

/// Number of cases per property (`PROPTEST_CASES` env override).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs a property: generates `case_count()` inputs from `strategy` and
/// applies `body`, panicking with the offending input on failure.
///
/// Used by the [`proptest!`] macro; not intended for direct calls.
///
/// # Panics
///
/// Panics when the property body returns an error for any generated input.
pub fn run_property<S: Strategy>(
    file: &str,
    line: u32,
    strategy: &S,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    // Deterministic per-test seed: failures reproduce run over run.
    let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(line);
    for b in file.bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut gen = Gen::new(seed);
    let cases = case_count();
    for case in 0..cases {
        let value = strategy.generate(&mut gen);
        let rendered = format!("{value:?}");
        if let Err(e) = body(value) {
            panic!(
                "proptest: property failed at {file}:{line} (case {case}/{cases}): {e}\n    input: {rendered}"
            );
        }
    }
}

/// Declares property tests. Each function takes `name in strategy`
/// bindings and runs [`case_count()`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_property(
                file!(),
                line!(),
                &($($strategy,)+),
                |($($arg,)+)| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Asserts a condition inside a property body, reporting the failing input
/// instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    }};
}

/// The glob-importable surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 2usize..=6) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..=6).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<bool>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn options_mix(opts in prop::collection::vec(prop::option::of(0u64..10), 40..60)) {
            for v in opts.iter().flatten() {
                prop_assert!(*v < 10);
            }
        }

        #[test]
        fn tuples_generate_componentwise(pair in (0u32..5, 10u32..20)) {
            prop_assert!(pair.0 < 5);
            prop_assert!((10..20).contains(&pair.1));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_reports_input() {
        crate::run_property(file!(), line!(), &(0u64..100,), |(x,)| {
            prop_assert!(x < 1, "x was {x}");
            Ok(())
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::Gen::new(5);
        let mut b = crate::Gen::new(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
