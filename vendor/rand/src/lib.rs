#![forbid(unsafe_code)]

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the workspace carries this minimal, dependency-free
//! implementation of the small `rand` 0.8 API surface it actually uses:
//!
//! * [`rngs::SmallRng`] / [`rngs::StdRng`] — xoshiro256++ behind
//!   [`SeedableRng::seed_from_u64`] (SplitMix64 state expansion, as the real
//!   `SmallRng` documents).
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] over integer and
//!   `f64` ranges (half-open and inclusive).
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The streams differ from the real crate's, which is acceptable here: the
//! workspace only requires *determinism for a fixed seed*, never a specific
//! stream (see `DESIGN.md`). Distribution quality is xoshiro256++, which is
//! far stronger than these synthetic-workload generators need.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose full state is derived from `seed` via
    /// SplitMix64 (so nearby seeds yield unrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: expands seed material into full-width state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire); unbiased
/// enough for simulation workloads and never loops.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample(self) < p
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The non-cryptographic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator behind `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state (cannot happen from
            // SplitMix64, but keep the invariant explicit).
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never relies on `StdRng`'s cryptographic
    /// strength, only on seeded determinism.
    pub type StdRng = SmallRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..8).all(|_| a.gen::<u64>() == b.gen::<u64>());
        assert!(!same);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_mid() {
        let mut r = SmallRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads={heads}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(13);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = SmallRng::seed_from_u64(19);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert_eq!([42u8].choose(&mut r), Some(&42));
    }
}
