#![forbid(unsafe_code)]

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment is offline, so this crate implements the minimal
//! `criterion` 0.5 surface the workspace's `benches/` use: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function`, [`Bencher::iter`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up with one call, then runs
//! whole-closure batches until ~`measurement_millis` have elapsed (bounded
//! by `sample_size` batches), reporting the mean wall-clock time per
//! iteration. No statistics, plots, or baselines — this harness exists so
//! `cargo bench` keeps compiling and gives a usable ns/iter signal, not to
//! replace criterion's analysis.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
    max_iters: u64,
}

impl Bencher {
    /// Times `f`, repeating until the time budget or iteration cap is
    /// reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up round, untimed.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.budget || iters >= self.max_iters {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }
}

/// The benchmark driver.
pub struct Criterion {
    measurement: Duration,
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.measurement, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measurement: self.measurement,
            sample_size: self.sample_size,
            _parent: core::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    sample_size: u64,
    _parent: core::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Shortens or lengthens the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.measurement,
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, measurement: Duration, sample_size: u64, mut f: F) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget: measurement,
        max_iters: sample_size.max(1),
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{name:<40} (no iterations timed)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    println!(
        "{name:<40} {:>12.0} ns/iter ({} iters)",
        per_iter, b.iters_done
    );
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            sample_size: 3,
        };
        let mut ran = 0u32;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            measurement: Duration::from_millis(2),
            sample_size: 2,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
