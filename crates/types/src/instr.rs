//! The fixed-length instruction model shared by the program generator,
//! the branch-prediction substrate, and the simulator.

use crate::addr::Addr;
use std::fmt;

/// Class of a non-branch instruction, used by the backend timing model.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum OpClass {
    /// Simple integer ALU operation (1-cycle execute).
    #[default]
    Alu,
    /// Integer multiply / long-latency ALU operation.
    Mul,
    /// Floating-point operation.
    Fp,
    /// Memory load; execute latency comes from the data-side hierarchy.
    Load,
    /// Memory store.
    Store,
}

impl OpClass {
    /// Returns `true` for loads and stores.
    pub const fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

/// Kind of a branch instruction.
///
/// The distinction that matters to the paper:
///
/// * **PC-relative** branches ([`CondDirect`](BranchKind::CondDirect),
///   [`DirectJump`](BranchKind::DirectJump),
///   [`DirectCall`](BranchKind::DirectCall)) embed their target in the
///   instruction word, so post-fetch correction (PFC) can recover the
///   target at pre-decode time.
/// * [`Return`](BranchKind::Return) targets come from the RAS, also
///   available at pre-decode.
/// * Register-indirect branches ([`IndirectJump`](BranchKind::IndirectJump),
///   [`IndirectCall`](BranchKind::IndirectCall)) have no target until
///   execute, so neither PFC nor BTB prefetching can fix them (§VI-E).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    /// Conditional PC-relative branch.
    CondDirect,
    /// Unconditional PC-relative jump.
    DirectJump,
    /// Unconditional register-indirect jump.
    IndirectJump,
    /// PC-relative function call (pushes the return address on the RAS).
    DirectCall,
    /// Register-indirect function call.
    IndirectCall,
    /// Function return (target popped from the RAS).
    Return,
}

impl BranchKind {
    /// Is the branch conditional (may be not-taken)?
    pub const fn is_conditional(self) -> bool {
        matches!(self, BranchKind::CondDirect)
    }

    /// Is the branch always taken when executed?
    pub const fn is_unconditional(self) -> bool {
        !self.is_conditional()
    }

    /// Does the branch push a return address onto the RAS?
    pub const fn is_call(self) -> bool {
        matches!(self, BranchKind::DirectCall | BranchKind::IndirectCall)
    }

    /// Does the branch pop the RAS?
    pub const fn is_return(self) -> bool {
        matches!(self, BranchKind::Return)
    }

    /// Is the target embedded in the instruction word (PC-relative)?
    pub const fn is_direct(self) -> bool {
        matches!(
            self,
            BranchKind::CondDirect | BranchKind::DirectJump | BranchKind::DirectCall
        )
    }

    /// Is the target produced by a register (unknown until execute)?
    pub const fn is_indirect(self) -> bool {
        matches!(self, BranchKind::IndirectJump | BranchKind::IndirectCall)
    }

    /// Can pre-decode recover this branch's target for PFC (§III-B)?
    ///
    /// True for PC-relative branches (offset embedded in the instruction)
    /// and returns (target from the RAS); false for register-indirect
    /// branches.
    pub const fn pfc_target_available(self) -> bool {
        self.is_direct() || self.is_return()
    }
}

/// Decoded kind of one static instruction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum InstrKind {
    /// A non-branch operation.
    Op(OpClass),
    /// A branch. `target` is the statically-embedded target for direct
    /// branches and [`Addr::NULL`] for indirect branches and returns.
    Branch {
        /// The branch kind.
        kind: BranchKind,
        /// Statically-known target (direct branches only).
        target: Addr,
    },
}

impl Default for InstrKind {
    fn default() -> Self {
        InstrKind::Op(OpClass::Alu)
    }
}

impl InstrKind {
    /// Returns the branch kind, if this is a branch.
    pub const fn branch_kind(self) -> Option<BranchKind> {
        match self {
            InstrKind::Branch { kind, .. } => Some(kind),
            InstrKind::Op(_) => None,
        }
    }

    /// Returns `true` if this instruction is any kind of branch.
    pub const fn is_branch(self) -> bool {
        matches!(self, InstrKind::Branch { .. })
    }

    /// Statically-embedded target (direct branches only).
    pub const fn static_target(self) -> Option<Addr> {
        match self {
            InstrKind::Branch { kind, target } if kind.is_direct() => Some(target),
            _ => None,
        }
    }
}

/// A static instruction: what the binary at an address *is*.
///
/// This is what pre-decode sees; the program model's code image maps each
/// address to one of these.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct StaticInstr {
    /// Decoded kind.
    pub kind: InstrKind,
}

impl StaticInstr {
    /// A plain ALU instruction (also used as unmapped-memory filler).
    pub const NOP: StaticInstr = StaticInstr {
        kind: InstrKind::Op(OpClass::Alu),
    };

    /// Creates a non-branch instruction of the given class.
    pub const fn op(class: OpClass) -> Self {
        StaticInstr {
            kind: InstrKind::Op(class),
        }
    }

    /// Creates a branch instruction.
    pub const fn branch(kind: BranchKind, target: Addr) -> Self {
        StaticInstr {
            kind: InstrKind::Branch { kind, target },
        }
    }
}

/// One committed-path dynamic instruction, as produced by the execution
/// engine: the static instruction plus its actual outcome.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DynInstr {
    /// Program counter.
    pub pc: Addr,
    /// Decoded kind (copied from the static image).
    pub kind: InstrKind,
    /// Actual direction for branches (`true` for all taken branches;
    /// always `false` for non-branches).
    pub taken: bool,
    /// Address of the next committed instruction.
    pub next_pc: Addr,
}

impl DynInstr {
    /// Returns `true` if this instruction is any kind of branch.
    pub const fn is_branch(&self) -> bool {
        self.kind.is_branch()
    }

    /// The actual taken-target of this branch (only meaningful when
    /// `taken` is set).
    pub const fn taken_target(&self) -> Addr {
        self.next_pc
    }
}

impl fmt::Display for DynInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            InstrKind::Op(c) => write!(f, "{} {:?}", self.pc, c),
            InstrKind::Branch { kind, .. } => write!(
                f,
                "{} {:?} {} -> {}",
                self.pc,
                kind,
                if self.taken { "T" } else { "NT" },
                self.next_pc
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_kind_taxonomy() {
        use BranchKind::*;
        assert!(CondDirect.is_conditional());
        for k in [DirectJump, IndirectJump, DirectCall, IndirectCall, Return] {
            assert!(k.is_unconditional(), "{k:?}");
        }
        assert!(DirectCall.is_call());
        assert!(IndirectCall.is_call());
        assert!(Return.is_return());
        assert!(!Return.is_call());
    }

    #[test]
    fn directness_partition() {
        use BranchKind::*;
        for k in [
            CondDirect,
            DirectJump,
            IndirectJump,
            DirectCall,
            IndirectCall,
            Return,
        ] {
            // Every branch is exactly one of direct / indirect / return.
            let n = k.is_direct() as u8 + k.is_indirect() as u8 + k.is_return() as u8;
            assert_eq!(n, 1, "{k:?}");
        }
    }

    #[test]
    fn pfc_target_availability_matches_paper() {
        use BranchKind::*;
        assert!(CondDirect.pfc_target_available());
        assert!(DirectJump.pfc_target_available());
        assert!(DirectCall.pfc_target_available());
        assert!(Return.pfc_target_available());
        assert!(!IndirectJump.pfc_target_available());
        assert!(!IndirectCall.pfc_target_available());
    }

    #[test]
    fn static_target_only_for_direct() {
        let t = Addr::new(0x2000);
        let direct = StaticInstr::branch(BranchKind::DirectJump, t);
        let indirect = StaticInstr::branch(BranchKind::IndirectJump, Addr::NULL);
        assert_eq!(direct.kind.static_target(), Some(t));
        assert_eq!(indirect.kind.static_target(), None);
        assert_eq!(StaticInstr::NOP.kind.static_target(), None);
    }

    #[test]
    fn op_class_memory() {
        assert!(OpClass::Load.is_memory());
        assert!(OpClass::Store.is_memory());
        assert!(!OpClass::Alu.is_memory());
        assert!(!OpClass::Mul.is_memory());
        assert!(!OpClass::Fp.is_memory());
    }

    #[test]
    fn dyn_instr_display_and_target() {
        let d = DynInstr {
            pc: Addr::new(0x100),
            kind: InstrKind::Branch {
                kind: BranchKind::CondDirect,
                target: Addr::new(0x200),
            },
            taken: true,
            next_pc: Addr::new(0x200),
        };
        assert!(d.is_branch());
        assert_eq!(d.taken_target(), Addr::new(0x200));
        let s = format!("{d}");
        assert!(s.contains("0x100"), "{s}");
        assert!(s.contains('T'), "{s}");
    }

    #[test]
    fn nop_is_default() {
        assert_eq!(StaticInstr::default(), StaticInstr::NOP);
        assert!(!StaticInstr::NOP.kind.is_branch());
    }
}
