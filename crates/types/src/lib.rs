#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Shared vocabulary types for the FDIP (Fetch-Directed Instruction
//! Prefetching) reproduction.
//!
//! This crate defines the few concepts every other crate in the workspace
//! speaks: instruction addresses ([`Addr`]), the fixed-length instruction
//! model the paper assumes ([`InstrKind`], [`StaticInstr`], [`DynInstr`]),
//! and block-geometry constants (cache line, FTQ block, BTB set sizes).
//!
//! The paper models fixed-length 32-bit instructions (§IV); every address
//! is 4-byte aligned and a 32-byte FTQ block holds exactly 8 instructions.
//!
//! # Examples
//!
//! ```
//! use fdip_types::{Addr, INSTR_BYTES, FTQ_BLOCK_BYTES};
//!
//! let pc = Addr::new(0x1_0040);
//! assert_eq!(pc.ftq_block(), Addr::new(0x1_0040));
//! assert_eq!(pc.next_instr(), Addr::new(0x1_0044));
//! assert_eq!(FTQ_BLOCK_BYTES / INSTR_BYTES, 8);
//! ```

mod addr;
mod instr;

pub use addr::{Addr, BTB_SET_BYTES, CACHE_LINE_BYTES, FTQ_BLOCK_BYTES, INSTR_BYTES};
pub use instr::{BranchKind, DynInstr, InstrKind, OpClass, StaticInstr};

/// Simulation time, in core clock cycles.
pub type Cycle = u64;
