//! Instruction addresses and block-geometry helpers.

use std::fmt;
use std::ops::{Add, Sub};

/// Size of one instruction in bytes. The paper assumes fixed-length 32-bit
/// instructions (§IV), as in the Arm ISA the authors work on.
pub const INSTR_BYTES: u64 = 4;

/// Size of one I-cache line in bytes (ChampSim / IPC-1 default).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Size of the instruction block covered by one FTQ entry (§IV-A): each
/// entry covers a 32-byte aligned block so all of its instructions fall in
/// the same I-cache line.
pub const FTQ_BLOCK_BYTES: u64 = 32;

/// BTB set-index granularity (§IV-B): all branches in the same 16-byte
/// block map to the same BTB set.
pub const BTB_SET_BYTES: u64 = 16;

/// A virtual instruction address.
///
/// Addresses are plain 64-bit values; the paper's FTQ stores 48 bits of
/// virtual address, which this type comfortably covers. All helpers assume
/// the 4-byte fixed instruction length.
///
/// # Examples
///
/// ```
/// use fdip_types::Addr;
///
/// let pc = Addr::new(0x1000);
/// assert_eq!(pc.next_instr().raw(), 0x1004);
/// assert_eq!(Addr::new(0x103c).ftq_block(), Addr::new(0x1020));
/// assert_eq!(Addr::new(0x103c).ftq_offset(), 7);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The zero address; used as a sentinel for "no target yet".
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null sentinel.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Address of the next sequential instruction.
    pub const fn next_instr(self) -> Addr {
        Addr(self.0 + INSTR_BYTES)
    }

    /// Aligns down to an arbitrary power-of-two block size.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `block` is not a power of two.
    pub const fn align_down(self, block: u64) -> Addr {
        debug_assert!(block.is_power_of_two());
        Addr(self.0 & !(block - 1))
    }

    /// Start address of the cache line containing this address.
    pub const fn cache_line(self) -> Addr {
        self.align_down(CACHE_LINE_BYTES)
    }

    /// Cache-line number (address divided by the line size).
    pub const fn line_number(self) -> u64 {
        self.0 / CACHE_LINE_BYTES
    }

    /// Start address of the 32-byte FTQ block containing this address.
    pub const fn ftq_block(self) -> Addr {
        self.align_down(FTQ_BLOCK_BYTES)
    }

    /// Instruction slot (0..8) of this address within its FTQ block.
    pub const fn ftq_offset(self) -> usize {
        ((self.0 % FTQ_BLOCK_BYTES) / INSTR_BYTES) as usize
    }

    /// Start address of the 16-byte BTB indexing block.
    pub const fn btb_block(self) -> Addr {
        self.align_down(BTB_SET_BYTES)
    }

    /// Byte distance from `other` to `self` (may be negative).
    pub const fn byte_offset_from(self, other: Addr) -> i64 {
        self.0 as i64 - other.0 as i64
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;

    fn sub(self, bytes: u64) -> Addr {
        Addr(self.0 - bytes)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_instr_advances_by_four() {
        assert_eq!(Addr::new(0x100).next_instr(), Addr::new(0x104));
    }

    #[test]
    fn ftq_block_alignment() {
        assert_eq!(Addr::new(0x0).ftq_block(), Addr::new(0x0));
        assert_eq!(Addr::new(0x1f).ftq_block(), Addr::new(0x0));
        assert_eq!(Addr::new(0x20).ftq_block(), Addr::new(0x20));
        assert_eq!(Addr::new(0x3c).ftq_block(), Addr::new(0x20));
    }

    #[test]
    fn ftq_offset_covers_eight_slots() {
        for slot in 0..8u64 {
            let a = Addr::new(0x40 + slot * INSTR_BYTES);
            assert_eq!(a.ftq_offset(), slot as usize);
        }
    }

    #[test]
    fn cache_line_and_line_number_agree() {
        let a = Addr::new(0x1_0044);
        assert_eq!(a.cache_line().raw(), a.line_number() * CACHE_LINE_BYTES);
    }

    #[test]
    fn btb_block_uses_16_bytes() {
        assert_eq!(Addr::new(0x1c).btb_block(), Addr::new(0x10));
        assert_eq!(Addr::new(0x20).btb_block(), Addr::new(0x20));
    }

    #[test]
    fn arithmetic_round_trips() {
        let a = Addr::new(0x1000);
        assert_eq!((a + 16) - 16, a);
        assert_eq!((a + 16).byte_offset_from(a), 16);
        assert_eq!(a.byte_offset_from(a + 16), -16);
    }

    #[test]
    fn conversions() {
        let a: Addr = 0x42u64.into();
        let r: u64 = a.into();
        assert_eq!(r, 0x42);
    }

    #[test]
    fn null_sentinel() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(4).is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    fn debug_and_display_are_hex() {
        let a = Addr::new(0xbeef);
        assert_eq!(format!("{a}"), "0xbeef");
        assert_eq!(format!("{a:?}"), "Addr(0xbeef)");
        assert_eq!(format!("{a:x}"), "beef");
        assert_eq!(format!("{a:X}"), "BEEF");
    }
}
