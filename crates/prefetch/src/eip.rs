//! EIP — the Entangling Instruction Prefetcher (Ros & Jimborean, CAL
//! 2020 / IPC-1 winner; reduced-fidelity reimplementation).
//!
//! EIP *entangles* a destination cache line (one that missed) with a
//! source line that was demand-accessed far enough **in time** to hide
//! the miss latency. When the source line is accessed again, its
//! entangled destinations are prefetched, giving the prefetch the same
//! timeliness headroom. The paper evaluates the original 128KB 34-way
//! entangled table and a realistic 27KB 8-way table (§V).

use fdip_types::Cycle;

/// EIP geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct EipConfig {
    /// Number of source entries in the entangled table.
    pub sources: usize,
    /// Destination slots per source ("ways" of entangling).
    pub dests_per_source: usize,
    /// Cycles of lead the entangling source must have over the miss
    /// (chosen to hide an L2/LLC round trip).
    pub lead_cycles: u64,
}

impl EipConfig {
    /// The original 128KB configuration (§V).
    pub fn kb128() -> Self {
        EipConfig {
            sources: 4096,
            dests_per_source: 4,
            lead_cycles: 250,
        }
    }

    /// The realistic 27KB configuration (§V: 8-way entangled table).
    pub fn kb27() -> Self {
        EipConfig {
            sources: 1024,
            dests_per_source: 4,
            lead_cycles: 250,
        }
    }

    /// Storage in bytes: per source a 40-bit tag plus 40 bits per
    /// destination.
    pub fn size_bytes(&self) -> usize {
        self.sources * (5 + self.dests_per_source * 5)
    }
}

#[derive(Clone, Debug, Default)]
struct SourceEntry {
    src: u64,
    dests: Vec<u64>,
    /// Round-robin replacement cursor.
    cursor: usize,
}

/// How many recent accesses are remembered as entangling-source
/// candidates.
const RECENT_WINDOW: usize = 128;

/// The entangling instruction prefetcher.
///
/// # Examples
///
/// ```
/// use fdip_prefetch::{Eip, EipConfig};
///
/// let mut p = Eip::new(EipConfig::kb27());
/// let mut out = Vec::new();
/// p.on_access(1, true, 0, &mut out);
/// ```
#[derive(Clone, Debug)]
pub struct Eip {
    config: EipConfig,
    table: Vec<SourceEntry>,
    /// FIFO of recent demand accesses: (line, cycle).
    recent: std::collections::VecDeque<(u64, Cycle)>,
}

impl Eip {
    /// Creates the prefetcher.
    pub fn new(config: EipConfig) -> Self {
        Eip {
            config,
            table: vec![SourceEntry::default(); config.sources.next_power_of_two()],
            recent: std::collections::VecDeque::with_capacity(RECENT_WINDOW),
        }
    }

    fn idx(&self, line: u64) -> usize {
        let x = line.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (x as usize >> 16) & (self.table.len() - 1)
    }

    fn entangle(&mut self, src: u64, dst: u64) {
        if src == dst {
            return;
        }
        let cap = self.config.dests_per_source;
        let i = self.idx(src);
        let e = &mut self.table[i];
        if e.src != src {
            e.src = src;
            e.dests.clear();
            e.cursor = 0;
        }
        if e.dests.contains(&dst) {
            return;
        }
        if e.dests.len() < cap {
            e.dests.push(dst);
        } else {
            e.dests[e.cursor] = dst;
            e.cursor = (e.cursor + 1) % cap;
        }
    }

    /// Picks the youngest recent access that still has `lead_cycles` of
    /// headroom over `now`.
    fn pick_source(&self, now: Cycle) -> Option<u64> {
        let deadline = now.saturating_sub(self.config.lead_cycles);
        self.recent
            .iter()
            .rev()
            .find(|&&(_, t)| t <= deadline)
            .map(|&(l, _)| l)
            .or_else(|| self.recent.front().map(|&(l, _)| l))
    }

    /// Demand-access hook: misses are entangled with a source accessed
    /// at least `lead_cycles` earlier; every access prefetches its
    /// entangled destinations.
    pub fn on_access(&mut self, line: u64, hit: bool, now: Cycle, out: &mut Vec<u64>) {
        if !hit {
            if let Some(src) = self.pick_source(now) {
                self.entangle(src, line);
            }
        }
        // Prefetch this line's entangled destinations, chasing one
        // level of further entanglements for depth (successful
        // prefetching accelerates the fetch stream, so first-level
        // destinations alone lose their timeliness).
        let start = out.len();
        let i = self.idx(line);
        let e = &self.table[i];
        if e.src == line {
            out.extend_from_slice(&e.dests);
        }
        let first = out.len();
        for k in start..first {
            let d = out[k];
            let j = self.idx(d);
            let de = &self.table[j];
            if de.src == d {
                out.extend_from_slice(&de.dests);
            }
        }
        // Record the access as a future entangling source (dedupe
        // back-to-back repeats).
        if self.recent.back().map(|&(l, _)| l) != Some(line) {
            self.recent.push_back((line, now));
            if self.recent.len() > RECENT_WINDOW {
                self.recent.pop_front();
            }
        }
    }

    /// Metadata storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.config.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_paper_classes() {
        let b128 = EipConfig::kb128().size_bytes();
        let b27 = EipConfig::kb27().size_bytes();
        assert!(
            (100 * 1024..=160 * 1024).contains(&b128),
            "128KB class: {b128}"
        );
        assert!((20 * 1024..=36 * 1024).contains(&b27), "27KB class: {b27}");
    }

    #[test]
    fn recurring_stream_prefetches_with_lead() {
        let cfg = EipConfig::kb27();
        let mut p = Eip::new(cfg);
        let mut out = Vec::new();
        // A recurring miss stream, one miss every 10 cycles.
        let stream: Vec<u64> = (0..60).map(|i| 1000 + i * 10).collect();
        for round in 0..2 {
            for (i, &l) in stream.iter().enumerate() {
                out.clear();
                let now = (round * stream.len() + i) as u64 * 10;
                p.on_access(l, round == 0, now, &mut out);
            }
        }
        // Accessing an early line must prefetch a line at least
        // lead_cycles/10 elements ahead.
        out.clear();
        p.on_access(stream[0], true, 4_000, &mut out);
        let min_ahead = (cfg.lead_cycles / 10) as usize;
        assert!(
            out.iter()
                .any(|&l| l >= stream[min_ahead.min(stream.len() - 1)]),
            "{out:?}"
        );
    }

    #[test]
    fn dest_capacity_is_bounded() {
        let cfg = EipConfig::kb27();
        let mut p = Eip::new(cfg);
        for d in 0..100u64 {
            p.entangle(5, 1000 + d);
        }
        let e = &p.table[p.idx(5)];
        assert_eq!(e.dests.len(), cfg.dests_per_source);
    }

    #[test]
    fn self_entangling_is_ignored() {
        let mut p = Eip::new(EipConfig::kb27());
        p.entangle(7, 7);
        let e = &p.table[p.idx(7)];
        assert!(e.dests.is_empty() || e.src != 7);
    }

    #[test]
    fn larger_budget_retains_more_sources() {
        let mut big = Eip::new(EipConfig::kb128());
        let mut small = Eip::new(EipConfig::kb27());
        let srcs: Vec<u64> = (0..800u64).map(|i| 10_000 + i * 3).collect();
        for &s in &srcs {
            big.entangle(s, s + 1);
            small.entangle(s, s + 1);
        }
        let count = |e: &Eip| {
            srcs.iter()
                .filter(|&&s| {
                    let entry = &e.table[e.idx(s)];
                    entry.src == s
                })
                .count()
        };
        assert!(
            count(&big) > count(&small),
            "{} vs {}",
            count(&big),
            count(&small)
        );
    }

    #[test]
    fn source_selection_respects_lead() {
        let mut p = Eip::new(EipConfig::kb27());
        let mut out = Vec::new();
        p.on_access(1, true, 0, &mut out);
        p.on_access(2, true, 50, &mut out);
        p.on_access(3, true, 95, &mut out);
        // At cycle 100 with 60-cycle lead, only lines accessed at t<=40
        // qualify: line 1.
        assert_eq!(p.pick_source(100), Some(1));
        // With nothing old enough, the oldest is used as fallback.
        assert_eq!(p.pick_source(10), Some(1));
    }
}
