//! RDIP — Return-address-stack Directed Instruction Prefetching
//! (Kolli, Saidi, Wenisch, MICRO 2013; reduced-fidelity
//! reimplementation).
//!
//! The paper's related work (§VII-A): RDIP correlates I-cache misses
//! with the *program context* captured from the return address stack;
//! when the same RAS context recurs, the recorded miss lines are
//! prefetched. D-JOLT (also implemented here) replaces the stack
//! signature with a FIFO of return addresses — having both allows the
//! comparison the D-JOLT authors motivate.

use fdip_types::{Addr, BranchKind, Cycle};

/// RDIP geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RdipConfig {
    /// log2 entries of the signature table.
    pub table_log2: u32,
    /// Miss lines recorded per signature.
    pub lines_per_entry: usize,
    /// RAS entries hashed into the signature.
    pub sig_depth: usize,
}

impl Default for RdipConfig {
    fn default() -> Self {
        RdipConfig {
            table_log2: 11,
            lines_per_entry: 8,
            sig_depth: 4,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct Entry {
    sig: u64,
    lines: Vec<u64>,
}

/// The RDIP instruction prefetcher.
///
/// # Examples
///
/// ```
/// use fdip_prefetch::{Rdip, RdipConfig};
/// use fdip_types::{Addr, BranchKind};
///
/// let mut p = Rdip::new(RdipConfig::default());
/// let mut out = Vec::new();
/// p.on_branch_prefetch(Addr::new(0x100), BranchKind::DirectCall, Addr::new(0x900), &mut out);
/// p.on_access(700, false, 0, &mut out); // recorded under the context
/// ```
#[derive(Clone, Debug)]
pub struct Rdip {
    config: RdipConfig,
    table: Vec<Entry>,
    /// Mirror of the committed-path call stack (return addresses).
    stack: Vec<u64>,
}

impl Rdip {
    /// Creates the prefetcher.
    pub fn new(config: RdipConfig) -> Self {
        Rdip {
            config,
            table: vec![Entry::default(); 1 << config.table_log2],
            stack: Vec::with_capacity(64),
        }
    }

    fn signature(&self) -> u64 {
        let mut sig = 0x9e37_79b9_7f4a_7c15u64;
        for &ra in self.stack.iter().rev().take(self.config.sig_depth) {
            sig = sig.rotate_left(11) ^ ra;
        }
        sig
    }

    fn idx(&self, sig: u64) -> usize {
        ((sig ^ (sig >> 23)) as usize) & ((1 << self.config.table_log2) - 1)
    }

    /// Branch hook: calls push / returns pop the mirrored stack; every
    /// context change replays the footprint recorded under the new
    /// signature.
    pub fn on_branch_prefetch(
        &mut self,
        pc: Addr,
        kind: BranchKind,
        _target: Addr,
        out: &mut Vec<u64>,
    ) {
        if kind.is_call() {
            if self.stack.len() >= 64 {
                self.stack.remove(0);
            }
            self.stack.push(pc.next_instr().raw());
        } else if kind.is_return() {
            self.stack.pop();
        } else {
            return;
        }
        let sig = self.signature();
        let e = &self.table[self.idx(sig)];
        if e.sig == sig {
            out.extend_from_slice(&e.lines);
        }
    }

    /// Demand-access hook: misses are recorded under the current RAS
    /// context.
    pub fn on_access(&mut self, line: u64, hit: bool, _now: Cycle, _out: &mut Vec<u64>) {
        if hit {
            return;
        }
        let sig = self.signature();
        let i = self.idx(sig);
        let e = &mut self.table[i];
        if e.sig != sig {
            e.sig = sig;
            e.lines.clear();
        }
        if !e.lines.contains(&line) {
            if e.lines.len() >= self.config.lines_per_entry {
                e.lines.remove(0);
            }
            e.lines.push(line);
        }
    }

    /// Metadata storage in bytes (16-bit partial sig + 40-bit lines per
    /// entry).
    pub fn storage_bytes(&self) -> usize {
        (1usize << self.config.table_log2) * (2 + self.config.lines_per_entry * 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(p: &mut Rdip, site: u64, out: &mut Vec<u64>) {
        p.on_branch_prefetch(
            Addr::new(site),
            BranchKind::DirectCall,
            Addr::new(site + 0x1000),
            out,
        );
    }

    fn ret(p: &mut Rdip, out: &mut Vec<u64>) {
        p.on_branch_prefetch(Addr::new(0), BranchKind::Return, Addr::NULL, out);
    }

    #[test]
    fn recurring_ras_context_replays_footprint() {
        let mut p = Rdip::new(RdipConfig::default());
        let mut out = Vec::new();
        call(&mut p, 0x100, &mut out);
        call(&mut p, 0x200, &mut out);
        for l in [40u64, 41, 99] {
            p.on_access(l, false, 0, &mut out);
        }
        // Leave and re-enter the same context.
        ret(&mut p, &mut out);
        out.clear();
        call(&mut p, 0x200, &mut out);
        assert!(out.contains(&40), "{out:?}");
        assert!(out.contains(&41), "{out:?}");
        assert!(out.contains(&99), "{out:?}");
    }

    #[test]
    fn different_context_replays_nothing() {
        let mut p = Rdip::new(RdipConfig::default());
        let mut out = Vec::new();
        call(&mut p, 0x100, &mut out);
        p.on_access(40, false, 0, &mut out);
        out.clear();
        call(&mut p, 0x300, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn conditional_branches_do_not_change_context() {
        let mut p = Rdip::new(RdipConfig::default());
        let mut out = Vec::new();
        call(&mut p, 0x100, &mut out);
        let depth = p.stack.len();
        p.on_branch_prefetch(
            Addr::new(0x104),
            BranchKind::CondDirect,
            Addr::new(0x200),
            &mut out,
        );
        assert_eq!(p.stack.len(), depth);
    }

    #[test]
    fn footprint_capacity_is_bounded() {
        let cfg = RdipConfig::default();
        let mut p = Rdip::new(cfg);
        let mut out = Vec::new();
        call(&mut p, 0x100, &mut out);
        for l in 0..50u64 {
            p.on_access(l, false, 0, &mut out);
        }
        let sig = p.signature();
        let i = p.idx(sig);
        assert_eq!(p.table[i].lines.len(), cfg.lines_per_entry);
    }

    #[test]
    fn storage_is_modest() {
        let p = Rdip::new(RdipConfig::default());
        assert!(p.storage_bytes() <= 128 * 1024, "{}", p.storage_bytes());
    }
}
