//! D-JOLT — the "distant jolt" prefetcher from IPC-1 (reduced-fidelity
//! reimplementation from the championship description).
//!
//! D-JOLT improves on RDIP by generating its lookup signature from a
//! **FIFO of recent function return addresses** (rather than a stack), so
//! the signature keeps changing monotonically through deep call chains.
//! Each signature maps to the set of I-cache miss lines observed while it
//! was live; when the same signature recurs, those lines are prefetched.
//! Two tables at different signature depths give a short-range and a
//! long-range ("distant") view.

use fdip_types::{Addr, BranchKind};

/// D-JOLT geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DjoltConfig {
    /// log2 entries per signature table.
    pub table_log2: u32,
    /// Miss lines recorded per signature entry.
    pub lines_per_entry: usize,
    /// Calls/returns folded into the short-range signature.
    pub short_depth: usize,
    /// Calls/returns folded into the long-range signature.
    pub long_depth: usize,
}

impl Default for DjoltConfig {
    fn default() -> Self {
        DjoltConfig {
            table_log2: 11,
            lines_per_entry: 8,
            short_depth: 2,
            long_depth: 5,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct SigEntry {
    sig: u64,
    lines: Vec<u64>,
}

#[derive(Clone, Debug)]
struct SigTable {
    entries: Vec<SigEntry>,
    mask: usize,
    lines_per_entry: usize,
}

impl SigTable {
    fn new(log2: u32, lines_per_entry: usize) -> Self {
        SigTable {
            entries: vec![SigEntry::default(); 1 << log2],
            mask: (1 << log2) - 1,
            lines_per_entry,
        }
    }

    fn idx(&self, sig: u64) -> usize {
        ((sig ^ (sig >> 17)) as usize) & self.mask
    }

    fn record(&mut self, sig: u64, line: u64) {
        let i = self.idx(sig);
        let e = &mut self.entries[i];
        if e.sig != sig {
            e.sig = sig;
            e.lines.clear();
        }
        if !e.lines.contains(&line) {
            if e.lines.len() >= self.lines_per_entry {
                e.lines.remove(0);
            }
            e.lines.push(line);
        }
    }

    fn lookup(&self, sig: u64, out: &mut Vec<u64>) {
        let e = &self.entries[self.idx(sig)];
        if e.sig == sig {
            out.extend_from_slice(&e.lines);
        }
    }
}

/// The D-JOLT instruction prefetcher.
///
/// # Examples
///
/// ```
/// use fdip_prefetch::{Djolt, DjoltConfig};
/// use fdip_types::{Addr, BranchKind};
///
/// let mut p = Djolt::new(DjoltConfig::default());
/// let mut out = Vec::new();
/// p.on_branch(Addr::new(0x100), BranchKind::DirectCall, Addr::new(0x900));
/// p.on_access(700, false, 0, &mut out); // miss recorded under the signature
/// ```
#[derive(Clone, Debug)]
pub struct Djolt {
    config: DjoltConfig,
    short: SigTable,
    long: SigTable,
    /// FIFO of recent call/return site hashes.
    fifo: Vec<u64>,
}

impl Djolt {
    /// Creates the prefetcher.
    pub fn new(config: DjoltConfig) -> Self {
        Djolt {
            config,
            short: SigTable::new(config.table_log2, config.lines_per_entry),
            long: SigTable::new(config.table_log2, config.lines_per_entry),
            fifo: Vec::with_capacity(config.long_depth),
        }
    }

    fn signature(&self, depth: usize) -> u64 {
        let mut sig = 0xcbf2_9ce4_8422_2325u64;
        for &h in self.fifo.iter().rev().take(depth) {
            sig = (sig.rotate_left(13)) ^ h;
        }
        sig
    }

    /// Retired-branch hook: calls and returns advance the signature FIFO
    /// and trigger prefetches for the new context — the lead comes from
    /// the signature changing *before* the new function's lines are
    /// demanded.
    pub fn on_branch_prefetch(
        &mut self,
        pc: Addr,
        kind: BranchKind,
        target: Addr,
        out: &mut Vec<u64>,
    ) {
        if !(kind.is_call() || kind.is_return()) {
            return;
        }
        let h = (pc.raw() >> 2) ^ (target.raw() >> 2).rotate_left(21);
        self.fifo.push(h);
        if self.fifo.len() > self.config.long_depth {
            self.fifo.remove(0);
        }
        self.short
            .lookup(self.signature(self.config.short_depth), out);
        self.long
            .lookup(self.signature(self.config.long_depth), out);
    }

    /// Retired-branch hook without prefetch output (signature update
    /// only).
    pub fn on_branch(&mut self, pc: Addr, kind: BranchKind, target: Addr) {
        let mut sink = Vec::new();
        self.on_branch_prefetch(pc, kind, target, &mut sink);
    }

    /// Demand-access hook: misses are recorded under both live
    /// signatures so the footprints replay on recurrence.
    pub fn on_access(&mut self, line: u64, hit: bool, _now: fdip_types::Cycle, out: &mut Vec<u64>) {
        let _ = out;
        if !hit {
            self.short
                .record(self.signature(self.config.short_depth), line);
            self.long
                .record(self.signature(self.config.long_depth), line);
        }
    }

    /// Metadata storage in bytes: each entry holds a ~16-bit partial sig
    /// plus `lines_per_entry` 40-bit line numbers.
    pub fn storage_bytes(&self) -> usize {
        let per_entry = 2 + self.config.lines_per_entry * 5;
        2 * (1usize << self.config.table_log2) * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(p: &mut Djolt, site: u64, target: u64) {
        p.on_branch(Addr::new(site), BranchKind::DirectCall, Addr::new(target));
    }

    #[test]
    fn recurring_context_prefetches_recorded_misses() {
        let mut p = Djolt::new(DjoltConfig::default());
        let mut out = Vec::new();
        // Context A: calls from sites 0x100, 0x200; misses 50, 60, 70
        // recorded while the context is live.
        call(&mut p, 0x100, 0x1000);
        call(&mut p, 0x200, 0x2000);
        for l in [50u64, 60, 70] {
            p.on_access(l, false, 0, &mut out);
        }
        // Different context in between.
        call(&mut p, 0x900, 0x9000);
        call(&mut p, 0x901, 0x9100);
        p.on_access(500, false, 0, &mut out);
        // Recreate context A: re-entering it must replay the footprint.
        out.clear();
        p.on_branch_prefetch(
            Addr::new(0x100),
            BranchKind::DirectCall,
            Addr::new(0x1000),
            &mut out,
        );
        out.clear();
        p.on_branch_prefetch(
            Addr::new(0x200),
            BranchKind::DirectCall,
            Addr::new(0x2000),
            &mut out,
        );
        assert!(out.contains(&50), "{out:?}");
        assert!(out.contains(&60), "{out:?}");
        assert!(out.contains(&70), "{out:?}");
    }

    #[test]
    fn missing_context_prefetches_nothing() {
        let mut p = Djolt::new(DjoltConfig::default());
        let mut out = Vec::new();
        call(&mut p, 0x42, 0x4200);
        p.on_access(123, false, 0, &mut out);
        // A fresh signature has no recorded footprint; entering another
        // fresh context emits nothing.
        out.clear();
        p.on_branch_prefetch(
            Addr::new(0x43),
            BranchKind::DirectCall,
            Addr::new(0x4300),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hits_are_not_recorded() {
        let mut p = Djolt::new(DjoltConfig::default());
        let mut out = Vec::new();
        call(&mut p, 0x1, 0x10);
        p.on_access(5, true, 0, &mut out);
        // Re-entering the context replays only recorded (missed) lines.
        p.on_branch_prefetch(
            Addr::new(0x1),
            BranchKind::DirectCall,
            Addr::new(0x10),
            &mut out,
        );
        assert!(!out.contains(&5), "{out:?}");
    }

    #[test]
    fn non_call_branches_do_not_move_signature() {
        let mut p = Djolt::new(DjoltConfig::default());
        let s0 = p.signature(5);
        p.on_branch(Addr::new(0x10), BranchKind::CondDirect, Addr::new(0x20));
        p.on_branch(Addr::new(0x30), BranchKind::DirectJump, Addr::new(0x40));
        assert_eq!(p.signature(5), s0);
        p.on_branch(Addr::new(0x50), BranchKind::Return, Addr::new(0x60));
        assert_ne!(p.signature(5), s0);
    }

    #[test]
    fn storage_is_within_ipc1_class_budget() {
        let p = Djolt::new(DjoltConfig::default());
        assert!(p.storage_bytes() <= 256 * 1024, "{}", p.storage_bytes());
    }
}
