#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Instruction prefetchers for the FDIP reproduction.
//!
//! Implements the baselines the paper compares against (§V, §VI):
//!
//! * [`NextLine`] — NL1: prefetch the next line on a miss.
//! * [`FnlMma`] — Seznec's IPC-1 winner: Footprint Next Line + Multiple
//!   Miss Ahead.
//! * [`Djolt`] — D-JOLT: return-address-FIFO signatures → miss footprints.
//! * [`Eip`] — the Entangling Instruction Prefetcher, at the paper's
//!   128KB and 27KB budgets.
//! * [`SnfourlDis`] — Divide-and-Conquer's SN4L (usefulness-filtered
//!   next-four-line) + discontinuity prefetcher; its BTB-prefetch
//!   component is driven by the simulator (pre-decode on fill).
//!
//! Each prefetcher consumes the demand I-cache access/miss stream (and,
//! for D-JOLT, retired calls/returns) and emits candidate line numbers;
//! the simulator issues them into the [`fdip_mem`](../fdip_mem/index.html)
//! hierarchy, which filters redundant requests (at the cost of tag probes
//! — the Fig. 9 effect). Fidelity note: these are structurally-faithful,
//! reduced implementations built from the IPC-1/ISCA descriptions
//! (DESIGN.md §4).

mod djolt;
mod dnc;
mod eip;
mod fnl_mma;
mod nl;
mod rdip;

pub use djolt::{Djolt, DjoltConfig};
pub use dnc::{SnfourlDis, SnfourlDisConfig};
pub use eip::{Eip, EipConfig};
pub use fnl_mma::{FnlMma, FnlMmaConfig};
pub use nl::NextLine;
pub use rdip::{Rdip, RdipConfig};

use fdip_types::{Addr, BranchKind, Cycle};

/// The instruction-prefetcher configurations the experiments select from.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PrefetcherKind {
    /// No prefetching.
    #[default]
    None,
    /// Next-line-on-miss.
    NextLine,
    /// FNL+MMA at its IPC-1 budget.
    FnlMma,
    /// D-JOLT at its IPC-1 budget.
    Djolt,
    /// EIP with the original 128KB entangled table.
    Eip128,
    /// EIP with the realistic 27KB entangled table.
    Eip27,
    /// Divide-and-Conquer SN4L+Dis (no BTB prefetching).
    SnfourlDis,
    /// Divide-and-Conquer SN4L+Dis with BTB prefetching.
    SnfourlDisBtb,
    /// RDIP (related work §VII-A; D-JOLT's predecessor).
    Rdip,
    /// Perfect prefetching (§V): instant fills, traffic still issued.
    Perfect,
}

impl PrefetcherKind {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::NextLine => "NL1",
            PrefetcherKind::FnlMma => "FNL+MMA",
            PrefetcherKind::Djolt => "D-JOLT",
            PrefetcherKind::Eip128 => "EIP-128KB",
            PrefetcherKind::Eip27 => "EIP-27KB",
            PrefetcherKind::SnfourlDis => "SN4L+Dis",
            PrefetcherKind::SnfourlDisBtb => "SN4L+Dis+BTB",
            PrefetcherKind::Rdip => "RDIP",
            PrefetcherKind::Perfect => "Perfect",
        }
    }

    /// Does this configuration ask the frontend to pre-decode I-cache
    /// fills and install discovered branches into the BTB (§VI-E)?
    pub fn wants_btb_prefetch(self) -> bool {
        matches!(self, PrefetcherKind::SnfourlDisBtb)
    }

    /// Is this the perfect prefetcher (handled specially by the core)?
    pub fn is_perfect(self) -> bool {
        matches!(self, PrefetcherKind::Perfect)
    }

    /// Instantiates the prefetcher.
    pub fn build(self) -> Prefetcher {
        match self {
            PrefetcherKind::None | PrefetcherKind::Perfect => Prefetcher::None,
            PrefetcherKind::NextLine => Prefetcher::NextLine(NextLine::new()),
            PrefetcherKind::FnlMma => Prefetcher::FnlMma(FnlMma::new(FnlMmaConfig::default())),
            PrefetcherKind::Djolt => Prefetcher::Djolt(Djolt::new(DjoltConfig::default())),
            PrefetcherKind::Eip128 => Prefetcher::Eip(Eip::new(EipConfig::kb128())),
            PrefetcherKind::Eip27 => Prefetcher::Eip(Eip::new(EipConfig::kb27())),
            PrefetcherKind::SnfourlDis | PrefetcherKind::SnfourlDisBtb => {
                Prefetcher::SnfourlDis(SnfourlDis::new(SnfourlDisConfig::default()))
            }
            PrefetcherKind::Rdip => Prefetcher::Rdip(Rdip::new(RdipConfig::default())),
        }
    }
}

/// A constructed instruction prefetcher (enum dispatch).
#[derive(Clone, Debug, Default)]
pub enum Prefetcher {
    /// No prefetcher (also used for `Perfect`, which the core drives).
    #[default]
    None,
    /// See [`NextLine`].
    NextLine(NextLine),
    /// See [`FnlMma`].
    FnlMma(FnlMma),
    /// See [`Djolt`].
    Djolt(Djolt),
    /// See [`Eip`].
    Eip(Eip),
    /// See [`SnfourlDis`].
    SnfourlDis(SnfourlDis),
    /// See [`Rdip`].
    Rdip(Rdip),
}

impl Prefetcher {
    /// Feeds one demand I-cache access (line number + hit/miss at cycle
    /// `now`) and appends candidate prefetch lines to `out`.
    pub fn on_access(&mut self, line: u64, hit: bool, now: Cycle, out: &mut Vec<u64>) {
        match self {
            Prefetcher::None => {}
            Prefetcher::NextLine(p) => p.on_access(line, hit, now, out),
            Prefetcher::FnlMma(p) => p.on_access(line, hit, now, out),
            Prefetcher::Djolt(p) => p.on_access(line, hit, now, out),
            Prefetcher::Eip(p) => p.on_access(line, hit, now, out),
            Prefetcher::SnfourlDis(p) => p.on_access(line, hit, now, out),
            Prefetcher::Rdip(p) => p.on_access(line, hit, now, out),
        }
    }

    /// Feeds one retired branch (D-JOLT builds its signatures from calls
    /// and returns, and prefetches on every signature change).
    pub fn on_branch(&mut self, pc: Addr, kind: BranchKind, target: Addr, out: &mut Vec<u64>) {
        match self {
            Prefetcher::Djolt(p) => p.on_branch_prefetch(pc, kind, target, out),
            Prefetcher::Rdip(p) => p.on_branch_prefetch(pc, kind, target, out),
            _ => {}
        }
    }

    /// Does this prefetcher implement a redundant-request filter?
    /// FNL+MMA does (paper §VI-D footnote); the others probe the I-cache
    /// tags for every candidate, which is Fig. 9's tag-traffic effect.
    pub fn has_reissue_filter(&self) -> bool {
        matches!(self, Prefetcher::FnlMma(_))
    }

    /// Metadata storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        match self {
            Prefetcher::None => 0,
            Prefetcher::NextLine(_) => 0,
            Prefetcher::FnlMma(p) => p.storage_bytes(),
            Prefetcher::Djolt(p) => p.storage_bytes(),
            Prefetcher::Eip(p) => p.storage_bytes(),
            Prefetcher::SnfourlDis(p) => p.storage_bytes(),
            Prefetcher::Rdip(p) => p.storage_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(PrefetcherKind::Eip128.label(), "EIP-128KB");
        assert_eq!(PrefetcherKind::FnlMma.label(), "FNL+MMA");
        assert_eq!(PrefetcherKind::Perfect.label(), "Perfect");
    }

    #[test]
    fn only_dnc_btb_variant_wants_btb_prefetch() {
        for k in [
            PrefetcherKind::None,
            PrefetcherKind::NextLine,
            PrefetcherKind::FnlMma,
            PrefetcherKind::Djolt,
            PrefetcherKind::Eip128,
            PrefetcherKind::Eip27,
            PrefetcherKind::SnfourlDis,
            PrefetcherKind::Rdip,
            PrefetcherKind::Perfect,
        ] {
            assert!(!k.wants_btb_prefetch(), "{k:?}");
        }
        assert!(PrefetcherKind::SnfourlDisBtb.wants_btb_prefetch());
    }

    #[test]
    fn eip_budgets_differ() {
        let big = PrefetcherKind::Eip128.build().storage_bytes();
        let small = PrefetcherKind::Eip27.build().storage_bytes();
        assert!(big > 3 * small, "{big} vs {small}");
    }

    #[test]
    fn none_emits_nothing() {
        let mut p = Prefetcher::None;
        let mut out = Vec::new();
        p.on_access(10, false, 0, &mut out);
        assert!(out.is_empty());
        assert_eq!(p.storage_bytes(), 0);
    }
}
