//! Divide-and-Conquer (Ansari et al., ISCA 2020) prefetching components:
//! SN4L + Dis (§VI-E; reduced-fidelity reimplementation).
//!
//! * **SN4L (selective next-four-line)**: prefetches among the next four
//!   lines, filtered by a usefulness table — only lines that proved
//!   useful after the trigger line before are prefetched again.
//! * **Dis (discontinuity)**: records jumps between two I-cache miss
//!   lines in a `DisTable`; on an access to the jump source, the recorded
//!   discontinuous line is prefetched.
//!
//! The third component, **BTB prefetching**, needs the frontend's
//! pre-decoder and BTB, so the simulator implements it (driven by
//! [`crate::PrefetcherKind::wants_btb_prefetch`]).

/// SN4L+Dis geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SnfourlDisConfig {
    /// log2 entries of the SN4L usefulness table (4-bit vectors).
    pub sn4l_log2: u32,
    /// log2 entries of the discontinuity table.
    pub dis_log2: u32,
}

impl Default for SnfourlDisConfig {
    fn default() -> Self {
        SnfourlDisConfig {
            sn4l_log2: 13,
            dis_log2: 12,
        }
    }
}

/// The SN4L+Dis prefetcher.
///
/// # Examples
///
/// ```
/// use fdip_prefetch::{SnfourlDis, SnfourlDisConfig};
///
/// let mut p = SnfourlDis::new(SnfourlDisConfig::default());
/// let mut out = Vec::new();
/// p.on_access(10, false, 0, &mut out);
/// ```
#[derive(Clone, Debug)]
pub struct SnfourlDis {
    config: SnfourlDisConfig,
    /// Per (hashed) line: bitmask of which of the next 4 lines were
    /// useful.
    footprint: Vec<u8>,
    /// Discontinuity table: hashed source miss line -> discontinuous
    /// target miss line.
    dis: Vec<u64>,
    last_miss: u64,
    /// Recent trigger lines, for training the footprint.
    recent: Vec<u64>,
}

impl SnfourlDis {
    /// Creates the prefetcher.
    pub fn new(config: SnfourlDisConfig) -> Self {
        SnfourlDis {
            config,
            footprint: vec![0; 1 << config.sn4l_log2],
            dis: vec![0; 1 << config.dis_log2],
            last_miss: u64::MAX,
            recent: Vec::with_capacity(8),
        }
    }

    fn fidx(&self, line: u64) -> usize {
        let x = line ^ (line >> self.config.sn4l_log2 as u64);
        (x as usize) & ((1 << self.config.sn4l_log2) - 1)
    }

    fn didx(&self, line: u64) -> usize {
        let x = line.wrapping_mul(0x2545_f491_4f6c_dd1d);
        (x as usize >> 8) & ((1 << self.config.dis_log2) - 1)
    }

    /// Demand-access hook.
    pub fn on_access(&mut self, line: u64, hit: bool, _now: fdip_types::Cycle, out: &mut Vec<u64>) {
        // --- SN4L training: if this access is within 4 lines after a
        // recent trigger, mark that trigger's footprint bit.
        for &t in &self.recent {
            let d = line.wrapping_sub(t);
            if (1..=4).contains(&d) {
                let i = self.fidx(t);
                self.footprint[i] |= 1 << (d - 1);
            }
        }
        self.recent.push(line);
        if self.recent.len() > 8 {
            self.recent.remove(0);
        }

        // --- SN4L prefetch: only previously-useful next lines.
        let fp = self.footprint[self.fidx(line)];
        for d in 1..=4u64 {
            if fp & (1 << (d - 1)) != 0 {
                out.push(line + d);
            }
        }

        // --- Dis: record discontinuous miss-to-miss jumps and prefetch
        // recorded ones.
        if !hit {
            if self.last_miss != u64::MAX {
                let delta = line.abs_diff(self.last_miss);
                if delta > 4 {
                    let i = self.didx(self.last_miss);
                    self.dis[i] = line;
                }
            }
            self.last_miss = line;
        }
        let dis_target = self.dis[self.didx(line)];
        if dis_target != 0 && dis_target != line {
            out.push(dis_target);
        }
    }

    /// Metadata storage in bytes (4-bit footprints + 40-bit dis lines).
    pub fn storage_bytes(&self) -> usize {
        self.footprint.len() / 2 + self.dis.len() * 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sn4l_prefetches_only_proven_next_lines() {
        let mut p = SnfourlDis::new(SnfourlDisConfig::default());
        let mut out = Vec::new();
        // Train: after line 100, lines 101 and 103 are used (102/104 not).
        for _ in 0..2 {
            p.on_access(100, false, 0, &mut out);
            p.on_access(101, false, 0, &mut out);
            p.on_access(103, false, 0, &mut out);
            p.on_access(900, false, 0, &mut out); // break the window
        }
        out.clear();
        p.on_access(100, true, 0, &mut out);
        assert!(out.contains(&101), "{out:?}");
        assert!(out.contains(&103), "{out:?}");
        assert!(!out.contains(&102), "{out:?}");
        assert!(!out.contains(&104), "{out:?}");
    }

    #[test]
    fn dis_records_discontinuities() {
        let mut p = SnfourlDis::new(SnfourlDisConfig::default());
        let mut out = Vec::new();
        // Miss at 50 followed by miss at 5000: a discontinuity.
        p.on_access(50, false, 0, &mut out);
        p.on_access(5000, false, 0, &mut out);
        out.clear();
        p.on_access(50, false, 0, &mut out);
        assert!(out.contains(&5000), "{out:?}");
    }

    #[test]
    fn near_misses_are_not_discontinuities() {
        let mut p = SnfourlDis::new(SnfourlDisConfig::default());
        let mut out = Vec::new();
        p.on_access(50, false, 0, &mut out);
        p.on_access(52, false, 0, &mut out); // delta <= 4: SN4L's job
        out.clear();
        p.on_access(50, false, 0, &mut out);
        // SN4L may prefetch 52 via the footprint, but the discontinuity
        // table must not have recorded a near jump.
        assert_eq!(p.dis[p.didx(50)], 0);
    }

    #[test]
    fn cold_tables_prefetch_nothing() {
        let mut p = SnfourlDis::new(SnfourlDisConfig::default());
        let mut out = Vec::new();
        p.on_access(77, true, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn storage_is_modest() {
        let p = SnfourlDis::new(SnfourlDisConfig::default());
        assert!(p.storage_bytes() <= 32 * 1024, "{}", p.storage_bytes());
    }
}
