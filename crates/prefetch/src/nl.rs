//! NL1: next-line prefetching on a miss (§V "Next line").

/// The simplest instruction prefetcher: on every I-cache miss to line
/// `L`, prefetch `L + 1`.
///
/// # Examples
///
/// ```
/// use fdip_prefetch::NextLine;
///
/// let mut nl = NextLine::new();
/// let mut out = Vec::new();
/// nl.on_access(100, false, 0, &mut out);
/// assert_eq!(out, vec![101]);
/// ```
#[derive(Copy, Clone, Debug, Default)]
pub struct NextLine;

impl NextLine {
    /// Creates the prefetcher (stateless).
    pub fn new() -> Self {
        NextLine
    }

    /// Demand-access hook: emits `line + 1` on misses.
    pub fn on_access(&mut self, line: u64, hit: bool, _now: fdip_types::Cycle, out: &mut Vec<u64>) {
        if !hit {
            out.push(line + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetches_only_on_miss() {
        let mut nl = NextLine::new();
        let mut out = Vec::new();
        nl.on_access(10, true, 0, &mut out);
        assert!(out.is_empty());
        nl.on_access(10, false, 0, &mut out);
        assert_eq!(out, vec![11]);
    }
}
