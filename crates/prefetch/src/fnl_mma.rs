//! FNL+MMA — Seznec's IPC-1 prefetcher (reduced-fidelity reimplementation
//! from the championship description).
//!
//! Two cooperating components:
//!
//! * **FNL (Footprint Next Line)**: an aggressive next-line engine gated
//!   by a *worthiness* table — per line (hashed), 2-bit confidence that
//!   the sequentially-following lines were actually useful in the past.
//!   On an access to line `L`, the next `degree` lines whose worthiness
//!   is established are prefetched.
//! * **MMA (Multiple Miss Ahead)**: a temporal component that pairs each
//!   miss with the miss that occurred `distance` misses later, so on a
//!   recurring miss the stream can jump ahead of the demand front.

/// FNL+MMA geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FnlMmaConfig {
    /// log2 entries of the FNL worthiness table (2-bit counters).
    pub fnl_log2: u32,
    /// Max sequential lines prefetched per access.
    pub fnl_degree: u64,
    /// log2 entries of the MMA table (one 40-bit line number each).
    pub mma_log2: u32,
    /// How many misses ahead MMA links (the "miss ahead" distance).
    pub mma_distance: usize,
    /// Number of MMA targets prefetched per miss.
    pub mma_degree: usize,
}

impl Default for FnlMmaConfig {
    fn default() -> Self {
        FnlMmaConfig {
            fnl_log2: 14,
            fnl_degree: 4,
            mma_log2: 13,
            mma_distance: 6,
            mma_degree: 3,
        }
    }
}

/// The FNL+MMA instruction prefetcher.
///
/// # Examples
///
/// ```
/// use fdip_prefetch::{FnlMma, FnlMmaConfig};
///
/// let mut p = FnlMma::new(FnlMmaConfig::default());
/// let mut out = Vec::new();
/// // Teach the sequential footprint: lines 100,101,102 miss in order.
/// for round in 0..4 {
///     for l in 100..103 {
///         out.clear();
///         p.on_access(l, round > 2, 0, &mut out);
///     }
/// }
/// out.clear();
/// p.on_access(100, true, 0, &mut out);
/// assert!(out.contains(&101));
/// ```
#[derive(Clone, Debug)]
pub struct FnlMma {
    config: FnlMmaConfig,
    /// 2-bit worthiness per (hashed) line: is `line + 1` useful?
    worthiness: Vec<u8>,
    /// MMA table: hashed miss line -> a later miss line.
    mma: Vec<u64>,
    /// Recent miss FIFO for MMA training.
    recent_misses: Vec<u64>,
    last_line: u64,
}

impl FnlMma {
    /// Creates the prefetcher.
    pub fn new(config: FnlMmaConfig) -> Self {
        FnlMma {
            config,
            worthiness: vec![0; 1 << config.fnl_log2],
            mma: vec![0; 1 << config.mma_log2],
            recent_misses: Vec::with_capacity(config.mma_distance + 1),
            last_line: u64::MAX,
        }
    }

    fn widx(&self, line: u64) -> usize {
        let x = line ^ (line >> self.config.fnl_log2 as u64);
        (x as usize) & ((1 << self.config.fnl_log2) - 1)
    }

    fn midx(&self, line: u64) -> usize {
        let x = line ^ (line >> 9).wrapping_mul(0x9e37_79b9);
        (x as usize) & ((1 << self.config.mma_log2) - 1)
    }

    /// Demand-access hook.
    pub fn on_access(&mut self, line: u64, hit: bool, _now: fdip_types::Cycle, out: &mut Vec<u64>) {
        // --- FNL training: a sequential step from L to L+1 marks L worthy.
        if self.last_line != u64::MAX && line == self.last_line + 1 {
            let i = self.widx(self.last_line);
            self.worthiness[i] = (self.worthiness[i] + 1).min(3);
        } else if self.last_line != u64::MAX && line != self.last_line {
            // A non-sequential departure decays worthiness slowly.
            let i = self.widx(self.last_line);
            if self.worthiness[i] > 0 && line.is_multiple_of(7) {
                self.worthiness[i] -= 1;
            }
        }
        self.last_line = line;

        // --- FNL prefetch: walk forward while worthiness holds.
        let mut l = line;
        for _ in 0..self.config.fnl_degree {
            if self.worthiness[self.widx(l)] >= 2 {
                out.push(l + 1);
                l += 1;
            } else {
                break;
            }
        }

        if !hit {
            // --- MMA training: link the miss from `distance` misses ago
            // to this miss.
            if self.recent_misses.len() >= self.config.mma_distance {
                let src = self.recent_misses[self.recent_misses.len() - self.config.mma_distance];
                let i = self.midx(src);
                self.mma[i] = line;
            }
            self.recent_misses.push(line);
            if self.recent_misses.len() > self.config.mma_distance + 1 {
                self.recent_misses.remove(0);
            }
        }

        // --- MMA prefetch: chase the ahead-links on every access (a
        // successfully prefetched line hits, and must still extend the
        // stream or the chain collapses after one round).
        let mut cur = line;
        for _ in 0..self.config.mma_degree {
            let t = self.mma[self.midx(cur)];
            if t == 0 || t == cur {
                break;
            }
            out.push(t);
            cur = t;
        }
    }

    /// Metadata storage in bytes (2-bit worthiness + 40-bit MMA lines).
    pub fn storage_bytes(&self) -> usize {
        self.worthiness.len() / 4 + self.mma.len() * 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnl_learns_sequential_footprints() {
        let mut p = FnlMma::new(FnlMmaConfig::default());
        let mut out = Vec::new();
        for _ in 0..4 {
            for l in 200..208 {
                p.on_access(l, false, 0, &mut out);
            }
        }
        out.clear();
        p.on_access(200, true, 0, &mut out);
        assert!(out.contains(&201), "{out:?}");
        assert!(out.contains(&202), "{out:?}");
    }

    #[test]
    fn fnl_does_not_prefetch_unworthy_lines() {
        let mut p = FnlMma::new(FnlMmaConfig::default());
        let mut out = Vec::new();
        // Random non-sequential accesses build no worthiness.
        for l in [10u64, 500, 90, 7000, 33] {
            p.on_access(l, false, 0, &mut out);
        }
        out.clear();
        p.on_access(10, true, 0, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn mma_links_recurring_miss_streams() {
        let cfg = FnlMmaConfig::default();
        let mut p = FnlMma::new(cfg);
        let mut out = Vec::new();
        // A recurring discontiguous miss stream.
        let stream = [1000u64, 2000, 3000, 4000, 5000, 6000, 7000];
        for _ in 0..3 {
            for &l in &stream {
                p.on_access(l, false, 0, &mut out);
            }
        }
        out.clear();
        p.on_access(1000, false, 0, &mut out);
        // 1000 links `mma_distance` misses ahead -> 7000.
        assert!(out.contains(&7000), "{out:?}");
    }

    #[test]
    fn storage_is_within_ipc1_class_budget() {
        let p = FnlMma::new(FnlMmaConfig::default());
        assert!(p.storage_bytes() <= 64 * 1024, "{}", p.storage_bytes());
    }
}
