//! The pass registry: five named passes over the lexed token stream.
//!
//! Each pass is a pure function from one source file's tokens to
//! findings; scoping (which files a pass examines) lives in the pass
//! itself so the driver stays a dumb loop. All passes skip
//! `#[cfg(test)]` / `#[test]` regions except `unsafe-forbid`, which
//! covers test code too — an `unsafe` block is a soundness question no
//! matter where it sits.

use crate::lexer::{in_loop_map, TokKind, Token};
use crate::report::{Finding, Severity};

/// Shared context passed to every pass.
pub struct PassCtx {
    /// Contents of `docs/METRICS.md` (empty when missing, which makes
    /// every emitted key a finding — the doc is part of the contract).
    pub metrics_doc: String,
    /// Contents of `docs/SERVE.md` — the wire-protocol contract. Keys
    /// emitted by the serve daemon and its client codec may be
    /// documented here instead of in `docs/METRICS.md`.
    pub serve_doc: String,
}

/// One source file, lexed.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Token stream from [`crate::lexer::lex`].
    pub tokens: Vec<Token>,
}

/// A registered pass.
pub struct Pass {
    /// Stable id used in diagnostics and allowlist entries.
    pub id: &'static str,
    /// One-line description for `--list-passes`.
    pub description: &'static str,
    /// The pass body.
    pub run: fn(&PassCtx, &SourceFile, &mut Vec<Finding>),
}

/// All passes, in fixed registry order.
pub fn registry() -> Vec<Pass> {
    vec![
        Pass {
            id: "determinism",
            description: "flags wall-clock reads, hash-order iteration, thread ids, and \
                          un-seeded randomness in result-affecting crates",
            run: determinism,
        },
        Pass {
            id: "atomics",
            description: "flags Ordering::Relaxed on executor atomics (cross-thread hand-off \
                          needs Acquire/Release)",
            run: atomics,
        },
        Pass {
            id: "panic-audit",
            description: "flags unwrap/expect/panic! and indexing-in-loop in the hot-path \
                          modules",
            run: panic_audit,
        },
        Pass {
            id: "unsafe-forbid",
            description: "locks in the zero-unsafe invariant: any `unsafe` needs a SAFETY \
                          comment and an allowlist entry",
            run: unsafe_forbid,
        },
        Pass {
            id: "schema-drift",
            description: "cross-checks emitted JSON keys against docs/METRICS.md",
            run: schema_drift,
        },
    ]
}

/// Crates whose code affects simulation *results* (as opposed to
/// timing-only telemetry): anything here must be bit-deterministic.
const RESULT_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/bpred/src/",
    "crates/mem/src/",
    "crates/program/src/",
    "crates/harness/src/",
    "crates/prefetch/src/",
    "crates/types/src/",
    "crates/serve/src/",
    "crates/fuzz/src/",
    // The observability plane never touches results, but it runs inside
    // the daemon process; covering it confines every wall-clock read to
    // its allowlisted `clock` module.
    "crates/obs/src/",
];

/// Files allowed to document their emitted keys in `docs/SERVE.md`
/// (the wire-protocol spec) instead of `docs/METRICS.md`: the serve
/// daemon and the client-side codec in the harness.
fn uses_serve_doc(path: &str) -> bool {
    path.starts_with("crates/serve/src/") || path == "crates/harness/src/remote.rs"
}

/// Hot-path modules where a panic or a missed bound costs correctness
/// or throughput on every simulated cycle.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/sim.rs",
    "crates/core/src/meta.rs",
    "crates/core/src/probe.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/table.rs",
];

/// Indices of non-comment tokens, the scanning view every pass uses.
fn significant(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::Comment)
        .map(|(i, _)| i)
        .collect()
}

/// Does `sig[s..]` start with the path `first::second`?
fn path_pair(tokens: &[Token], sig: &[usize], s: usize, first: &str, second: &str) -> bool {
    tokens[sig[s]].is_ident(first)
        && s + 3 < sig.len()
        && tokens[sig[s + 1]].is_punct(':')
        && tokens[sig[s + 2]].is_punct(':')
        && tokens[sig[s + 3]].is_ident(second)
}

fn finding(
    pass: &'static str,
    file: &str,
    t: &Token,
    severity: Severity,
    needle: &str,
    message: String,
) -> Finding {
    Finding {
        pass,
        file: file.to_string(),
        line: t.line,
        col: t.col,
        severity,
        needle: needle.to_string(),
        message,
        justification: None,
    }
}

/// Pass 1: determinism hazards in result-affecting crates.
fn determinism(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    if !RESULT_CRATES.iter().any(|p| src.path.starts_with(p)) {
        return;
    }
    let sig = significant(&src.tokens);
    for (s, &i) in sig.iter().enumerate() {
        let t = &src.tokens[i];
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => out.push(finding(
                "determinism",
                &src.path,
                t,
                Severity::Error,
                &t.text,
                format!(
                    "{} iteration order varies across runs; results must be byte-identical — \
                     use BTreeMap/BTreeSet or an in-repo table (ProbeTable/FillMap)",
                    t.text
                ),
            )),
            "Instant" | "SystemTime" => out.push(finding(
                "determinism",
                &src.path,
                t,
                Severity::Error,
                &t.text,
                format!(
                    "{} reads the wall clock; simulated time must come from the cycle \
                     counter (timing telemetry belongs outside result-affecting code)",
                    t.text
                ),
            )),
            "thread" if path_pair(&src.tokens, &sig, s, "thread", "current") => out.push(finding(
                "determinism",
                &src.path,
                t,
                Severity::Error,
                "thread::current",
                "thread identity leaks scheduler state into results".to_string(),
            )),
            "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng" => out.push(finding(
                "determinism",
                &src.path,
                t,
                Severity::Error,
                &t.text,
                format!(
                    "{} draws un-seeded randomness; construct rngs with \
                     SeedableRng::seed_from_u64 so runs replay exactly",
                    t.text
                ),
            )),
            _ => {}
        }
    }
}

/// Pass 2: `Ordering::Relaxed` in the executor.
fn atomics(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    if !src.path.starts_with("crates/exec/src/") {
        return;
    }
    let sig = significant(&src.tokens);
    for (s, &i) in sig.iter().enumerate() {
        let t = &src.tokens[i];
        if t.in_test {
            continue;
        }
        if path_pair(&src.tokens, &sig, s, "Ordering", "Relaxed") {
            out.push(finding(
                "atomics",
                &src.path,
                t,
                Severity::Error,
                "Ordering::Relaxed",
                "Relaxed ordering on an executor atomic: anything guarding cross-thread \
                 hand-off needs Acquire/Release; a pure telemetry tally may be allowlisted"
                    .to_string(),
            ));
        }
    }
}

/// Pass 3: panic sites and loop indexing in the hot-path modules.
fn panic_audit(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&src.path.as_str()) {
        return;
    }
    let sig = significant(&src.tokens);
    let loops = in_loop_map(&src.tokens);
    for (s, &i) in sig.iter().enumerate() {
        let t = &src.tokens[i];
        if t.in_test {
            continue;
        }
        let prev = s.checked_sub(1).map(|p| &src.tokens[sig[p]]);
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "unwrap" | "expect" if prev.is_some_and(|p| p.is_punct('.')) => {
                    out.push(finding(
                        "panic-audit",
                        &src.path,
                        t,
                        Severity::Error,
                        &t.text,
                        format!(
                            ".{}() can panic on the hot path; restructure to an infallible \
                             pattern (let-else / if-let) or allowlist with justification",
                            t.text
                        ),
                    ));
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if sig.get(s + 1).is_some_and(|&n| src.tokens[n].is_punct('!')) =>
                {
                    out.push(finding(
                        "panic-audit",
                        &src.path,
                        t,
                        Severity::Error,
                        &format!("{}!", t.text),
                        format!(
                            "{}! aborts the simulation from the hot path; return a \
                             recoverable state or allowlist with justification",
                            t.text
                        ),
                    ));
                }
                _ => {}
            },
            // Index expression: `expr[`, i.e. `[` directly after an
            // ident or a closing bracket — never after `#` (attribute)
            // or an operator (array literal / type).
            TokKind::Punct
                if t.text == "["
                    && loops[i]
                    && prev.is_some_and(|p| {
                        p.kind == TokKind::Ident || p.is_punct(')') || p.is_punct(']')
                    }) =>
            {
                out.push(finding(
                    "panic-audit",
                    &src.path,
                    t,
                    Severity::Note,
                    "index",
                    "bounds-checked indexing inside a loop; prefer iterators or prove \
                     the bound once outside the loop (advisory)"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Pass 5 (registry order 4): the zero-`unsafe` lock-in, everywhere
/// including tests and vendored stand-ins.
fn unsafe_forbid(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in src.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // A `// SAFETY: …` comment must immediately precede the block
        // (within the previous few tokens, so an attribute or visibility
        // keyword in between still counts).
        let has_safety = src.tokens[i.saturating_sub(4)..i]
            .iter()
            .any(|p| p.kind == TokKind::Comment && p.text.contains("SAFETY:"));
        let (needle, message) = if has_safety {
            (
                "unsafe",
                "the workspace is unsafe-free; new unsafe requires an allowlist entry \
                 justifying why safe code cannot express this"
                    .to_string(),
            )
        } else {
            (
                "unsafe-missing-safety-comment",
                "unsafe without an immediately preceding `// SAFETY:` comment; document \
                 the invariant the block relies on, then allowlist it"
                    .to_string(),
            )
        };
        out.push(finding(
            "unsafe-forbid",
            &src.path,
            t,
            Severity::Error,
            needle,
            message,
        ));
    }
}

/// Pass 5: emitted JSON keys (`.with("k", …)` / `.set("k", …)`) must be
/// documented — appear in backticks — in `docs/METRICS.md`.
fn schema_drift(ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    let in_crate_src = src.path.starts_with("crates/") && src.path.contains("/src/");
    if !(in_crate_src || src.path.starts_with("src/")) || src.path.starts_with("vendor/") {
        return;
    }
    let sig = significant(&src.tokens);
    for s in 0..sig.len() {
        let t = &src.tokens[sig[s]];
        if t.in_test || !t.is_punct('.') {
            continue;
        }
        let Some(&m) = sig.get(s + 1) else { continue };
        let method = &src.tokens[m];
        if !(method.is_ident("with") || method.is_ident("set")) {
            continue;
        }
        let Some(&p) = sig.get(s + 2) else { continue };
        if !src.tokens[p].is_punct('(') {
            continue;
        }
        let Some(&k) = sig.get(s + 3) else { continue };
        let key = &src.tokens[k];
        if key.kind != TokKind::Str || key.text.is_empty() {
            continue;
        }
        let needle = format!("`{}`", key.text);
        let documented = ctx.metrics_doc.contains(&needle)
            || (uses_serve_doc(&src.path) && ctx.serve_doc.contains(&needle));
        if !documented {
            let where_ = if uses_serve_doc(&src.path) {
                "docs/METRICS.md or docs/SERVE.md"
            } else {
                "docs/METRICS.md"
            };
            out.push(finding(
                "schema-drift",
                &src.path,
                key,
                Severity::Error,
                &key.text,
                format!(
                    "emitted JSON key \"{}\" is not documented in {where_} — \
                     document it (and bump schema_version on renames)",
                    key.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_pass(id: &str, path: &str, code: &str, doc: &str) -> Vec<Finding> {
        run_pass_with_serve(id, path, code, doc, "")
    }

    fn run_pass_with_serve(
        id: &str,
        path: &str,
        code: &str,
        doc: &str,
        serve_doc: &str,
    ) -> Vec<Finding> {
        let ctx = PassCtx {
            metrics_doc: doc.to_string(),
            serve_doc: serve_doc.to_string(),
        };
        let src = SourceFile {
            path: path.to_string(),
            tokens: lex(code),
        };
        let pass = registry()
            .into_iter()
            .find(|p| p.id == id)
            .expect("pass registered");
        let mut out = Vec::new();
        (pass.run)(&ctx, &src, &mut out);
        out
    }

    #[test]
    fn registry_has_the_five_documented_passes() {
        let ids: Vec<&str> = registry().iter().map(|p| p.id).collect();
        assert_eq!(
            ids,
            [
                "determinism",
                "atomics",
                "panic-audit",
                "unsafe-forbid",
                "schema-drift"
            ]
        );
    }

    #[test]
    fn determinism_flags_only_result_crates() {
        let code = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let hits = run_pass("determinism", "crates/core/src/sim.rs", code, "");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.needle == "Instant"));
        // The executor and telemetry crates measure wall time by design.
        assert!(run_pass("determinism", "crates/exec/src/lib.rs", code, "").is_empty());
        assert!(run_pass("determinism", "crates/telemetry/src/manifest.rs", code, "").is_empty());
    }

    #[test]
    fn determinism_catches_each_hazard_class() {
        let code = "fn f() {\n  let m: HashMap<u8, u8> = HashMap::new();\n  \
                    let s = HashSet::new();\n  let t = SystemTime::now();\n  \
                    let id = thread::current().id();\n  let r = thread_rng();\n}";
        let hits = run_pass("determinism", "crates/mem/src/cache.rs", code, "");
        let needles: Vec<&str> = hits.iter().map(|f| f.needle.as_str()).collect();
        assert!(needles.contains(&"HashMap"));
        assert!(needles.contains(&"HashSet"));
        assert!(needles.contains(&"SystemTime"));
        assert!(needles.contains(&"thread::current"));
        assert!(needles.contains(&"thread_rng"));
    }

    #[test]
    fn determinism_ignores_tests_comments_and_strings() {
        let code = "// a HashMap in prose\nfn f() { let s = \"HashMap\"; }\n\
                    #[cfg(test)]\nmod tests { use std::collections::HashMap;\n  \
                    fn g() { let m = HashMap::new(); } }";
        assert!(run_pass("determinism", "crates/core/src/sim.rs", code, "").is_empty());
    }

    #[test]
    fn atomics_flags_relaxed_in_exec_only() {
        let code = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); \
                    c.load(Ordering::Acquire); }";
        let hits = run_pass("atomics", "crates/exec/src/lib.rs", code, "");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].needle, "Ordering::Relaxed");
        assert!(run_pass("atomics", "crates/core/src/sim.rs", code, "").is_empty());
    }

    #[test]
    fn panic_audit_flags_method_panics_and_macros() {
        let code = "fn f(x: Option<u8>) -> u8 {\n  let a = x.unwrap();\n  \
                    let b = x.expect(\"present\");\n  if a > b { panic!(\"no\"); }\n  \
                    match a { 0 => unreachable!(), _ => a }\n}";
        let hits = run_pass("panic-audit", "crates/core/src/sim.rs", code, "");
        let needles: Vec<&str> = hits.iter().map(|f| f.needle.as_str()).collect();
        assert_eq!(needles, ["unwrap", "expect", "panic!", "unreachable!"]);
        assert!(hits.iter().all(|f| f.severity == Severity::Error));
        // Same code in a non-hot-path file: out of scope.
        assert!(run_pass("panic-audit", "crates/core/src/config.rs", code, "").is_empty());
    }

    #[test]
    fn panic_audit_does_not_flag_definitions_or_tests() {
        let code = "impl Foo {\n  pub fn unwrap(self) -> u8 { self.0 }\n  \
                    pub fn expect(self, _m: &str) -> u8 { self.0 }\n}\n\
                    #[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }";
        assert!(run_pass("panic-audit", "crates/core/src/sim.rs", code, "").is_empty());
    }

    #[test]
    fn panic_audit_notes_indexing_only_inside_loops() {
        let code = "fn f(v: &[u8]) -> u8 {\n  let head = v[0];\n  \
                    let mut acc = 0;\n  for i in 0..v.len() { acc += v[i]; }\n  \
                    acc + head\n}";
        let hits = run_pass("panic-audit", "crates/core/src/sim.rs", code, "");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Note);
        assert_eq!(hits[0].needle, "index");
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn unsafe_forbid_covers_everything_and_distinguishes_safety_comments() {
        let bare = "fn f() { unsafe { work(); } }";
        let hits = run_pass("unsafe-forbid", "vendor/rand/src/lib.rs", bare, "");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].needle, "unsafe-missing-safety-comment");
        let commented = "fn f() {\n  // SAFETY: len checked above\n  unsafe { work(); }\n}";
        let hits = run_pass("unsafe-forbid", "crates/core/src/sim.rs", commented, "");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].needle, "unsafe");
        // Test code is NOT exempt for this pass.
        let in_test = "#[cfg(test)]\nmod tests { fn t() { unsafe { work(); } } }";
        assert_eq!(
            run_pass("unsafe-forbid", "tests/properties.rs", in_test, "").len(),
            1
        );
        // The word inside a string or comment does not count.
        let quoted = "// unsafe in prose\nfn f() { let s = \"unsafe\"; }";
        assert!(run_pass("unsafe-forbid", "src/lib.rs", quoted, "").is_empty());
    }

    #[test]
    fn schema_drift_checks_keys_against_the_doc() {
        let code = "fn j() -> Json { Json::obj().with(\"ipc\", 1.0).with(\"bogus_key\", 2.0) }";
        let doc = "| `ipc` | instructions per cycle |";
        let hits = run_pass("schema-drift", "crates/core/src/stats.rs", code, doc);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].needle, "bogus_key");
        // Dynamic keys (non-literal first argument) are skipped.
        let dynamic = "fn j(k: &str) -> Json { Json::obj().with(k, 1.0) }";
        assert!(run_pass("schema-drift", "crates/core/src/stats.rs", dynamic, doc).is_empty());
        // Vendored stand-ins and test code are out of scope.
        assert!(run_pass("schema-drift", "vendor/criterion/src/lib.rs", code, doc).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn t() { Json::obj().with(\"zzz\", 1); } }";
        assert!(run_pass("schema-drift", "crates/telemetry/src/json.rs", in_test, doc).is_empty());
    }

    #[test]
    fn schema_drift_lets_serve_code_document_keys_in_serve_md() {
        let code = "fn j() -> Json { Json::obj().with(\"grid_id\", 1).with(\"ipc\", 1.0) }";
        let metrics = "| `ipc` | instructions per cycle |";
        let serve = "| `grid_id` | content hash of the grid |";
        // Serve daemon and the harness codec may use either doc.
        for path in [
            "crates/serve/src/scheduler.rs",
            "crates/harness/src/remote.rs",
        ] {
            assert!(
                run_pass_with_serve("schema-drift", path, code, metrics, serve).is_empty(),
                "{path}"
            );
            let hits = run_pass_with_serve("schema-drift", path, code, metrics, "");
            assert_eq!(hits.len(), 1, "{path}");
            assert_eq!(hits[0].needle, "grid_id");
        }
        // Everything else must still use docs/METRICS.md exclusively.
        let hits = run_pass_with_serve(
            "schema-drift",
            "crates/core/src/stats.rs",
            code,
            metrics,
            serve,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].needle, "grid_id");
    }

    #[test]
    fn determinism_covers_the_serve_crate() {
        let code = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let hits = run_pass("determinism", "crates/serve/src/telemetry.rs", code, "");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.needle == "Instant"));
    }

    #[test]
    fn determinism_covers_the_obs_crate() {
        let code = "use std::time::SystemTime;\nfn f() { let t = SystemTime::now(); }";
        let hits = run_pass("determinism", "crates/obs/src/log.rs", code, "");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.needle == "SystemTime"));
    }
}
