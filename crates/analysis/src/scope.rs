//! Scope queries over a parsed [`crate::ast::Ast`]: "am I inside a
//! loop", "which fn encloses this node", and the intra-file hot-function
//! call graph the `hot-alloc` pass uses for its "reachable from a loop"
//! semantics.
//!
//! Everything is precomputed into plain vectors indexed by [`NodeId`] so
//! a [`ScopeInfo`] can live inside the per-file `SourceFile` without
//! borrowing the tree.
//!
//! Loop semantics follow execution counts, not syntax: a `for` header
//! runs once (the iterator is built before the first iteration), so only
//! the *body* of a `for` counts as inside the loop, while a `while`
//! header re-executes every iteration and counts along with its body.
//! Closure bodies inherit the loop context of the closure expression —
//! a closure built inside a loop is (for lint purposes) called inside
//! it.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Ast, LoopKind, NodeId, NodeKind, Recv};

/// Precomputed scope facts for one file's tree.
#[derive(Clone, Debug)]
pub struct ScopeInfo {
    /// Per node: does it execute inside a loop (any nesting level)?
    in_loop: Vec<bool>,
    /// Per node: the innermost enclosing [`NodeKind::Fn`] node, if any.
    encl_fn: Vec<Option<NodeId>>,
    /// Fn nodes transitively reachable from an in-loop call site in this
    /// file (see [`ScopeInfo::in_hot_fn`]).
    hot_fns: BTreeSet<NodeId>,
}

impl ScopeInfo {
    /// Builds the scope tables for `ast`.
    pub fn build(ast: &Ast) -> ScopeInfo {
        let n = ast.nodes.len();
        let mut info = ScopeInfo {
            in_loop: vec![false; n],
            encl_fn: vec![None; n],
            hot_fns: BTreeSet::new(),
        };
        if n > 0 {
            mark(ast, 0, false, None, &mut info);
        }
        info.hot_fns = hot_fns(ast, &info);
        info
    }

    /// Does `id` execute inside a loop (directly, in this file)?
    pub fn in_loop(&self, id: NodeId) -> bool {
        self.in_loop[id]
    }

    /// The innermost `fn` item containing `id`, if any.
    pub fn enclosing_fn(&self, id: NodeId) -> Option<NodeId> {
        self.encl_fn[id]
    }

    /// Is `id` inside a *hot* fn — one whose name is called (directly or
    /// transitively through other local fns) from an in-loop call site
    /// somewhere in this file? This is the `hot-alloc` reachability
    /// test: code in such a fn runs once per loop iteration even though
    /// no loop is syntactically visible around it.
    pub fn in_hot_fn(&self, id: NodeId) -> bool {
        self.encl_fn[id].is_some_and(|f| self.hot_fns.contains(&f))
    }

    /// `in_loop || in_hot_fn` — the full "reachable inside a loop" test.
    pub fn reachable_in_loop(&self, id: NodeId) -> bool {
        self.in_loop(id) || self.in_hot_fn(id)
    }
}

/// Recursive mark pass carrying (in_loop, enclosing fn) down the tree.
fn mark(ast: &Ast, id: NodeId, in_loop: bool, encl: Option<NodeId>, info: &mut ScopeInfo) {
    info.in_loop[id] = in_loop;
    info.encl_fn[id] = encl;
    let node = &ast.nodes[id];
    match &node.kind {
        NodeKind::Fn { .. } => {
            // A nested fn item's body does not execute where it is
            // written; its loop context starts fresh.
            for &c in &node.children {
                mark(ast, c, false, Some(id), info);
            }
        }
        NodeKind::Loop { kind, body } => {
            for &c in &node.children {
                // `for` headers run once; `while`/`loop` headers rerun.
                let child_in_loop = match kind {
                    LoopKind::For => in_loop || c == *body,
                    LoopKind::While | LoopKind::Loop => true,
                };
                mark(ast, c, child_in_loop, encl, info);
            }
        }
        _ => {
            for &c in &node.children {
                mark(ast, c, in_loop, encl, info);
            }
        }
    }
}

/// Computes the hot-fn set: seed with every local fn name called from an
/// in-loop site, then close transitively over "a hot fn's call sites are
/// themselves loop-reachable". Resolution is by name within the file
/// (methods and free fns share the namespace — good enough for lint;
/// same-named fns on two impls merge conservatively).
fn hot_fns(ast: &Ast, info: &ScopeInfo) -> BTreeSet<NodeId> {
    // Name -> fn node ids (duplicates possible across impl blocks).
    let mut by_name: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
    for id in ast.walk() {
        if let NodeKind::Fn { name, .. } = &ast.nodes[id].kind {
            if !name.is_empty() {
                by_name.entry(name.as_str()).or_default().push(id);
            }
        }
    }
    // Call sites that can resolve to a local fn: bare-path calls
    // (`helper(..)`), explicit `Self::helper(..)`, and `self.method(..)`.
    // A qualified path through any other type (`Vec::new(..)`,
    // `Instant::now(..)`) names that type's associated fn — it must not
    // mark a same-named local fn (usually a constructor `new`) hot.
    let mut sites: Vec<(NodeId, &str)> = Vec::new();
    for id in ast.walk() {
        let callee = match &ast.nodes[id].kind {
            NodeKind::Call { path } => match path.rsplit_once("::") {
                None => path.as_str(),
                Some(("Self", tail)) => tail,
                Some(_) => continue,
            },
            NodeKind::MethodCall {
                name,
                recv: Recv::SelfDot,
            } => name.as_str(),
            _ => continue,
        };
        if by_name.contains_key(callee) {
            sites.push((id, callee));
        }
    }
    let mut hot: BTreeSet<NodeId> = BTreeSet::new();
    loop {
        let mut grew = false;
        for (site, callee) in &sites {
            let site_hot =
                info.in_loop[*site] || info.encl_fn[*site].is_some_and(|f| hot.contains(&f));
            if !site_hot {
                continue;
            }
            for &f in &by_name[callee] {
                grew |= hot.insert(f);
            }
        }
        if !grew {
            break;
        }
    }
    hot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn scoped(src: &str) -> (crate::ast::Ast, ScopeInfo) {
        let toks = lex(src);
        let ast = parse(&toks);
        ast.validate().expect("valid ast");
        let info = ScopeInfo::build(&ast);
        (ast, info)
    }

    /// Finds the call/macro node invoking `name`.
    fn call_site(ast: &Ast, name: &str) -> NodeId {
        ast.walk()
            .find(|&id| match &ast.nodes[id].kind {
                NodeKind::Call { path } => path == name,
                NodeKind::MacroCall { name: n } => n == name,
                NodeKind::MethodCall { name: n, .. } => n == name,
                _ => false,
            })
            .unwrap_or_else(|| panic!("no call to {name}"))
    }

    #[test]
    fn loop_bodies_count_and_for_headers_do_not() {
        let (ast, info) = scoped(
            "fn f(n: usize) {\n\
             for i in header(n) { body(i); }\n\
             while check(n) { work(); }\n\
             before();\n\
             }",
        );
        assert!(
            !info.in_loop(call_site(&ast, "header")),
            "for header runs once"
        );
        assert!(info.in_loop(call_site(&ast, "body")));
        assert!(
            info.in_loop(call_site(&ast, "check")),
            "while header reruns"
        );
        assert!(info.in_loop(call_site(&ast, "work")));
        assert!(!info.in_loop(call_site(&ast, "before")));
    }

    #[test]
    fn closures_inherit_loop_context() {
        let (ast, info) = scoped(
            "fn f(v: &[u8]) { loop { v.iter().map(|x| heavy(x)).count(); } g(|| light()); }",
        );
        assert!(info.in_loop(call_site(&ast, "heavy")));
        assert!(!info.in_loop(call_site(&ast, "light")));
    }

    #[test]
    fn enclosing_fn_and_nested_items() {
        let (ast, info) = scoped("fn outer() { fn inner() { deep(); } shallow(); }");
        let outer = ast
            .walk()
            .find(|&id| matches!(&ast.nodes[id].kind, NodeKind::Fn { name, .. } if name == "outer"))
            .unwrap();
        let inner = ast
            .walk()
            .find(|&id| matches!(&ast.nodes[id].kind, NodeKind::Fn { name, .. } if name == "inner"))
            .unwrap();
        assert_eq!(info.enclosing_fn(call_site(&ast, "deep")), Some(inner));
        assert_eq!(info.enclosing_fn(call_site(&ast, "shallow")), Some(outer));
        assert_eq!(info.enclosing_fn(inner), Some(outer));
    }

    #[test]
    fn nested_fn_does_not_inherit_loop_context() {
        let (ast, info) = scoped("fn f() { loop { fn helper() { quiet(); } helper(); } }");
        assert!(
            !info.in_loop(call_site(&ast, "quiet")),
            "fn body executes elsewhere"
        );
        // But helper IS hot: it is called from inside the loop.
        assert!(info.in_hot_fn(call_site(&ast, "quiet")));
    }

    #[test]
    fn hot_set_closes_transitively() {
        let (ast, info) = scoped(
            "impl S {\n\
             fn run(&mut self) { while self.more() { self.step(); } self.report(); }\n\
             fn step(&mut self) { self.fill(); }\n\
             fn fill(&mut self) { alloc_here(); }\n\
             fn report(&self) { alloc_there(); }\n\
             }",
        );
        assert!(info.reachable_in_loop(call_site(&ast, "alloc_here")));
        assert!(
            !info.reachable_in_loop(call_site(&ast, "alloc_there")),
            "report() is only called outside the loop"
        );
        // `more` is hot (while header reruns), so its body would be too.
        assert!(info.in_loop(call_site(&ast, "more")));
    }

    #[test]
    fn foreign_type_constructors_do_not_mark_local_new_hot() {
        let (ast, info) = scoped(
            "impl S {\n\
             fn new() -> S { S { buf: ctor_alloc() } }\n\
             fn run(&mut self) { loop { let v = Vec::new(); drop(v); } }\n\
             fn reset(&mut self) { loop { Self::scrub(); } }\n\
             fn scrub() { scrub_alloc(); }\n\
             }",
        );
        assert!(
            !info.reachable_in_loop(call_site(&ast, "ctor_alloc")),
            "`Vec::new()` in a loop is std's, not the local constructor"
        );
        assert!(
            info.reachable_in_loop(call_site(&ast, "scrub_alloc")),
            "`Self::scrub()` resolves locally"
        );
    }

    #[test]
    fn free_fn_calls_seed_the_hot_set() {
        let (ast, info) = scoped(
            "fn driver(n: usize) { for _ in 0..n { helper(); } }\n\
             fn helper() { inner_alloc(); }\n\
             fn cold() { cold_alloc(); }",
        );
        assert!(info.reachable_in_loop(call_site(&ast, "inner_alloc")));
        assert!(!info.reachable_in_loop(call_site(&ast, "cold_alloc")));
    }
}
