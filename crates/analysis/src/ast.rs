//! A tolerant recursive-descent structure parser over the token stream
//! from [`crate::lexer`], producing the lightweight tree the syntax-aware
//! passes (`hot-alloc`, `lock-discipline`, `result-drop`, and the rebuilt
//! `panic-audit` index note) walk.
//!
//! This is deliberately not a full Rust grammar. The tree models exactly
//! the structure the passes need — items and `fn` bodies, block / loop /
//! match / closure nesting, call, method-call and macro-call expressions,
//! `let` bindings, and index expressions — and treats everything else
//! (types, operators, patterns) as trivia. Three properties are load
//! bearing and checked by `tests/parser_roundtrip.rs` over every `.rs`
//! file in the workspace:
//!
//! 1. **Totality** — the parser accepts any token stream; unknown
//!    constructs are consumed as trivia, never rejected.
//! 2. **Full coverage** — every non-comment token is consumed exactly
//!    once (the cursor only moves forward; [`Ast::consumed`] equals the
//!    significant-token count).
//! 3. **Monotone spans** — children nest strictly inside their parent's
//!    span and siblings appear in source order ([`Ast::validate`]).
//!
//! `#[cfg(test)]` masking carries over from the lexer: nodes expose
//! [`Ast::in_test`], which reports the flag of the node's first token.

use crate::lexer::{TokKind, Token};

/// Index of a node within [`Ast::nodes`].
pub type NodeId = usize;

/// Which loop construct produced a [`NodeKind::Loop`] node.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LoopKind {
    /// `for pat in iter { .. }` — the header runs **once** (the iterator
    /// is constructed before the first iteration), so only the body
    /// counts as "inside the loop".
    For,
    /// `while cond { .. }` — the header re-executes every iteration and
    /// counts as inside the loop.
    While,
    /// `loop { .. }`.
    Loop,
}

/// Receiver shape of a method call, as far as tokens can tell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recv {
    /// Bare `self.method(..)` — a call on the same object, which the
    /// intra-file call graph treats as a local edge.
    SelfDot,
    /// The identifier immediately left of the dot: `shared.slots.lock()`
    /// carries `Tail("slots")`. Used to name the mutex a guard came from.
    Tail(String),
    /// Chained off a call, index, or literal result (`foo().bar()`).
    Chain,
}

/// What a node in the tree is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The file root; parent of all items.
    Root,
    /// A `fn` item (free, inherent, or trait). `returns_result` is true
    /// when the declared return type mentions `Result`.
    Fn {
        /// The function's name.
        name: String,
        /// Whether the signature's return type mentions `Result`.
        returns_result: bool,
    },
    /// A closure. The node spans the parameter list; a braced body is a
    /// child [`NodeKind::Block`], while an expression body's nodes stay
    /// in the parent scope (they still execute in the same loop/fn
    /// context, which is what the passes care about).
    Closure,
    /// A `for` / `while` / `loop`. Header expression nodes are direct
    /// children; the body block id is recorded in `body` once parsed.
    Loop {
        /// Which loop keyword introduced it.
        kind: LoopKind,
        /// Child id of the body [`NodeKind::Block`] (self id until the
        /// body has been parsed; always set on a well-formed loop).
        body: NodeId,
    },
    /// A `match` expression: scrutinee nodes then arm nodes as children.
    Match,
    /// A braced block: fn bodies, loop bodies, arms, bare blocks.
    Block,
    /// One statement inside a block.
    Stmt {
        /// `Some(name)` for `let name = ..;` (the name is `_` for
        /// `let _ = ..;`, empty for destructuring patterns).
        let_name: Option<String>,
        /// True when the statement is a plain expression statement
        /// terminated by `;` with no `let`/assignment/`return` — i.e.
        /// its value is discarded.
        discard_eligible: bool,
    },
    /// A path call: `foo(..)`, `Vec::new(..)`, `mpsc::channel(..)`.
    Call {
        /// The `::`-joined path as written (turbofish segments elided).
        path: String,
    },
    /// A method call `recv.name(..)`.
    MethodCall {
        /// The method name.
        name: String,
        /// What the receiver looks like.
        recv: Recv,
    },
    /// A macro invocation `name!(..)` / `name![..]` / `name!{..}`.
    MacroCall {
        /// The macro name, without the `!`.
        name: String,
    },
    /// An index expression `expr[..]` (only when the `[` follows a
    /// primary expression, so array literals and attributes don't count).
    Index,
}

/// One node of the structure tree. Spans are inclusive indices into
/// [`Ast::sig`], the significant (non-comment) token view.
#[derive(Clone, Debug)]
pub struct Node {
    /// What this node is.
    pub kind: NodeKind,
    /// Parent node id (`None` only for the root).
    pub parent: Option<NodeId>,
    /// Child node ids, in source order.
    pub children: Vec<NodeId>,
    /// First significant-token index covered by this node.
    pub first: usize,
    /// Last significant-token index covered by this node (inclusive).
    pub last: usize,
}

/// The parsed structure tree for one file.
#[derive(Clone, Debug)]
pub struct Ast {
    /// All nodes; index 0 is the [`NodeKind::Root`].
    pub nodes: Vec<Node>,
    /// Indices of non-comment tokens in the lexed stream, in order —
    /// the view all node spans refer to.
    pub sig: Vec<usize>,
    /// Number of significant tokens the parser consumed (equals
    /// `sig.len()` by construction; asserted by the round-trip test).
    pub consumed: usize,
}

impl Ast {
    /// The token at significant index `s`.
    pub fn tok<'a>(&self, tokens: &'a [Token], s: usize) -> &'a Token {
        &tokens[self.sig[s]]
    }

    /// The token a node's span starts at (its anchor for diagnostics).
    pub fn first_tok<'a>(&self, tokens: &'a [Token], id: NodeId) -> &'a Token {
        self.tok(tokens, self.nodes[id].first)
    }

    /// Whether the node sits in a `#[cfg(test)]` / `#[test]` region
    /// (the lexer's mask, read at the node's first token).
    pub fn in_test(&self, tokens: &[Token], id: NodeId) -> bool {
        self.first_tok(tokens, id).in_test
    }

    /// Walks every node id in source (pre-)order.
    pub fn walk(&self) -> impl Iterator<Item = NodeId> + '_ {
        // Nodes are pushed in open order, which is pre-order.
        0..self.nodes.len()
    }

    /// Structural invariants: full token coverage, child spans nested
    /// inside parents, siblings monotone. `Err` carries a description.
    pub fn validate(&self) -> Result<(), String> {
        if self.consumed != self.sig.len() {
            return Err(format!(
                "parser consumed {} of {} significant tokens",
                self.consumed,
                self.sig.len()
            ));
        }
        for (id, n) in self.nodes.iter().enumerate() {
            if n.first > n.last {
                return Err(format!(
                    "node {id} has inverted span {}..{}",
                    n.first, n.last
                ));
            }
            let mut prev_end: Option<usize> = None;
            for &c in &n.children {
                let ch = &self.nodes[c];
                if ch.parent != Some(id) {
                    return Err(format!("node {c} parent link broken"));
                }
                if ch.first < n.first || ch.last > n.last {
                    return Err(format!(
                        "child {c} span {}..{} escapes parent {id} span {}..{}",
                        ch.first, ch.last, n.first, n.last
                    ));
                }
                if let Some(pe) = prev_end {
                    if ch.first <= pe {
                        return Err(format!("siblings overlap at node {c}"));
                    }
                }
                prev_end = Some(ch.last);
            }
        }
        Ok(())
    }
}

/// Parses a lexed token stream into the structure tree. Total: never
/// fails, consumes every significant token.
pub fn parse(tokens: &[Token]) -> Ast {
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::Comment)
        .map(|(i, _)| i)
        .collect();
    let mut p = Parser {
        toks: tokens,
        sig,
        pos: 0,
        nodes: Vec::new(),
        stack: Vec::new(),
    };
    let root = p.open(NodeKind::Root);
    p.items_until_close(false);
    p.close(root);
    let consumed = p.pos;
    // The root must span the whole file even when it is empty.
    if let Some(r) = p.nodes.first_mut() {
        r.first = 0;
        r.last = p.sig.len().saturating_sub(1);
    }
    Ast {
        nodes: p.nodes,
        sig: p.sig,
        consumed,
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    sig: Vec<usize>,
    pos: usize,
    nodes: Vec<Node>,
    stack: Vec<NodeId>,
}

impl<'a> Parser<'a> {
    // ---------------------------------------------------------------
    // Cursor primitives
    // ---------------------------------------------------------------

    fn tok_at(&self, s: usize) -> Option<&'a Token> {
        self.sig.get(s).map(|&i| &self.toks[i])
    }

    fn cur(&self) -> Option<&'a Token> {
        self.tok_at(self.pos)
    }

    fn peek(&self, n: usize) -> Option<&'a Token> {
        self.tok_at(self.pos + n)
    }

    fn at_punct(&self, c: char) -> bool {
        self.cur().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.cur().is_some_and(|t| t.is_ident(s))
    }

    fn eof(&self) -> bool {
        self.pos >= self.sig.len()
    }

    fn bump(&mut self) {
        if self.pos < self.sig.len() {
            self.pos += 1;
        }
    }

    /// Are the tokens at significant indices `a` and `a+1` glued
    /// (adjacent characters on the same line, like the two halves of
    /// `::`, `==`, `=>`, or `+=`)?
    fn glued(&self, a: usize) -> bool {
        match (self.tok_at(a), self.tok_at(a + 1)) {
            (Some(x), Some(y)) => {
                x.line == y.line && y.col == x.col + x.text.chars().count() as u32
            }
            _ => false,
        }
    }

    // ---------------------------------------------------------------
    // Node construction
    // ---------------------------------------------------------------

    fn open(&mut self, kind: NodeKind) -> NodeId {
        let id = self.nodes.len();
        let parent = self.stack.last().copied();
        self.nodes.push(Node {
            kind,
            parent,
            children: Vec::new(),
            first: self.pos,
            last: self.pos,
        });
        if let Some(p) = parent {
            self.nodes[p].children.push(id);
        }
        self.stack.push(id);
        id
    }

    fn close(&mut self, id: NodeId) {
        debug_assert_eq!(self.stack.last().copied(), Some(id));
        self.stack.pop();
        self.nodes[id].last = self.pos.saturating_sub(1).max(self.nodes[id].first);
    }

    // ---------------------------------------------------------------
    // Items
    // ---------------------------------------------------------------

    /// Parses items until EOF (`expect_close == false`) or a `}` closing
    /// the surrounding item body (`expect_close == true`; the `}` is
    /// consumed by the caller).
    fn items_until_close(&mut self, expect_close: bool) {
        while !self.eof() {
            if expect_close && self.at_punct('}') {
                return;
            }
            self.item();
        }
    }

    fn item(&mut self) {
        let Some(t) = self.cur() else { return };
        match t.kind {
            TokKind::Punct if t.text == "#" => self.attribute(),
            TokKind::Ident => match t.text.as_str() {
                "fn" => self.fn_item(),
                // Visibility and qualifier keywords are trivia; the next
                // loop turn dispatches whatever they qualify.
                "pub" => {
                    self.bump();
                    if self.at_punct('(') {
                        self.balanced('(', ')');
                    }
                }
                "unsafe" | "async" | "default" => self.bump(),
                "const" | "static" => {
                    // `const fn` / `static` item; `const` may qualify a fn.
                    self.bump();
                    if !self.at_ident("fn") {
                        self.skim_to_item_end();
                    }
                }
                "impl" | "trait" | "mod" => {
                    self.bump();
                    self.body_items_or_semi();
                }
                "macro_rules" => {
                    self.bump();
                    if self.at_punct('!') {
                        self.bump();
                    }
                    if self.cur().is_some_and(|t| t.kind == TokKind::Ident) {
                        self.bump();
                    }
                    // The whole definition body is token soup: skim it.
                    match self.cur() {
                        Some(t) if t.is_punct('{') => self.balanced('{', '}'),
                        Some(t) if t.is_punct('(') => {
                            self.balanced('(', ')');
                            if self.at_punct(';') {
                                self.bump();
                            }
                        }
                        _ => self.bump(),
                    }
                }
                "extern" | "use" | "struct" | "enum" | "type" | "union" => {
                    self.bump();
                    self.skim_to_item_end();
                }
                // `thread_local! { .. }` and friends at item level.
                _ if self.peek(1).is_some_and(|n| n.is_punct('!')) => {
                    self.bump();
                    self.bump();
                    match self.cur() {
                        Some(t) if t.is_punct('{') => self.balanced('{', '}'),
                        Some(t) if t.is_punct('(') || t.is_punct('[') => {
                            let (o, c) = if t.is_punct('(') {
                                ('(', ')')
                            } else {
                                ('[', ']')
                            };
                            self.balanced(o, c);
                            if self.at_punct(';') {
                                self.bump();
                            }
                        }
                        _ => {}
                    }
                }
                _ => self.bump(),
            },
            _ => self.bump(),
        }
    }

    /// `#[...]` and `#![...]` attributes, consumed as trivia.
    fn attribute(&mut self) {
        self.bump(); // '#'
        if self.at_punct('!') {
            self.bump();
        }
        if self.at_punct('[') {
            self.balanced('[', ']');
        }
    }

    /// After `impl`/`trait`/`mod`: skim the header, then parse the brace
    /// body as items (or stop at `;` for `mod name;`).
    fn body_items_or_semi(&mut self) {
        let mut depth = 0u32;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => {
                        self.bump();
                        return;
                    }
                    "{" if depth == 0 => {
                        self.bump();
                        self.items_until_close(true);
                        if self.at_punct('}') {
                            self.bump();
                        }
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Consumes a `use`/`struct`/`enum`/… item: to a top-level `;`, or
    /// through a balanced top-level `{..}` body (plus a trailing `;`).
    fn skim_to_item_end(&mut self) {
        let mut depth = 0u32;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => {
                        self.bump();
                        return;
                    }
                    "{" if depth == 0 => {
                        self.balanced('{', '}');
                        if self.at_punct(';') {
                            self.bump();
                        }
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Consumes a balanced `open..close` pair of any depth; the cursor
    /// sits on `open`.
    fn balanced(&mut self, open: char, close: char) {
        let mut depth = 0u32;
        while let Some(t) = self.cur() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    fn fn_item(&mut self) {
        let start = self.pos;
        self.bump(); // `fn`
        let name = match self.cur() {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => String::new(),
        };
        // Signature: scan to the body `{` or a `;` (trait method decl),
        // noting whether the return type mentions `Result`.
        let mut depth = 0u32;
        let mut in_ret = false;
        let mut seen_where = false;
        let mut returns_result = false;
        let mut has_body = false;
        while let Some(t) = self.cur() {
            match t.kind {
                TokKind::Punct => match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    // The return-type arrow; `Fn() -> T` bound arrows in
                    // a where clause must not re-arm the detection.
                    "-" if depth == 0
                        && !seen_where
                        && self.glued(self.pos)
                        && self.peek(1).is_some_and(|n| n.is_punct('>')) =>
                    {
                        in_ret = true;
                    }
                    ";" if depth == 0 => {
                        self.bump();
                        break;
                    }
                    "{" if depth == 0 => {
                        has_body = true;
                        break;
                    }
                    _ => {}
                },
                TokKind::Ident => {
                    if t.text == "where" {
                        in_ret = false;
                        seen_where = true;
                    } else if in_ret && t.text == "Result" {
                        returns_result = true;
                    }
                }
                _ => {}
            }
            self.bump();
        }
        let id = self.open(NodeKind::Fn {
            name,
            returns_result,
        });
        self.nodes[id].first = start;
        if has_body {
            self.block();
        }
        self.close(id);
    }

    // ---------------------------------------------------------------
    // Blocks and statements
    // ---------------------------------------------------------------

    /// A braced block; the cursor sits on `{`.
    fn block(&mut self) -> NodeId {
        let id = self.open(NodeKind::Block);
        if self.at_punct('{') {
            self.bump();
        }
        while !self.eof() && !self.at_punct('}') {
            let before = self.pos;
            self.stmt();
            if self.pos == before {
                // A stray closer (`)` / `]`) in statement position:
                // `stmt()` refuses it, so consume it here — the parser
                // must make progress on arbitrary (truncated) input.
                self.bump();
            }
        }
        if self.at_punct('}') {
            self.bump();
        }
        self.close(id);
        id
    }

    fn stmt(&mut self) {
        while self.at_punct('#') {
            self.attribute();
        }
        if self.eof() || self.at_punct('}') {
            return;
        }
        // Stray `;` (empty statement).
        if self.at_punct(';') {
            self.bump();
            return;
        }
        let first = self.cur().map(|t| t.text.clone()).unwrap_or_default();
        if first == "let" {
            self.let_stmt();
            return;
        }
        // Block-style constructs and nested items end their own
        // statement; an optional trailing `;` is consumed.
        match first.as_str() {
            "if" | "match" | "while" | "for" | "loop" | "unsafe" | "{" => {
                let id = self.open(NodeKind::Stmt {
                    let_name: None,
                    discard_eligible: false,
                });
                self.construct();
                if self.at_punct(';') {
                    self.bump();
                }
                self.close(id);
                return;
            }
            // Items may appear inside fn bodies.
            "fn" | "struct" | "enum" | "impl" | "mod" | "use" | "trait" | "macro_rules"
            | "type" => {
                self.item();
                return;
            }
            _ => {}
        }
        let eligible_start = !matches!(first.as_str(), "return" | "break" | "continue" | "yield");
        let id = self.open(NodeKind::Stmt {
            let_name: None,
            discard_eligible: false,
        });
        let saw_assign = self.expr_until(Stop::Semi);
        let ends_semi = self.at_punct(';');
        if ends_semi {
            self.bump();
        }
        if let NodeKind::Stmt {
            discard_eligible, ..
        } = &mut self.nodes[id].kind
        {
            *discard_eligible = eligible_start && !saw_assign && ends_semi;
        }
        self.close(id);
    }

    fn let_stmt(&mut self) {
        let id = self.open(NodeKind::Stmt {
            let_name: None,
            discard_eligible: false,
        });
        self.bump(); // `let`
        if self.at_ident("mut") {
            self.bump();
        }
        // Binding name: a plain ident not starting a path/struct/tuple
        // pattern. Destructuring patterns record an empty name.
        let mut name = String::new();
        if let Some(t) = self.cur() {
            if t.kind == TokKind::Ident {
                let next_opens_pattern = self.peek(1).is_some_and(|n| {
                    n.is_punct('(')
                        || n.is_punct('{')
                        || (n.is_punct(':') && self.glued(self.pos + 1))
                });
                if !next_opens_pattern
                    || self
                        .peek(1)
                        .is_some_and(|n| n.is_punct(':') && !self.glued(self.pos + 1))
                {
                    name = t.text.clone();
                }
            }
        }
        if let NodeKind::Stmt { let_name, .. } = &mut self.nodes[id].kind {
            *let_name = Some(name);
        }
        // Pattern and optional type annotation: scan to `=` / `;`.
        let mut depth = 0u32;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => break,
                    "=" if depth == 0 && self.is_plain_assign() => {
                        self.bump();
                        self.expr_until(Stop::Semi);
                        break;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
        if self.at_punct(';') {
            self.bump();
        }
        self.close(id);
    }

    /// Is the `=` at the cursor a plain assignment/binding `=` — not one
    /// half of `==`, `=>`, `<=`, `>=`, `!=`, or a compound `+=`-style
    /// operator?
    fn is_plain_assign(&self) -> bool {
        matches!(self.eq_kind(), EqKind::Plain)
    }

    /// Classifies the `=` at the cursor (see [`EqKind`]). The lexer
    /// emits single-char puncts, so multi-char operators are recovered
    /// from glued adjacency.
    fn eq_kind(&self) -> EqKind {
        // Next glued half: `==` or `=>`.
        if self.glued(self.pos) {
            if let Some(n) = self.peek(1) {
                if n.is_punct('=') || n.is_punct('>') {
                    return EqKind::Comparison;
                }
            }
        }
        // Previous glued half.
        if self.pos > 0 && self.glued(self.pos - 1) {
            if let Some(p) = self.tok_at(self.pos - 1) {
                if p.kind == TokKind::Punct {
                    match p.text.as_str() {
                        // `+= -= *= /= %= &= |= ^=`
                        "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" => {
                            return EqKind::Compound;
                        }
                        "!" | "=" => return EqKind::Comparison,
                        // `<=` / `>=` vs the shift-assigns `<<=` / `>>=`.
                        "<" | ">" => {
                            let double = self.pos >= 2
                                && self.glued(self.pos - 2)
                                && self.tok_at(self.pos - 2).is_some_and(|q| q.text == p.text);
                            return if double {
                                EqKind::Compound
                            } else {
                                EqKind::Comparison
                            };
                        }
                        _ => {}
                    }
                }
            }
        }
        EqKind::Plain
    }

    /// Keyword-introduced constructs usable in both statement and
    /// expression position. The cursor sits on the keyword (or `{`).
    fn construct(&mut self) {
        let Some(t) = self.cur() else { return };
        match t.text.as_str() {
            "if" => {
                self.bump();
                self.expr_until(Stop::Brace);
                if self.at_punct('{') {
                    self.block();
                }
                while self.at_ident("else") {
                    self.bump();
                    if self.at_ident("if") {
                        self.bump();
                        self.expr_until(Stop::Brace);
                    }
                    if self.at_punct('{') {
                        self.block();
                    } else {
                        break;
                    }
                }
            }
            "match" => {
                let id = self.open(NodeKind::Match);
                self.bump();
                self.expr_until(Stop::Brace);
                if self.at_punct('{') {
                    self.bump();
                    while !self.eof() && !self.at_punct('}') {
                        self.match_arm();
                    }
                    if self.at_punct('}') {
                        self.bump();
                    }
                }
                self.close(id);
            }
            "for" => self.loop_construct(LoopKind::For),
            "while" => self.loop_construct(LoopKind::While),
            "loop" => self.loop_construct(LoopKind::Loop),
            "unsafe" => {
                self.bump();
                if self.at_punct('{') {
                    self.block();
                }
            }
            "{" => {
                self.block();
            }
            _ => self.bump(),
        }
    }

    fn loop_construct(&mut self, kind: LoopKind) {
        let id = self.open(NodeKind::Loop { kind, body: 0 });
        // `body: 0` is a placeholder (the root id); patched below.
        self.bump(); // keyword
        if kind != LoopKind::Loop {
            self.expr_until(Stop::Brace);
        }
        let body = if self.at_punct('{') {
            self.block()
        } else {
            id // malformed source: point at self so queries stay total
        };
        if let NodeKind::Loop { body: b, .. } = &mut self.nodes[id].kind {
            *b = body;
        }
        self.close(id);
    }

    /// One `pat => expr` arm; tolerant of or-patterns and guards.
    fn match_arm(&mut self) {
        while self.at_punct('#') {
            self.attribute();
        }
        // Pattern + optional guard: scan to the glued `=>`.
        let mut depth = 0u32;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" => {
                        // Struct pattern body.
                        self.balanced('{', '}');
                        continue;
                    }
                    "=" if depth == 0
                        && self.glued(self.pos)
                        && self.peek(1).is_some_and(|n| n.is_punct('>')) =>
                    {
                        self.bump();
                        self.bump();
                        break;
                    }
                    "}" if depth == 0 => return, // end of match body
                    _ => {}
                }
            }
            self.bump();
        }
        // Arm body: a block, or an expression up to the arm comma.
        if self.at_punct('{') {
            self.block();
        } else {
            self.expr_until(Stop::Comma);
        }
        if self.at_punct(',') {
            self.bump();
        }
    }

    // ---------------------------------------------------------------
    // Expressions
    // ---------------------------------------------------------------

    /// Scans expression tokens until the stop condition, creating nodes
    /// for the constructs the passes need. Returns whether a top-level
    /// plain assignment `=` was seen (for discard eligibility).
    fn expr_until(&mut self, stop: Stop) -> bool {
        let mut depth_paren = 0u32;
        let mut depth_brack = 0u32;
        let mut saw_assign = false;
        while let Some(t) = self.cur() {
            let depth0 = depth_paren == 0 && depth_brack == 0;
            match t.kind {
                TokKind::Punct => match t.text.as_str() {
                    // In bracketed contexts (`Stop::None`: call args,
                    // index/macro bodies) a top-level `;` is the array
                    // repeat separator (`[x; n]`, `vec![x; n]`) — scan
                    // past it to the real closer.
                    ";" if depth0 && stop != Stop::None => return saw_assign,
                    "}" if depth0 => return saw_assign,
                    "," if depth0 && stop == Stop::Comma => return saw_assign,
                    "{" if depth0 && stop == Stop::Brace => return saw_assign,
                    ")" => {
                        if depth_paren == 0 {
                            return saw_assign; // closes the enclosing context
                        }
                        depth_paren -= 1;
                        self.bump();
                    }
                    "]" => {
                        if depth_brack == 0 {
                            return saw_assign;
                        }
                        depth_brack -= 1;
                        self.bump();
                    }
                    "(" => {
                        depth_paren += 1;
                        self.bump();
                    }
                    "[" => {
                        if self.follows_primary() {
                            let id = self.open(NodeKind::Index);
                            self.bump();
                            self.expr_until(Stop::None);
                            if self.at_punct(']') {
                                self.bump();
                            }
                            self.close(id);
                        } else {
                            depth_brack += 1;
                            self.bump();
                        }
                    }
                    "{" => {
                        // A block in expression position (closure body,
                        // struct literal, async/const block…).
                        self.block();
                    }
                    "." => self.dot(),
                    "|" => self.pipe(),
                    "#" => self.attribute(),
                    "=" if depth0
                        && stop != Stop::Brace
                        && self.eq_kind() != EqKind::Comparison =>
                    {
                        // Plain or compound assignment: the statement's
                        // value is `()`, not a discarded expression.
                        saw_assign = true;
                        self.bump();
                    }
                    _ => self.bump(),
                },
                TokKind::Ident => match t.text.as_str() {
                    "if" | "match" | "while" | "for" | "loop" | "unsafe" => self.construct(),
                    "move" if self.peek(1).is_some_and(|n| n.is_punct('|')) => {
                        self.bump(); // the `|` branch decides closure-ness
                    }
                    _ => self.path_or_call(),
                },
                _ => self.bump(),
            }
        }
        saw_assign
    }

    /// Does the token before the cursor end a primary expression (so a
    /// following `[` is an index, not an array literal)?
    fn follows_primary(&self) -> bool {
        let Some(p) = self.pos.checked_sub(1).and_then(|i| self.tok_at(i)) else {
            return false;
        };
        match p.kind {
            TokKind::Ident => !matches!(
                p.text.as_str(),
                "return"
                    | "break"
                    | "in"
                    | "else"
                    | "match"
                    | "if"
                    | "while"
                    | "let"
                    | "mut"
                    | "move"
                    | "box"
                    | "ref"
            ),
            TokKind::Punct => p.text == ")" || p.text == "]",
            // Literals end a primary expression: `0 | mask`, `b'x' | y`.
            TokKind::Num | TokKind::Str | TokKind::Char => true,
            _ => false,
        }
    }

    /// `.name(..)` → method call; `.name` / `.0` / `..` → trivia.
    fn dot(&mut self) {
        let is_method = self.peek(1).is_some_and(|n| n.kind == TokKind::Ident)
            && self.peek(2).is_some_and(|n| n.is_punct('('));
        if !is_method {
            self.bump(); // just the dot
            return;
        }
        let recv = match self.pos.checked_sub(1).and_then(|i| self.tok_at(i)) {
            Some(p) if p.kind == TokKind::Ident => {
                let before = self
                    .pos
                    .checked_sub(2)
                    .and_then(|i| self.tok_at(i))
                    .is_some_and(|b| b.is_punct('.'));
                if p.text == "self" && !before {
                    Recv::SelfDot
                } else {
                    Recv::Tail(p.text.clone())
                }
            }
            Some(p) if p.is_punct(')') || p.is_punct(']') => Recv::Chain,
            _ => Recv::Chain,
        };
        let name = self.peek(1).map(|t| t.text.clone()).unwrap_or_default();
        let id = self.open(NodeKind::MethodCall { name, recv });
        self.bump(); // .
        self.bump(); // name
        self.bump(); // (
        self.expr_until(Stop::None);
        if self.at_punct(')') {
            self.bump();
        }
        self.close(id);
    }

    /// An identifier: path scan, then call / macro-call / plain.
    fn path_or_call(&mut self) {
        let start = self.pos;
        let mut segments = vec![self.cur().map(|t| t.text.clone()).unwrap_or_default()];
        self.bump();
        // `a::b::<T>::c` path chains.
        loop {
            let at_colons = self.at_punct(':')
                && self.glued(self.pos)
                && self.peek(1).is_some_and(|n| n.is_punct(':'));
            if !at_colons {
                break;
            }
            self.bump();
            self.bump();
            if self.at_punct('<') {
                self.angles();
                continue; // expect another `::` or stop
            }
            match self.cur() {
                Some(t) if t.kind == TokKind::Ident => {
                    segments.push(t.text.clone());
                    self.bump();
                }
                _ => break,
            }
        }
        if self.at_punct('!')
            && self
                .peek(1)
                .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
        {
            let name = segments.join("::");
            let id = self.open(NodeKind::MacroCall { name });
            self.nodes[id].first = start;
            self.bump(); // !
            match self.cur() {
                Some(t) if t.is_punct('(') => {
                    self.bump();
                    self.expr_until(Stop::None);
                    if self.at_punct(')') {
                        self.bump();
                    }
                }
                Some(t) if t.is_punct('[') => {
                    self.bump();
                    self.expr_until(Stop::None);
                    if self.at_punct(']') {
                        self.bump();
                    }
                }
                Some(t) if t.is_punct('{') => {
                    self.block();
                }
                _ => {}
            }
            self.close(id);
            return;
        }
        if self.at_punct('(') {
            let id = self.open(NodeKind::Call {
                path: segments.join("::"),
            });
            self.nodes[id].first = start;
            self.bump(); // (
            self.expr_until(Stop::None);
            if self.at_punct(')') {
                self.bump();
            }
            self.close(id);
        }
        // Plain ident/path: already consumed.
    }

    /// Balanced `<..>` (turbofish / generic args). The cursor sits on `<`.
    fn angles(&mut self) {
        let mut depth = 0u32;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            self.bump();
                            return;
                        }
                    }
                    // Safety: a turbofish never contains these.
                    ";" | "{" | ")" => return,
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// `|` in expression position: a closure's parameter list, or a
    /// binary/bitwise or (trivia). Lookahead decides without consuming.
    fn pipe(&mut self) {
        // After a primary expression, `|` is the binary operator.
        if self.follows_primary() {
            self.bump();
            return;
        }
        // `||` glued: an empty parameter list (or logical-or, which
        // cannot appear at expression start).
        let empty_params = self.glued(self.pos) && self.peek(1).is_some_and(|n| n.is_punct('|'));
        if !empty_params && !self.closure_lookahead() {
            self.bump();
            return;
        }
        let id = self.open(NodeKind::Closure);
        self.bump(); // |
        if empty_params {
            self.bump(); // second |
        } else {
            let mut depth = 0u32;
            while let Some(t) = self.cur() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth = depth.saturating_sub(1),
                        "|" if depth == 0 => {
                            self.bump();
                            break;
                        }
                        _ => {}
                    }
                }
                self.bump();
            }
        }
        if self.at_punct('{') {
            self.block();
        }
        // Expression bodies stay in the parent scan: they run in the
        // same loop/fn context, which is what the passes query.
        self.close(id);
    }

    /// Does a closing `|` appear at depth 0 before anything that rules a
    /// parameter list out (`;`, `{`, `}`, a glued `=>`)?
    fn closure_lookahead(&self) -> bool {
        let mut depth = 0u32;
        for off in 1..64 {
            let Some(t) = self.peek(off) else {
                return false;
            };
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                "|" if depth == 0 => return true,
                ";" | "{" | "}" => return false,
                "=" if self.glued(self.pos + off)
                    && self.peek(off + 1).is_some_and(|n| n.is_punct('>')) =>
                {
                    return false;
                }
                _ => {}
            }
        }
        false
    }
}

/// What role an `=` punct plays (recovered from glued adjacency since
/// the lexer emits single-char puncts).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum EqKind {
    /// A bare assignment or `let` binding `=`.
    Plain,
    /// A compound assignment: `+=`, `<<=`, …
    Compound,
    /// Half of `==`, `!=`, `<=`, `>=`, or `=>` — not an assignment.
    Comparison,
}

/// Where [`Parser::expr_until`] stops (besides the always-on `;` and `}`
/// at depth 0).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Stop {
    /// Only the defaults (`;` / `}` at depth 0, or an unbalanced closer).
    None,
    /// Statement context: same as `None` (named for readability).
    Semi,
    /// Stop at `{` at depth 0 (loop/if/match headers).
    Brace,
    /// Stop at `,` at depth 0 (match-arm expression bodies).
    Comma,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> (Vec<Token>, Ast) {
        let toks = lex(src);
        let ast = parse(&toks);
        ast.validate().expect("valid ast");
        (toks, ast)
    }

    fn find(ast: &Ast, pred: impl Fn(&NodeKind) -> bool) -> Vec<&Node> {
        ast.nodes.iter().filter(|n| pred(&n.kind)).collect()
    }

    #[test]
    fn fn_items_and_names() {
        let (_, ast) = parsed(
            "fn alpha() { beta(); }\nimpl Foo { pub const fn beta(&self) -> Result<u8, ()> { Ok(1) } }",
        );
        let fns: Vec<&str> = find(&ast, |k| matches!(k, NodeKind::Fn { .. }))
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Fn { name, .. } => name.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(fns, ["alpha", "beta"]);
        let results: Vec<bool> = find(&ast, |k| matches!(k, NodeKind::Fn { .. }))
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Fn { returns_result, .. } => *returns_result,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(results, [false, true]);
    }

    #[test]
    fn calls_methods_and_macros() {
        let (_, ast) = parsed(
            "fn f() { let v = Vec::new(); shared.slots.lock(); self.step(); vec![1]; foo()?; }",
        );
        let calls: Vec<String> = find(&ast, |k| matches!(k, NodeKind::Call { .. }))
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Call { path } => path.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(calls, ["Vec::new", "foo"]);
        let methods: Vec<(String, Recv)> = find(&ast, |k| matches!(k, NodeKind::MethodCall { .. }))
            .iter()
            .map(|n| match &n.kind {
                NodeKind::MethodCall { name, recv } => (name.clone(), recv.clone()),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            methods,
            [
                ("lock".to_string(), Recv::Tail("slots".to_string())),
                ("step".to_string(), Recv::SelfDot),
            ]
        );
        let macros = find(&ast, |k| matches!(k, NodeKind::MacroCall { .. }));
        assert_eq!(macros.len(), 1);
    }

    #[test]
    fn loops_record_kind_and_body() {
        let (_, ast) = parsed(
            "fn f(n: usize) { for i in 0..n { g(i); } while n > 0 { h(); } loop { break; } }",
        );
        let loops = find(&ast, |k| matches!(k, NodeKind::Loop { .. }));
        assert_eq!(loops.len(), 3);
        for n in &loops {
            let NodeKind::Loop { body, .. } = n.kind else {
                unreachable!()
            };
            assert!(matches!(ast.nodes[body].kind, NodeKind::Block));
        }
    }

    #[test]
    fn closure_versus_bitwise_or() {
        let (_, ast) = parsed("fn f(a: u8, b: u8) -> u8 { let c = a | b; let g = |x: u8| x + 1; v.iter().map(|v| v * 2); c }");
        let closures = find(&ast, |k| matches!(k, NodeKind::Closure));
        assert_eq!(closures.len(), 2);
    }

    #[test]
    fn index_only_after_primary() {
        let (_, ast) = parsed("fn f(v: &[u8], i: usize) -> u8 { let a = [1, 2]; a[i] + v[0] }");
        let idx = find(&ast, |k| matches!(k, NodeKind::Index));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn let_names_and_discard_flags() {
        let (_, ast) = parsed(
            "fn f() { let x = g(); let _ = h(); let (a, b) = pair(); k(); x = m(); return n(); }",
        );
        let stmts: Vec<(Option<String>, bool)> = find(&ast, |k| matches!(k, NodeKind::Stmt { .. }))
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Stmt {
                    let_name,
                    discard_eligible,
                } => (let_name.clone(), *discard_eligible),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            stmts,
            [
                (Some("x".to_string()), false),
                (Some("_".to_string()), false),
                (Some(String::new()), false),
                (None, true),  // k();
                (None, false), // x = m();
                (None, false), // return n();
            ]
        );
    }

    #[test]
    fn match_arms_parse_and_struct_literals_do_not_confuse_blocks() {
        let (_, ast) = parsed(
            "fn f(x: Option<u8>) -> u8 { match x { Some(v) if v > 1 => v, Some(_) | None => { g(); 0 } } }\nfn mk() -> S { S { a: 1, b: 2 } }",
        );
        assert_eq!(find(&ast, |k| matches!(k, NodeKind::Match)).len(), 1);
        // g() inside the arm block is a call node.
        assert!(find(&ast, |k| matches!(k, NodeKind::Call { .. }))
            .iter()
            .any(|n| matches!(&n.kind, NodeKind::Call { path } if path == "g")));
    }

    #[test]
    fn full_coverage_on_gnarly_input() {
        let src = r##"
            #![allow(dead_code)]
            use std::collections::BTreeMap;
            macro_rules! gnarly { ($x:expr) => { $x + 1 }; }
            const K: usize = { 3 + 4 };
            static S: &str = "str with } brace";
            pub(crate) struct T<A: Fn(u8) -> u8> { f: A }
            trait Tr { fn decl(&self) -> Result<(), ()>; fn dflt(&self) {} }
            fn generic<T: Into<u64>>(v: Vec<T>) -> BTreeMap<u64, u64> {
                let mut m = BTreeMap::<u64, u64>::new();
                for (i, x) in v.into_iter().enumerate() {
                    m.insert(i as u64, x.into());
                }
                let r#raw = 1;
                m
            }
        "##;
        let toks = lex(src);
        let ast = parse(&toks);
        ast.validate().expect("gnarly input parses totally");
    }

    #[test]
    fn test_regions_carry_over() {
        let (toks, ast) =
            parsed("fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }");
        let unwraps: Vec<bool> = ast
            .walk()
            .filter(|&id| {
                matches!(&ast.nodes[id].kind, NodeKind::MethodCall { name, .. } if name == "unwrap")
            })
            .map(|id| ast.in_test(&toks, id))
            .collect();
        assert_eq!(unwraps, [true]);
    }
}
