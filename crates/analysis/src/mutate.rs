//! Detection-liveness mutations: one known-bad construct per pass.
//!
//! In the spirit of `fdip-fuzz --inject`, `fdip-lint --inject <pass>`
//! splices the pass's registered bad construct into its target file —
//! in memory only, nothing on disk changes — and the run must then
//! produce a denying finding. A pass that stays silent under its own
//! mutation is dead (scoping bug, parser regression, allowlist
//! swallow), and `scripts/verify.sh` turns that silence into a CI
//! failure. Snippets are top-level items appended at end-of-file, so
//! they land outside any `#[cfg(test)]` region; their needles are
//! chosen to never collide with a real `lint-allow.txt` entry for the
//! target file.

/// A registered bad construct for one pass.
pub struct Mutation {
    /// The pass this mutation must trigger.
    pub pass: &'static str,
    /// Workspace-relative file the snippet is spliced into (chosen to
    /// be inside the pass's scope).
    pub file: &'static str,
    /// Top-level item(s) appended to the file before linting.
    pub snippet: &'static str,
}

/// One mutation per registered pass, in registry order.
pub const MUTATIONS: &[Mutation] = &[
    Mutation {
        pass: "determinism",
        file: "crates/core/src/sim.rs",
        snippet: "fn __lint_mutation_determinism(m: &mut std::collections::HashMap<u32, u32>) {\n    \
                  m.insert(1, 2);\n}\n",
    },
    Mutation {
        pass: "atomics",
        file: "crates/serve/src/scheduler.rs",
        snippet: "fn __lint_mutation_atomics(f: &std::sync::atomic::AtomicBool) {\n    \
                  f.store(true, std::sync::atomic::Ordering::Relaxed);\n}\n",
    },
    Mutation {
        pass: "panic-audit",
        file: "crates/core/src/sim.rs",
        snippet: "fn __lint_mutation_panic(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
    },
    Mutation {
        pass: "unsafe-forbid",
        file: "crates/core/src/sim.rs",
        snippet: "fn __lint_mutation_unsafe(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    },
    Mutation {
        pass: "schema-drift",
        file: "crates/core/src/stats.rs",
        snippet: "fn __lint_mutation_schema() {\n    \
                  let j = fdip_telemetry::Json::obj().with(\"__lint_mutation_undocumented__\", 1u64);\n    \
                  drop(j);\n}\n",
    },
    Mutation {
        pass: "hot-alloc",
        file: "crates/core/src/sim.rs",
        snippet: "fn __lint_mutation_hot_alloc(n: usize) -> usize {\n    \
                  let mut total = 0;\n    \
                  for i in 0..n {\n        let v = vec![i];\n        total += v.len();\n    }\n    \
                  total\n}\n",
    },
    Mutation {
        pass: "lock-discipline",
        file: "crates/serve/src/scheduler.rs",
        snippet: "fn __lint_mutation_lock(m: &std::sync::Mutex<bool>, cv: &std::sync::Condvar) {\n    \
                  let started = m.lock().expect(\"lock\");\n    \
                  let _woken = cv.wait(started);\n}\n",
    },
    Mutation {
        pass: "result-drop",
        file: "crates/serve/src/lib.rs",
        snippet: "fn __lint_mutation_result_drop(tx: &std::sync::mpsc::Sender<u8>) {\n    \
                  let _ = tx.send(7);\n}\n",
    },
];

/// The mutation registered for `pass`, if any.
pub fn for_pass(pass: &str) -> Option<&'static Mutation> {
    MUTATIONS.iter().find(|m| m.pass == pass)
}

/// Appends the mutation's snippet to `original` (in memory).
pub fn splice(original: &str, m: &Mutation) -> String {
    let mut out = String::with_capacity(original.len() + m.snippet.len() + 2);
    out.push_str(original);
    if !original.ends_with('\n') {
        out.push('\n');
    }
    out.push('\n');
    out.push_str(m.snippet);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::registry;

    #[test]
    fn every_pass_has_exactly_one_mutation_in_scope() {
        let ids: Vec<&str> = registry().iter().map(|p| p.id).collect();
        assert_eq!(
            MUTATIONS.iter().map(|m| m.pass).collect::<Vec<_>>(),
            ids,
            "mutations must cover the registry in order"
        );
        for m in MUTATIONS {
            assert!(m.snippet.starts_with("fn __lint_mutation"), "{}", m.pass);
            assert!(m.snippet.ends_with('\n'), "{}", m.pass);
        }
    }

    #[test]
    fn splice_appends_after_a_clean_newline() {
        let m = for_pass("determinism").unwrap();
        let out = splice("fn a() {}", m);
        assert!(out.starts_with("fn a() {}\n\n"));
        assert!(out.ends_with(m.snippet));
    }
}
