//! Pass 3: panic sites and loop indexing in the hot-path modules.
//!
//! Panic sites (`unwrap`/`expect`/`panic!`-family) are found on the
//! token stream; the indexing-in-loop note walks the syntax tree so
//! the loop test uses real structure — `for` headers (which run once)
//! no longer count, closure bodies inside loops do.

use super::{finding, significant, PassCtx, SourceFile, HOT_PATH_FILES};
use crate::ast::NodeKind;
use crate::lexer::TokKind;
use crate::report::{Finding, Severity};

pub(super) fn run(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&src.path.as_str()) {
        return;
    }
    let sig = significant(&src.tokens);
    for (s, &i) in sig.iter().enumerate() {
        let t = &src.tokens[i];
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let prev = s.checked_sub(1).map(|p| &src.tokens[sig[p]]);
        match t.text.as_str() {
            "unwrap" | "expect" if prev.is_some_and(|p| p.is_punct('.')) => {
                out.push(finding(
                    "panic-audit",
                    "panic-site",
                    &src.path,
                    t,
                    Severity::Error,
                    &t.text,
                    format!(
                        ".{}() can panic on the hot path; restructure to an infallible \
                         pattern (let-else / if-let) or allowlist with justification",
                        t.text
                    ),
                ));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if sig.get(s + 1).is_some_and(|&n| src.tokens[n].is_punct('!')) =>
            {
                out.push(finding(
                    "panic-audit",
                    "panic-site",
                    &src.path,
                    t,
                    Severity::Error,
                    &format!("{}!", t.text),
                    format!(
                        "{}! aborts the simulation from the hot path; return a \
                         recoverable state or allowlist with justification",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
    // Index expressions inside loops, on the tree: an `Index` node is
    // only created after a primary expression, so array literals,
    // attributes, types, and slice patterns never reach here.
    for id in src.ast.walk() {
        if !matches!(src.ast.nodes[id].kind, NodeKind::Index) {
            continue;
        }
        if src.ast.in_test(&src.tokens, id) || !src.scope.in_loop(id) {
            continue;
        }
        out.push(finding(
            "panic-audit",
            "index-in-loop",
            &src.path,
            src.ast.first_tok(&src.tokens, id),
            Severity::Note,
            "index",
            "bounds-checked indexing inside a loop; prefer iterators or prove \
             the bound once outside the loop (advisory)"
                .to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use crate::passes::testutil::run_pass;
    use crate::report::Severity;

    #[test]
    fn panic_audit_flags_method_panics_and_macros() {
        let code = "fn f(x: Option<u8>) -> u8 {\n  let a = x.unwrap();\n  \
                    let b = x.expect(\"present\");\n  if a > b { panic!(\"no\"); }\n  \
                    match a { 0 => unreachable!(), _ => a }\n}";
        let hits = run_pass("panic-audit", "crates/core/src/sim.rs", code, "");
        let needles: Vec<&str> = hits.iter().map(|f| f.needle.as_str()).collect();
        assert_eq!(needles, ["unwrap", "expect", "panic!", "unreachable!"]);
        assert!(hits.iter().all(|f| f.severity == Severity::Error));
        assert!(hits.iter().all(|f| f.kind == "panic-site"));
        // Same code in a non-hot-path file: out of scope.
        assert!(run_pass("panic-audit", "crates/core/src/config.rs", code, "").is_empty());
    }

    #[test]
    fn panic_audit_does_not_flag_definitions_or_tests() {
        let code = "impl Foo {\n  pub fn unwrap(self) -> u8 { self.0 }\n  \
                    pub fn expect(self, _m: &str) -> u8 { self.0 }\n}\n\
                    #[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }";
        assert!(run_pass("panic-audit", "crates/core/src/sim.rs", code, "").is_empty());
    }

    #[test]
    fn panic_audit_notes_indexing_only_inside_loops() {
        let code = "fn f(v: &[u8]) -> u8 {\n  let head = v[0];\n  \
                    let mut acc = 0;\n  for i in 0..v.len() { acc += v[i]; }\n  \
                    acc + head\n}";
        let hits = run_pass("panic-audit", "crates/core/src/sim.rs", code, "");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Note);
        assert_eq!(hits[0].needle, "index");
        assert_eq!(hits[0].kind, "index-in-loop");
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn index_note_respects_for_headers_and_closures() {
        // Indexing in a `for` header runs once — no note; indexing in a
        // closure body inside the loop runs every iteration — note.
        let code = "fn f(v: &[u8], idx: &[usize]) -> usize {\n  \
                    for i in 0..idx[0] { v.iter().map(|x| idx[*x as usize]).count(); }\n  0\n}";
        let hits = run_pass("panic-audit", "crates/core/src/sim.rs", code, "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].kind, "index-in-loop");
        // The surviving note is the closure-body index, not the header.
        assert!(hits[0].col > 30, "{hits:?}");
    }
}
