//! Pass 5: emitted JSON keys (`.with("k", …)` / `.set("k", …)`) must be
//! documented — appear in backticks — in `docs/METRICS.md`.

use super::{finding, significant, uses_serve_doc, PassCtx, SourceFile};
use crate::lexer::TokKind;
use crate::report::{Finding, Severity};

pub(super) fn run(ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    let in_crate_src = src.path.starts_with("crates/") && src.path.contains("/src/");
    if !(in_crate_src || src.path.starts_with("src/")) || src.path.starts_with("vendor/") {
        return;
    }
    let sig = significant(&src.tokens);
    for s in 0..sig.len() {
        let t = &src.tokens[sig[s]];
        if t.in_test || !t.is_punct('.') {
            continue;
        }
        let Some(&m) = sig.get(s + 1) else { continue };
        let method = &src.tokens[m];
        if !(method.is_ident("with") || method.is_ident("set")) {
            continue;
        }
        let Some(&p) = sig.get(s + 2) else { continue };
        if !src.tokens[p].is_punct('(') {
            continue;
        }
        let Some(&k) = sig.get(s + 3) else { continue };
        let key = &src.tokens[k];
        if key.kind != TokKind::Str || key.text.is_empty() {
            continue;
        }
        let needle = format!("`{}`", key.text);
        let documented = ctx.metrics_doc.contains(&needle)
            || (uses_serve_doc(&src.path) && ctx.serve_doc.contains(&needle));
        if !documented {
            let where_ = if uses_serve_doc(&src.path) {
                "docs/METRICS.md or docs/SERVE.md"
            } else {
                "docs/METRICS.md"
            };
            out.push(finding(
                "schema-drift",
                "undocumented-key",
                &src.path,
                key,
                Severity::Error,
                &key.text,
                format!(
                    "emitted JSON key \"{}\" is not documented in {where_} — \
                     document it (and bump schema_version on renames)",
                    key.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::passes::testutil::{run_pass, run_pass_with_serve};

    #[test]
    fn schema_drift_checks_keys_against_the_doc() {
        let code = "fn j() -> Json { Json::obj().with(\"ipc\", 1.0).with(\"bogus_key\", 2.0) }";
        let doc = "| `ipc` | instructions per cycle |";
        let hits = run_pass("schema-drift", "crates/core/src/stats.rs", code, doc);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].needle, "bogus_key");
        assert_eq!(hits[0].kind, "undocumented-key");
        // Dynamic keys (non-literal first argument) are skipped.
        let dynamic = "fn j(k: &str) -> Json { Json::obj().with(k, 1.0) }";
        assert!(run_pass("schema-drift", "crates/core/src/stats.rs", dynamic, doc).is_empty());
        // Vendored stand-ins and test code are out of scope.
        assert!(run_pass("schema-drift", "vendor/criterion/src/lib.rs", code, doc).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn t() { Json::obj().with(\"zzz\", 1); } }";
        assert!(run_pass("schema-drift", "crates/telemetry/src/json.rs", in_test, doc).is_empty());
    }

    #[test]
    fn schema_drift_lets_serve_code_document_keys_in_serve_md() {
        let code = "fn j() -> Json { Json::obj().with(\"grid_id\", 1).with(\"ipc\", 1.0) }";
        let metrics = "| `ipc` | instructions per cycle |";
        let serve = "| `grid_id` | content hash of the grid |";
        // Serve daemon and the harness codec may use either doc.
        for path in [
            "crates/serve/src/scheduler.rs",
            "crates/harness/src/remote.rs",
        ] {
            assert!(
                run_pass_with_serve("schema-drift", path, code, metrics, serve).is_empty(),
                "{path}"
            );
            let hits = run_pass_with_serve("schema-drift", path, code, metrics, "");
            assert_eq!(hits.len(), 1, "{path}");
            assert_eq!(hits[0].needle, "grid_id");
        }
        // Everything else must still use docs/METRICS.md exclusively.
        let hits = run_pass_with_serve(
            "schema-drift",
            "crates/core/src/stats.rs",
            code,
            metrics,
            serve,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].needle, "grid_id");
    }
}
