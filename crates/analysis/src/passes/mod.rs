//! The pass registry: eight named passes over lexed + parsed sources.
//!
//! Each pass is a pure function from one source file (token stream,
//! syntax tree, and scope tables) to findings; scoping (which files a
//! pass examines) lives in the pass itself so the driver stays a dumb
//! loop. All passes skip `#[cfg(test)]` / `#[test]` regions except
//! `unsafe-forbid`, which covers test code too — an `unsafe` block is a
//! soundness question no matter where it sits.
//!
//! The token-level passes (`determinism`, `atomics`, `unsafe-forbid`,
//! `schema-drift`) scan the stream directly; the syntax-aware passes
//! (`panic-audit`'s index note, `hot-alloc`, `lock-discipline`,
//! `result-drop`) walk the [`crate::ast`] tree with
//! [`crate::scope::ScopeInfo`] answering "inside a loop?" /
//! "which fn?" / "guard live?" questions.

mod atomics;
mod determinism;
mod hot_alloc;
mod lock_discipline;
mod panic_audit;
mod result_drop;
mod schema_drift;
mod unsafe_forbid;

use crate::ast::{self, Ast};
use crate::lexer::{self, TokKind, Token};
use crate::report::{Finding, Severity};
use crate::scope::ScopeInfo;

/// Shared context passed to every pass.
pub struct PassCtx {
    /// Contents of `docs/METRICS.md` (empty when missing, which makes
    /// every emitted key a finding — the doc is part of the contract).
    pub metrics_doc: String,
    /// Contents of `docs/SERVE.md` — the wire-protocol contract. Keys
    /// emitted by the serve daemon and its client codec may be
    /// documented here instead of in `docs/METRICS.md`.
    pub serve_doc: String,
}

/// One source file: lexed, parsed, and scope-analyzed.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Token stream from [`crate::lexer::lex`].
    pub tokens: Vec<Token>,
    /// Syntax tree from [`crate::ast::parse`].
    pub ast: Ast,
    /// Scope tables over `ast`.
    pub scope: ScopeInfo,
}

impl SourceFile {
    /// Lexes, parses, and scope-analyzes `text` in one step.
    pub fn new(path: impl Into<String>, text: &str) -> SourceFile {
        let tokens = lexer::lex(text);
        let ast = ast::parse(&tokens);
        let scope = ScopeInfo::build(&ast);
        SourceFile {
            path: path.into(),
            tokens,
            ast,
            scope,
        }
    }
}

/// A registered pass.
pub struct Pass {
    /// Stable id used in diagnostics and allowlist entries.
    pub id: &'static str,
    /// One-line description for `--list-passes`.
    pub description: &'static str,
    /// The pass body.
    pub run: fn(&PassCtx, &SourceFile, &mut Vec<Finding>),
}

/// All passes, in fixed registry order.
pub fn registry() -> Vec<Pass> {
    vec![
        Pass {
            id: "determinism",
            description: "flags wall-clock reads, hash-order iteration, thread ids, and \
                          un-seeded randomness in result-affecting crates",
            run: determinism::run,
        },
        Pass {
            id: "atomics",
            description: "flags Ordering::Relaxed on executor/daemon/telemetry atomics \
                          (cross-thread hand-off needs Acquire/Release)",
            run: atomics::run,
        },
        Pass {
            id: "panic-audit",
            description: "flags unwrap/expect/panic! and indexing-in-loop in the hot-path \
                          modules",
            run: panic_audit::run,
        },
        Pass {
            id: "unsafe-forbid",
            description: "locks in the zero-unsafe invariant: any `unsafe` needs a SAFETY \
                          comment and an allowlist entry",
            run: unsafe_forbid::run,
        },
        Pass {
            id: "schema-drift",
            description: "cross-checks emitted JSON keys against docs/METRICS.md",
            run: schema_drift::run,
        },
        Pass {
            id: "hot-alloc",
            description: "flags heap allocation reachable inside loops in the hot-path \
                          modules (the allocation-free steady-state burn-down list)",
            run: hot_alloc::run,
        },
        Pass {
            id: "lock-discipline",
            description: "checks Condvar waits are loop-re-checked, no lock guard is held \
                          across blocking calls, and mutex acquisition order is consistent",
            run: lock_discipline::run,
        },
        Pass {
            id: "result-drop",
            description: "flags semicolon-discarded or `let _ =`-bound Result-returning \
                          calls in non-test code",
            run: result_drop::run,
        },
    ]
}

/// Every diagnostic kind a pass can emit, as `(pass, kind,
/// description)`. This is the machine-readable half of the
/// diagnostic-kind table in `docs/METRICS.md` (Document 5);
/// `tests/lint_doc.rs` keeps the two in sync.
pub const KINDS: &[(&str, &str, &str)] = &[
    (
        "determinism",
        "hash-order",
        "HashMap/HashSet iteration order varies across runs",
    ),
    (
        "determinism",
        "wall-clock",
        "Instant/SystemTime read in result-affecting code",
    ),
    (
        "determinism",
        "thread-id",
        "thread::current leaks scheduler identity into results",
    ),
    (
        "determinism",
        "unseeded-rng",
        "randomness not constructed from an explicit seed",
    ),
    (
        "atomics",
        "relaxed-ordering",
        "Ordering::Relaxed on a cross-thread atomic",
    ),
    (
        "panic-audit",
        "panic-site",
        "unwrap/expect/panic!-family call on the hot path",
    ),
    (
        "panic-audit",
        "index-in-loop",
        "bounds-checked indexing inside a loop (advisory)",
    ),
    (
        "unsafe-forbid",
        "unsafe-block",
        "unsafe with a SAFETY comment but no allowlist entry",
    ),
    (
        "unsafe-forbid",
        "unsafe-missing-safety-comment",
        "unsafe without an immediately preceding SAFETY comment",
    ),
    (
        "schema-drift",
        "undocumented-key",
        "emitted JSON key absent from the schema docs",
    ),
    (
        "hot-alloc",
        "alloc-in-loop",
        "allocating construct executed inside a loop",
    ),
    (
        "hot-alloc",
        "alloc-in-hot-fn",
        "allocating construct in a fn called from inside a loop",
    ),
    (
        "lock-discipline",
        "wait-outside-loop",
        "Condvar wait whose predicate is not re-checked in a loop",
    ),
    (
        "lock-discipline",
        "guard-across-blocking-call",
        "lock guard live across a blocking channel/thread/simulation call",
    ),
    (
        "lock-discipline",
        "lock-order-inversion",
        "two mutexes acquired in both orders within one file",
    ),
    (
        "result-drop",
        "discarded-result",
        "Result-returning call discarded with a bare semicolon",
    ),
    (
        "result-drop",
        "underscore-bound-result",
        "Result-returning call bound to `let _ =`",
    ),
    (
        "allowlist",
        "missing-justification",
        "allowlist entry with an empty justification column",
    ),
    (
        "allowlist",
        "stale-entry",
        "allowlist entry no claimed finding matches",
    ),
];

/// Crates whose code affects simulation *results* (as opposed to
/// timing-only telemetry): anything here must be bit-deterministic.
pub(crate) const RESULT_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/bpred/src/",
    "crates/mem/src/",
    "crates/program/src/",
    "crates/harness/src/",
    "crates/prefetch/src/",
    "crates/types/src/",
    "crates/serve/src/",
    "crates/fuzz/src/",
    // The observability plane never touches results, but it runs inside
    // the daemon process; covering it confines every wall-clock read to
    // its allowlisted `clock` module.
    "crates/obs/src/",
];

/// Crates with cross-thread coordination: the `atomics` and
/// `lock-discipline` passes cover the executor, the sweep daemon, and
/// the observability plane's lock-free handles.
pub(crate) const SYNC_CRATES: &[&str] =
    &["crates/exec/src/", "crates/serve/src/", "crates/obs/src/"];

/// Files allowed to document their emitted keys in `docs/SERVE.md`
/// (the wire-protocol spec) instead of `docs/METRICS.md`: the serve
/// daemon and the client-side codec in the harness.
pub(crate) fn uses_serve_doc(path: &str) -> bool {
    path.starts_with("crates/serve/src/") || path == "crates/harness/src/remote.rs"
}

/// Hot-path modules where a panic, a missed bound, or a heap
/// allocation costs correctness or throughput on every simulated
/// cycle. `hot-alloc` additionally covers all of `crates/bpred/src/`.
pub(crate) const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/sim.rs",
    "crates/core/src/meta.rs",
    "crates/core/src/probe.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/table.rs",
];

/// Indices of non-comment tokens, the scanning view every pass uses.
pub(crate) fn significant(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::Comment)
        .map(|(i, _)| i)
        .collect()
}

/// Does `sig[s..]` start with the path `first::second`?
pub(crate) fn path_pair(
    tokens: &[Token],
    sig: &[usize],
    s: usize,
    first: &str,
    second: &str,
) -> bool {
    tokens[sig[s]].is_ident(first)
        && s + 3 < sig.len()
        && tokens[sig[s + 1]].is_punct(':')
        && tokens[sig[s + 2]].is_punct(':')
        && tokens[sig[s + 3]].is_ident(second)
}

pub(crate) fn finding(
    pass: &'static str,
    kind: &'static str,
    file: &str,
    t: &Token,
    severity: Severity,
    needle: &str,
    message: String,
) -> Finding {
    Finding {
        pass,
        kind,
        file: file.to_string(),
        line: t.line,
        col: t.col,
        severity,
        needle: needle.to_string(),
        message,
        justification: None,
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    pub(crate) fn run_pass(id: &str, path: &str, code: &str, doc: &str) -> Vec<Finding> {
        run_pass_with_serve(id, path, code, doc, "")
    }

    pub(crate) fn run_pass_with_serve(
        id: &str,
        path: &str,
        code: &str,
        doc: &str,
        serve_doc: &str,
    ) -> Vec<Finding> {
        let ctx = PassCtx {
            metrics_doc: doc.to_string(),
            serve_doc: serve_doc.to_string(),
        };
        let src = SourceFile::new(path, code);
        src.ast.validate().expect("fixture parses cleanly");
        let pass = registry()
            .into_iter()
            .find(|p| p.id == id)
            .expect("pass registered");
        let mut out = Vec::new();
        (pass.run)(&ctx, &src, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_eight_documented_passes() {
        let ids: Vec<&str> = registry().iter().map(|p| p.id).collect();
        assert_eq!(
            ids,
            [
                "determinism",
                "atomics",
                "panic-audit",
                "unsafe-forbid",
                "schema-drift",
                "hot-alloc",
                "lock-discipline",
                "result-drop"
            ]
        );
    }

    #[test]
    fn every_kind_belongs_to_a_registered_pass_or_the_allowlist() {
        let ids: Vec<&str> = registry().iter().map(|p| p.id).collect();
        for (pass, kind, desc) in KINDS {
            assert!(
                ids.contains(pass) || *pass == "allowlist",
                "kind {kind} references unknown pass {pass}"
            );
            assert!(!desc.is_empty(), "kind {kind} needs a description");
        }
        // Kinds are unique per (pass, kind).
        let mut seen = std::collections::BTreeSet::new();
        for (pass, kind, _) in KINDS {
            assert!(seen.insert((pass, kind)), "duplicate kind {pass}/{kind}");
        }
    }
}
