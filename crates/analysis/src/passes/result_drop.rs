//! Pass 8: discarded `Result`s in non-test code.
//!
//! Two shapes are flagged:
//!
//! * **discarded-result** — a statement that is just a
//!   `Result`-returning call ended with `;` (`tx.send(x);`) — the
//!   error silently vanishes;
//! * **underscore-bound-result** — the explicit shrug
//!   (`let _ = tx.send(x);`) — tolerated only with an allowlist
//!   justification saying *why* the error is ignorable.
//!
//! Result-ness is resolved two ways: fns defined in the same file with
//! a `-> Result<…>` return type, and a fixed list of std fallible
//! calls (channel send/recv, thread join, filesystem, I/O flush).
//! `call()?;` and `let r = call();` are never flagged — the `?`
//! propagates and the binding keeps the value alive for handling.

use super::{PassCtx, SourceFile};
use crate::ast::{Ast, NodeId, NodeKind};
use crate::report::{Finding, Severity};
use std::collections::BTreeSet;

/// Std-library calls that return `Result` and are commonly "fired and
/// forgotten". Matched against method names and path tails.
const BUILTIN_RESULT_CALLS: &[&str] = &[
    "send",
    "try_send",
    "recv",
    "try_recv",
    "recv_timeout",
    "join",
    "connect",
    "accept",
    "fetch_update",
    "write_all",
    "flush",
    "create_dir_all",
    "remove_dir_all",
    "remove_file",
    "rename",
    "set_nonblocking",
    "shutdown",
];

pub(super) fn run(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    let in_crate_src = src.path.starts_with("crates/") && src.path.contains("/src/");
    if !(in_crate_src || src.path.starts_with("src/")) || src.path.starts_with("vendor/") {
        return;
    }
    // Fns defined in this file with `-> Result<…>`.
    let local_result_fns: BTreeSet<&str> = src
        .ast
        .walk()
        .filter_map(|id| match &src.ast.nodes[id].kind {
            NodeKind::Fn {
                name,
                returns_result: true,
            } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for id in src.ast.walk() {
        let NodeKind::Stmt {
            let_name,
            discard_eligible,
        } = &src.ast.nodes[id].kind
        else {
            continue;
        };
        let kind = if let_name.as_deref() == Some("_") {
            "underscore-bound-result"
        } else if *discard_eligible {
            "discarded-result"
        } else {
            continue;
        };
        if src.ast.in_test(&src.tokens, id) {
            continue;
        }
        let Some(call) = final_call(&src.ast, id) else {
            continue;
        };
        // A local `-> Result` fn resolves only through a bare or
        // `Self::`-qualified path: `std::thread::spawn(..)` (returning a
        // JoinHandle) must not match a local `Server::spawn -> Result`.
        let (callee, local_ok) = match &src.ast.nodes[call].kind {
            NodeKind::MethodCall { name, .. } => (name.as_str(), true),
            NodeKind::Call { path } => match path.rsplit_once("::") {
                None => (path.as_str(), true),
                Some(("Self", tail)) => (tail, true),
                Some((_, tail)) => (tail, false),
            },
            _ => unreachable!("final_call returns calls only"),
        };
        if !(BUILTIN_RESULT_CALLS.contains(&callee)
            || (local_ok && local_result_fns.contains(callee)))
        {
            continue;
        }
        let t = src.ast.first_tok(&src.tokens, id);
        let how = if kind == "underscore-bound-result" {
            "bound to `let _ =`"
        } else {
            "discarded with `;`"
        };
        out.push(Finding {
            pass: "result-drop",
            kind,
            file: src.path.clone(),
            line: t.line,
            col: t.col,
            severity: Severity::Warn,
            needle: callee.to_string(),
            message: format!(
                "Result of `{callee}` {how}; handle the error, propagate with `?`, or \
                 allowlist with a justification for why it is ignorable"
            ),
            justification: None,
        });
    }
}

/// The call node whose value the statement discards: a `Call` or
/// `MethodCall` ending right before the statement's `;`. A trailing
/// `?`, `.ok()`, or any other token in between means the value was
/// handled (or transformed) and the statement is not a bare discard.
fn final_call(ast: &Ast, stmt: NodeId) -> Option<NodeId> {
    let end = ast.nodes[stmt].last.checked_sub(1)?;
    fn search(ast: &Ast, id: NodeId, end: usize) -> Option<NodeId> {
        let node = &ast.nodes[id];
        if node.last == end
            && matches!(
                node.kind,
                NodeKind::Call { .. } | NodeKind::MethodCall { .. }
            )
        {
            return Some(id);
        }
        node.children.iter().find_map(|&c| search(ast, c, end))
    }
    ast.nodes[stmt]
        .children
        .iter()
        .find_map(|&c| search(ast, c, end))
}

#[cfg(test)]
mod tests {
    use crate::passes::testutil::run_pass;

    #[test]
    fn discarded_and_underscore_bound_results_are_flagged() {
        let code = "fn f(tx: &Sender<u8>) {\n  tx.send(1);\n  let _ = tx.send(2);\n}";
        let hits = run_pass("result-drop", "crates/serve/src/lib.rs", code, "");
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].kind, "discarded-result");
        assert_eq!(hits[1].kind, "underscore-bound-result");
        assert!(hits.iter().all(|f| f.needle == "send"));
    }

    #[test]
    fn handled_results_are_not_flagged() {
        let code = "fn f(tx: &Sender<u8>) -> Result<(), SendError<u8>> {\n  \
                    tx.send(1)?;\n  let r = tx.send(2);\n  r.map_err(|e| e)?;\n  \
                    tx.send(3).ok();\n  if tx.send(4).is_err() { }\n  Ok(())\n}";
        let hits = run_pass("result-drop", "crates/serve/src/lib.rs", code, "");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn local_result_fns_are_resolved_by_signature() {
        let code = "fn fallible() -> Result<u8, Error> { Ok(1) }\n\
                    fn safe() -> u8 { 1 }\n\
                    fn f() {\n  fallible();\n  safe();\n  let _ = fallible();\n}";
        let hits = run_pass("result-drop", "crates/obs/src/log.rs", code, "");
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|f| f.needle == "fallible"));
    }

    #[test]
    fn foreign_paths_do_not_resolve_to_local_result_fns() {
        let code = "fn spawn() -> Result<u8, Error> { Ok(1) }\n\
                    fn f() {\n  std::thread::spawn(work);\n  spawn();\n  Self::spawn();\n}";
        let hits = run_pass("result-drop", "crates/serve/src/lib.rs", code, "");
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|f| f.needle == "spawn"));
        assert!(hits.iter().all(|f| f.line >= 4), "{hits:?}");
    }

    #[test]
    fn compound_assignments_and_test_code_are_exempt() {
        let code = "fn f(tx: &Sender<u8>, acc: &mut u8) {\n  *acc += helper();\n}\n\
                    fn helper() -> u8 { 1 }\n\
                    #[cfg(test)]\nmod tests {\n  fn t(tx: &Sender<u8>) { tx.send(1); let _ = tx.send(2); }\n}";
        let hits = run_pass("result-drop", "crates/serve/src/scheduler.rs", code, "");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn scope_is_crate_sources_not_vendor() {
        let code = "fn f(tx: &Sender<u8>) { tx.send(1); }";
        assert_eq!(
            run_pass("result-drop", "crates/exec/src/lib.rs", code, "").len(),
            1
        );
        assert!(run_pass("result-drop", "vendor/x/src/lib.rs", code, "").is_empty());
        assert!(run_pass("result-drop", "tests/properties.rs", code, "").is_empty());
    }
}
