//! Pass 6: heap allocation reachable inside loops in the hot-path
//! modules — the static burn-down list for the ROADMAP's
//! "allocation-free steady state" item.
//!
//! A construct is flagged when it allocates (`Vec::new`, `vec![…]`,
//! `Box::new`, `.to_vec()`, `.collect()`, `format!`, `String::from`,
//! `.clone()`) *and* it is loop-reachable: either syntactically inside
//! a loop ([`kind = alloc-in-loop`]) or inside a fn that an in-loop
//! call site in the same file reaches transitively
//! ([`kind = alloc-in-hot-fn`]). `for`-loop headers run once and do
//! not count; closure bodies inherit the loop context of their
//! definition site.
//!
//! `self.collect()` / `self.clone()`-style calls are *not* flagged:
//! a method on `self` in these modules is a local method (e.g.
//! `Simulator::collect` gathers stats), not the allocating std one.

use super::{finding, PassCtx, SourceFile, HOT_PATH_FILES};
use crate::ast::{NodeKind, Recv};
use crate::report::{Finding, Severity};

/// `Type::method` constructor paths that allocate.
const ALLOC_PATHS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
    "String::new",
    "String::from",
    "String::with_capacity",
];

/// Method names that allocate a fresh buffer from an existing value.
const ALLOC_METHODS: &[&str] = &["to_vec", "collect", "clone"];

fn in_scope(path: &str) -> bool {
    HOT_PATH_FILES.contains(&path) || path.starts_with("crates/bpred/src/")
}

pub(super) fn run(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&src.path) {
        return;
    }
    for id in src.ast.walk() {
        let needle: String = match &src.ast.nodes[id].kind {
            NodeKind::Call { path } => {
                let Some(p) = ALLOC_PATHS
                    .iter()
                    .find(|p| path == *p || path.ends_with(&format!("::{p}")))
                else {
                    continue;
                };
                (*p).to_string()
            }
            NodeKind::MethodCall { name, recv } => {
                if !ALLOC_METHODS.contains(&name.as_str()) {
                    continue;
                }
                // Methods on `self` resolve to local methods here.
                if matches!(recv, Recv::SelfDot) {
                    continue;
                }
                name.clone()
            }
            NodeKind::MacroCall { name } if name == "vec" || name == "format" => {
                format!("{name}!")
            }
            _ => continue,
        };
        if src.ast.in_test(&src.tokens, id) || !src.scope.reachable_in_loop(id) {
            continue;
        }
        let (kind, where_) = if src.scope.in_loop(id) {
            ("alloc-in-loop", "inside a loop")
        } else {
            ("alloc-in-hot-fn", "in a fn called from inside a loop")
        };
        out.push(finding(
            "hot-alloc",
            kind,
            &src.path,
            src.ast.first_tok(&src.tokens, id),
            Severity::Warn,
            &needle,
            format!(
                "{needle} allocates {where_} on the hot path; hoist the buffer out of \
                 the loop or reuse a preallocated one (allocation-free steady state)"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use crate::passes::testutil::run_pass;
    use crate::report::Severity;

    #[test]
    fn hot_alloc_flags_loop_allocations_in_hot_files_only() {
        let code = "fn f(n: usize) {\n  let mut acc = Vec::new();\n  \
                    for i in 0..n { let v = vec![i]; acc.extend(v); }\n}";
        let hits = run_pass("hot-alloc", "crates/core/src/sim.rs", code, "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].needle, "vec!");
        assert_eq!(hits[0].kind, "alloc-in-loop");
        assert_eq!(hits[0].severity, Severity::Warn);
        // Same code outside the hot-path list: out of scope.
        assert!(run_pass("hot-alloc", "crates/core/src/config.rs", code, "").is_empty());
        // The bpred crate is covered wholesale.
        assert_eq!(
            run_pass("hot-alloc", "crates/bpred/src/tage.rs", code, "").len(),
            1
        );
    }

    #[test]
    fn hot_alloc_follows_the_intra_file_call_graph() {
        let code = "impl S {\n\
                    fn run(&mut self) { while self.more() { self.step(); } self.done(); }\n\
                    fn step(&mut self) { let s = String::from(\"x\"); drop(s); }\n\
                    fn done(&mut self) { let s = format!(\"end\"); drop(s); }\n\
                    }";
        let hits = run_pass("hot-alloc", "crates/mem/src/cache.rs", code, "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].needle, "String::from");
        assert_eq!(hits[0].kind, "alloc-in-hot-fn");
    }

    #[test]
    fn hot_alloc_skips_self_methods_for_headers_and_tests() {
        let code = "impl S {\n\
                    fn tick(&mut self) { loop { self.collect(); } }\n\
                    fn collect(&mut self) { self.n += 1; }\n\
                    }\n\
                    fn g(r: &std::ops::Range<usize>) { for i in r.clone() { black_box(i); } }\n\
                    #[cfg(test)]\nmod tests { fn t() { for _ in 0..4 { let v = vec![1]; drop(v); } } }";
        let hits = run_pass("hot-alloc", "crates/core/src/probe.rs", code, "");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn hot_alloc_flags_method_allocs_on_fields() {
        let code = "fn f(v: &[u8], n: usize) -> u8 {\n  let mut x = 0;\n  \
                    for _ in 0..n { let c = v.to_vec(); x ^= c[0]; }\n  x\n}";
        let hits = run_pass("hot-alloc", "crates/mem/src/table.rs", code, "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].needle, "to_vec");
    }
}
