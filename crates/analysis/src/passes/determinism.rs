//! Pass 1: determinism hazards in result-affecting crates.

use super::{finding, path_pair, significant, PassCtx, SourceFile, RESULT_CRATES};
use crate::lexer::TokKind;
use crate::report::{Finding, Severity};

pub(super) fn run(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    if !RESULT_CRATES.iter().any(|p| src.path.starts_with(p)) {
        return;
    }
    let sig = significant(&src.tokens);
    for (s, &i) in sig.iter().enumerate() {
        let t = &src.tokens[i];
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => out.push(finding(
                "determinism",
                "hash-order",
                &src.path,
                t,
                Severity::Error,
                &t.text,
                format!(
                    "{} iteration order varies across runs; results must be byte-identical — \
                     use BTreeMap/BTreeSet or an in-repo table (ProbeTable/FillMap)",
                    t.text
                ),
            )),
            "Instant" | "SystemTime" => out.push(finding(
                "determinism",
                "wall-clock",
                &src.path,
                t,
                Severity::Error,
                &t.text,
                format!(
                    "{} reads the wall clock; simulated time must come from the cycle \
                     counter (timing telemetry belongs outside result-affecting code)",
                    t.text
                ),
            )),
            "thread" if path_pair(&src.tokens, &sig, s, "thread", "current") => out.push(finding(
                "determinism",
                "thread-id",
                &src.path,
                t,
                Severity::Error,
                "thread::current",
                "thread identity leaks scheduler state into results".to_string(),
            )),
            "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng" => out.push(finding(
                "determinism",
                "unseeded-rng",
                &src.path,
                t,
                Severity::Error,
                &t.text,
                format!(
                    "{} draws un-seeded randomness; construct rngs with \
                     SeedableRng::seed_from_u64 so runs replay exactly",
                    t.text
                ),
            )),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::passes::testutil::run_pass;

    #[test]
    fn determinism_flags_only_result_crates() {
        let code = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let hits = run_pass("determinism", "crates/core/src/sim.rs", code, "");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.needle == "Instant"));
        assert!(hits.iter().all(|f| f.kind == "wall-clock"));
        // The executor and telemetry crates measure wall time by design.
        assert!(run_pass("determinism", "crates/exec/src/lib.rs", code, "").is_empty());
        assert!(run_pass("determinism", "crates/telemetry/src/manifest.rs", code, "").is_empty());
    }

    #[test]
    fn determinism_catches_each_hazard_class() {
        let code = "fn f() {\n  let m: HashMap<u8, u8> = HashMap::new();\n  \
                    let s = HashSet::new();\n  let t = SystemTime::now();\n  \
                    let id = thread::current().id();\n  let r = thread_rng();\n}";
        let hits = run_pass("determinism", "crates/mem/src/cache.rs", code, "");
        let needles: Vec<&str> = hits.iter().map(|f| f.needle.as_str()).collect();
        assert!(needles.contains(&"HashMap"));
        assert!(needles.contains(&"HashSet"));
        assert!(needles.contains(&"SystemTime"));
        assert!(needles.contains(&"thread::current"));
        assert!(needles.contains(&"thread_rng"));
        let kinds: Vec<&str> = hits.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&"hash-order"));
        assert!(kinds.contains(&"wall-clock"));
        assert!(kinds.contains(&"thread-id"));
        assert!(kinds.contains(&"unseeded-rng"));
    }

    #[test]
    fn determinism_ignores_tests_comments_and_strings() {
        let code = "// a HashMap in prose\nfn f() { let s = \"HashMap\"; }\n\
                    #[cfg(test)]\nmod tests { use std::collections::HashMap;\n  \
                    fn g() { let m = HashMap::new(); } }";
        assert!(run_pass("determinism", "crates/core/src/sim.rs", code, "").is_empty());
    }

    #[test]
    fn determinism_covers_the_serve_crate() {
        let code = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let hits = run_pass("determinism", "crates/serve/src/telemetry.rs", code, "");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.needle == "Instant"));
    }

    #[test]
    fn determinism_covers_the_obs_crate() {
        let code = "use std::time::SystemTime;\nfn f() { let t = SystemTime::now(); }";
        let hits = run_pass("determinism", "crates/obs/src/log.rs", code, "");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.needle == "SystemTime"));
    }
}
