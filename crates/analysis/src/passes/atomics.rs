//! Pass 2: `Ordering::Relaxed` in the crates that coordinate across
//! threads — the executor, the sweep daemon, and the observability
//! plane's lock-free metric handles.

use super::{finding, path_pair, significant, PassCtx, SourceFile, SYNC_CRATES};
use crate::report::{Finding, Severity};

pub(super) fn run(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    if !SYNC_CRATES.iter().any(|p| src.path.starts_with(p)) {
        return;
    }
    let sig = significant(&src.tokens);
    for (s, &i) in sig.iter().enumerate() {
        let t = &src.tokens[i];
        if t.in_test {
            continue;
        }
        if path_pair(&src.tokens, &sig, s, "Ordering", "Relaxed") {
            out.push(finding(
                "atomics",
                "relaxed-ordering",
                &src.path,
                t,
                Severity::Error,
                "Ordering::Relaxed",
                "Relaxed ordering on a cross-thread atomic: anything guarding cross-thread \
                 hand-off needs Acquire/Release; a pure telemetry tally may be allowlisted"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::passes::testutil::run_pass;

    #[test]
    fn atomics_flags_relaxed_in_sync_crates_only() {
        let code = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); \
                    c.load(Ordering::Acquire); }";
        for path in [
            "crates/exec/src/lib.rs",
            "crates/obs/src/metrics.rs",
            "crates/serve/src/scheduler.rs",
        ] {
            let hits = run_pass("atomics", path, code, "");
            assert_eq!(hits.len(), 1, "{path}");
            assert_eq!(hits[0].needle, "Ordering::Relaxed");
            assert_eq!(hits[0].kind, "relaxed-ordering");
        }
        assert!(run_pass("atomics", "crates/core/src/sim.rs", code, "").is_empty());
    }
}
