//! Pass 7: lock discipline in the crates that coordinate across
//! threads (`crates/exec`, `crates/serve`, `crates/obs`).
//!
//! Three checks, all on the syntax tree:
//!
//! 1. **wait-outside-loop** — a `Condvar::wait` / `wait_timeout` whose
//!    call site is not inside a loop: spurious wakeups mean the
//!    predicate must be re-checked (`while pred { g = cv.wait(g) }`).
//! 2. **guard-across-blocking-call** — a `let`-bound lock guard still
//!    live when a blocking call runs (channel send/recv, thread join,
//!    socket accept, a simulation entry point, or another condvar's
//!    wait): the classic serve-daemon deadlock shape.
//! 3. **lock-order-inversion** — within one file, mutex B acquired
//!    while holding A *and* A acquired while holding B.
//!
//! Tracking is deliberately shallow and per-file: only guards bound by
//! a plain `let` are followed (temporary `lock(&m).field` expressions
//! drop their guard at the semicolon and are safe by construction),
//! `cv.wait(g)` consumes the guard it is handed, `drop(g)` releases
//! it, and block scope ends it. Closure bodies are analyzed with a
//! fresh guard set — a closure built under a lock usually runs on
//! another thread, where the guard is not held.

use super::{PassCtx, SourceFile, SYNC_CRATES};
use crate::ast::{Ast, NodeId, NodeKind, Recv};
use crate::lexer::Token;
use crate::report::{Finding, Severity};
use std::collections::BTreeSet;

/// Methods that block the calling thread while they run.
const BLOCKING_METHODS: &[&str] = &["send", "recv", "recv_timeout", "accept", "join"];

/// Free/path fns that block: thread sleeps and the simulation entry
/// points the daemon dispatches to (a cell simulation under a held
/// lock would stall every other worker).
const BLOCKING_FNS: &[&str] = &[
    "sleep",
    "run_workload_job",
    "run_batch",
    "run_batch_cancellable",
    "run_workload",
    "run_workload_detailed",
];

/// Identifier-position keywords that can appear inside argument lists
/// and must not be mistaken for binding/mutex names.
fn is_arg_keyword(s: &str) -> bool {
    matches!(s, "mut" | "move" | "ref" | "box" | "dyn" | "as")
}

/// A live `let`-bound lock guard.
struct Guard {
    /// Binding name (`let mut st = …` → `st`).
    name: String,
    /// Best-effort mutex identity for ordering checks (field or
    /// variable name the `lock()` was called on; empty when unknown).
    mutex: String,
}

pub(super) fn run(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    if !SYNC_CRATES.iter().any(|p| src.path.starts_with(p)) {
        return;
    }
    let mut v = Visitor {
        src,
        out,
        pairs: Vec::new(),
    };
    let mut live = Vec::new();
    if !src.ast.nodes.is_empty() {
        v.visit(0, &mut live);
    }
    // Order inversions: (a, b) and (b, a) both recorded in this file.
    let ordered: BTreeSet<(&str, &str)> = v
        .pairs
        .iter()
        .map(|(a, b, _, _)| (a.as_str(), b.as_str()))
        .collect();
    let mut reported: BTreeSet<(&str, &str)> = BTreeSet::new();
    for (a, b, line, col) in &v.pairs {
        let key = if a < b {
            (a.as_str(), b.as_str())
        } else {
            (b.as_str(), a.as_str())
        };
        if ordered.contains(&(b.as_str(), a.as_str())) && reported.insert(key) {
            out.push(Finding {
                pass: "lock-discipline",
                kind: "lock-order-inversion",
                file: src.path.clone(),
                line: *line,
                col: *col,
                severity: Severity::Warn,
                needle: format!("{a}/{b}"),
                message: format!(
                    "mutex `{b}` acquired while holding `{a}`, but elsewhere in this \
                     file they nest the other way — pick one acquisition order"
                ),
                justification: None,
            });
        }
    }
}

struct Visitor<'a, 'o> {
    src: &'a SourceFile,
    out: &'o mut Vec<Finding>,
    /// (held mutex, acquired mutex, line, col) for every acquisition
    /// under a live guard.
    pairs: Vec<(String, String, u32, u32)>,
}

impl Visitor<'_, '_> {
    fn visit(&mut self, id: NodeId, live: &mut Vec<Guard>) {
        let node = &self.src.ast.nodes[id];
        match &node.kind {
            NodeKind::Fn { .. } | NodeKind::Closure => {
                // Fresh guard context: a fn body or closure executes
                // elsewhere / later, not under the caller's guards.
                let mut inner = Vec::new();
                for &c in &node.children.clone() {
                    self.visit(c, &mut inner);
                }
            }
            NodeKind::Block => {
                let base = live.len();
                for &c in &node.children.clone() {
                    self.visit(c, live);
                }
                live.truncate(base);
            }
            NodeKind::Stmt { let_name, .. } => {
                let let_name = let_name.clone();
                for &c in &node.children.clone() {
                    self.visit(c, live);
                }
                if let Some(name) = let_name {
                    if name != "_" {
                        if let Some(mutex) = self.lock_in_subtree(id) {
                            live.push(Guard { name, mutex });
                        }
                    }
                }
            }
            NodeKind::MethodCall { name, .. } => {
                let name = name.clone();
                if name == "lock" {
                    self.acquire(id, live);
                } else if name == "wait" || name == "wait_timeout" {
                    self.check_wait(id, live);
                } else if BLOCKING_METHODS.contains(&name.as_str()) {
                    self.check_blocking(id, &format!(".{name}()"), live);
                }
                for &c in &self.src.ast.nodes[id].children.clone() {
                    self.visit(c, live);
                }
            }
            NodeKind::Call { path } => {
                let path = path.clone();
                let last = path.rsplit("::").next().unwrap_or(&path).to_string();
                if last == "lock" {
                    self.acquire(id, live);
                } else if last == "drop" {
                    if let Some(arg) = self.first_arg_ident(id) {
                        live.retain(|g| g.name != arg);
                    }
                } else if BLOCKING_FNS.contains(&last.as_str()) {
                    self.check_blocking(id, &format!("{last}()"), live);
                }
                for &c in &self.src.ast.nodes[id].children.clone() {
                    self.visit(c, live);
                }
            }
            _ => {
                for &c in &node.children.clone() {
                    self.visit(c, live);
                }
            }
        }
    }

    /// Records acquisition-order pairs for a lock call made while other
    /// guards are live.
    fn acquire(&mut self, id: NodeId, live: &[Guard]) {
        if self.src.ast.in_test(&self.src.tokens, id) {
            return;
        }
        let Some(mutex) = mutex_name(&self.src.ast, &self.src.tokens, id) else {
            return;
        };
        let t = self.src.ast.first_tok(&self.src.tokens, id);
        for g in live {
            if !g.mutex.is_empty() && g.mutex != mutex {
                self.pairs
                    .push((g.mutex.clone(), mutex.clone(), t.line, t.col));
            }
        }
    }

    /// Condvar wait: must be inside a loop; consumes the guard it is
    /// handed; any *other* live guard is held across the block.
    fn check_wait(&mut self, id: NodeId, live: &mut Vec<Guard>) {
        if self.src.ast.in_test(&self.src.tokens, id) {
            return;
        }
        let t = self.src.ast.first_tok(&self.src.tokens, id);
        let (line, col) = (t.line, t.col);
        if !self.src.scope.in_loop(id) {
            self.out.push(Finding {
                pass: "lock-discipline",
                kind: "wait-outside-loop",
                file: self.src.path.clone(),
                line,
                col,
                severity: Severity::Error,
                needle: "wait".to_string(),
                message: "Condvar wait outside a loop: spurious wakeups are legal, so the \
                          predicate must be re-checked (`while !pred { g = cv.wait(g)… }`)"
                    .to_string(),
                justification: None,
            });
        }
        if let Some(arg) = self.first_arg_ident(id) {
            live.retain(|g| g.name != arg);
        }
        self.check_blocking(id, ".wait()", live);
    }

    /// Emits guard-across-blocking-call for every live guard.
    fn check_blocking(&mut self, id: NodeId, what: &str, live: &[Guard]) {
        if live.is_empty() || self.src.ast.in_test(&self.src.tokens, id) {
            return;
        }
        let t = self.src.ast.first_tok(&self.src.tokens, id);
        let names: Vec<&str> = live.iter().map(|g| g.name.as_str()).collect();
        self.out.push(Finding {
            pass: "lock-discipline",
            kind: "guard-across-blocking-call",
            file: self.src.path.clone(),
            line: t.line,
            col: t.col,
            severity: Severity::Error,
            needle: what
                .trim_matches(|c| c == '.' || c == '(' || c == ')')
                .to_string(),
            message: format!(
                "lock guard{} `{}` held across blocking {what}; drop the guard (end its \
                 block or call drop()) before blocking",
                if names.len() > 1 { "s" } else { "" },
                names.join("`, `"),
            ),
            justification: None,
        });
    }

    /// Finds a lock call in `id`'s subtree and returns its mutex name.
    fn lock_in_subtree(&self, id: NodeId) -> Option<String> {
        let node = &self.src.ast.nodes[id];
        let is_lock = match &node.kind {
            NodeKind::MethodCall { name, .. } => name == "lock",
            NodeKind::Call { path } => path.rsplit("::").next() == Some("lock"),
            // Do not look inside nested closures: their locks run later.
            NodeKind::Closure | NodeKind::Fn { .. } => return None,
            _ => false,
        };
        if is_lock {
            return Some(mutex_name(&self.src.ast, &self.src.tokens, id).unwrap_or_default());
        }
        node.children.iter().find_map(|&c| self.lock_in_subtree(c))
    }

    /// First argument of a call node when it is a bare identifier.
    fn first_arg_ident(&self, id: NodeId) -> Option<String> {
        let node = &self.src.ast.nodes[id];
        let mut s = node.first;
        // Scan to the opening paren of the argument list.
        while s <= node.last {
            if self.src.ast.tok(&self.src.tokens, s).is_punct('(') {
                let arg = self.src.ast.tok(&self.src.tokens, s + 1);
                return (arg.kind == crate::lexer::TokKind::Ident && !is_arg_keyword(&arg.text))
                    .then(|| arg.text.clone());
            }
            s += 1;
        }
        None
    }
}

/// Best-effort mutex identity for a lock call: the field/variable name
/// the guard protects. `shared.slots.lock()` → `slots`;
/// `lock(&self.stripes[i])` → `stripes`; `m.lock()` → `m`.
fn mutex_name(ast: &Ast, tokens: &[Token], id: NodeId) -> Option<String> {
    let node = &ast.nodes[id];
    match &node.kind {
        NodeKind::MethodCall { recv, .. } => match recv {
            Recv::Tail(t) => Some(t.clone()),
            Recv::SelfDot => Some("self".to_string()),
            Recv::Chain => None,
        },
        NodeKind::Call { .. } => {
            // Last plain ident inside the argument list, stopping at an
            // index expression (`stripes[i]` → `stripes`).
            let mut best = None;
            let mut in_args = false;
            for s in node.first..=node.last {
                let t = ast.tok(tokens, s);
                if !in_args {
                    in_args = t.is_punct('(');
                    continue;
                }
                if t.is_punct('[') || t.is_punct(')') {
                    break;
                }
                if t.kind == crate::lexer::TokKind::Ident && !is_arg_keyword(&t.text) {
                    best = Some(t.text.clone());
                }
            }
            best
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::passes::testutil::run_pass;

    #[test]
    fn wait_must_be_loop_rechecked() {
        let bad = "fn f(m: &Mutex<bool>, cv: &Condvar) {\n  \
                   let g = m.lock().unwrap();\n  let _g2 = cv.wait(g).unwrap();\n}";
        let hits = run_pass("lock-discipline", "crates/serve/src/scheduler.rs", bad, "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].kind, "wait-outside-loop");

        let good = "fn f(m: &Mutex<bool>, cv: &Condvar) {\n  \
                    let mut g = m.lock().unwrap();\n  \
                    while !*g { g = cv.wait(g).unwrap(); }\n}";
        let hits = run_pass("lock-discipline", "crates/serve/src/scheduler.rs", good, "");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn guard_held_across_blocking_send_is_flagged() {
        let bad = "fn f(m: &Mutex<u8>, tx: &Sender<u8>) {\n  \
                   let st = m.lock().unwrap();\n  tx.send(*st).unwrap();\n}";
        let hits = run_pass("lock-discipline", "crates/exec/src/lib.rs", bad, "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].kind, "guard-across-blocking-call");
        assert!(hits[0].message.contains("`st`"));

        // Dropping the guard first is fine, and so is a temporary.
        let good = "fn f(m: &Mutex<u8>, tx: &Sender<u8>) {\n  \
                    let st = m.lock().unwrap();\n  let v = *st;\n  drop(st);\n  \
                    tx.send(v).unwrap();\n  tx.send(*m.lock().unwrap()).unwrap();\n}";
        let hits = run_pass("lock-discipline", "crates/exec/src/lib.rs", good, "");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn guard_scope_ends_with_its_block_and_closures_reset_context() {
        let good = "fn f(m: &Mutex<u8>, tx: &Sender<u8>) {\n  \
                    { let st = m.lock().unwrap(); touch(*st); }\n  tx.send(1).unwrap();\n  \
                    let st = m.lock().unwrap();\n  \
                    spawn(move || { tx.send(9).unwrap(); });\n  touch(*st);\n}";
        let hits = run_pass("lock-discipline", "crates/serve/src/lib.rs", good, "");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn simulation_call_under_guard_is_flagged() {
        let bad = "fn f(m: &Mutex<u8>) {\n  let st = m.lock().unwrap();\n  \
                   let (stats, dists) = run_workload_job(cfg(*st), p(), 1, 2);\n  drop(stats);\n}";
        let hits = run_pass("lock-discipline", "crates/serve/src/scheduler.rs", bad, "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].kind, "guard-across-blocking-call");
    }

    #[test]
    fn inconsistent_acquisition_order_is_flagged_once() {
        let bad = "fn a(s: &S) { let g1 = s.slots.lock().unwrap(); \
                   let g2 = s.journal.lock().unwrap(); use2(g1, g2); }\n\
                   fn b(s: &S) { let g2 = s.journal.lock().unwrap(); \
                   let g1 = s.slots.lock().unwrap(); use2(g1, g2); }";
        let hits = run_pass("lock-discipline", "crates/serve/src/scheduler.rs", bad, "");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].kind, "lock-order-inversion");
        assert_eq!(hits[0].needle, "slots/journal");

        let good = "fn a(s: &S) { let g1 = s.slots.lock().unwrap(); \
                    let g2 = s.journal.lock().unwrap(); use2(g1, g2); }\n\
                    fn b(s: &S) { let g1 = s.slots.lock().unwrap(); \
                    let g2 = s.journal.lock().unwrap(); use2(g1, g2); }";
        let hits = run_pass("lock-discipline", "crates/serve/src/scheduler.rs", good, "");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn lock_helper_fn_and_wait_consumption_match_the_executor_idiom() {
        // The exec crate's `lock(&m)` helper + re-binding wait loop.
        let good = "fn take(p: &Pool) -> u8 {\n  let mut st = lock(&p.state);\n  \
                    while st.queue.is_empty() { st = p.work_cv.wait(st).unwrap_or_else(|e| e.into_inner()); }\n  \
                    st.queue.pop().unwrap()\n}";
        let hits = run_pass("lock-discipline", "crates/exec/src/lib.rs", good, "");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn pass_only_covers_sync_crates() {
        let bad = "fn f(m: &Mutex<bool>, cv: &Condvar) {\n  \
                   let g = m.lock().unwrap();\n  let _g2 = cv.wait(g).unwrap();\n}";
        assert!(run_pass("lock-discipline", "crates/core/src/sim.rs", bad, "").is_empty());
    }
}
