//! Pass 4: the zero-`unsafe` lock-in, everywhere including tests and
//! vendored stand-ins.

use super::{finding, PassCtx, SourceFile};
use crate::lexer::TokKind;
use crate::report::{Finding, Severity};

pub(super) fn run(_ctx: &PassCtx, src: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in src.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // A `// SAFETY: …` comment must immediately precede the block
        // (within the previous few tokens, so an attribute or visibility
        // keyword in between still counts).
        let has_safety = src.tokens[i.saturating_sub(4)..i]
            .iter()
            .any(|p| p.kind == TokKind::Comment && p.text.contains("SAFETY:"));
        let (kind, needle, message) = if has_safety {
            (
                "unsafe-block",
                "unsafe",
                "the workspace is unsafe-free; new unsafe requires an allowlist entry \
                 justifying why safe code cannot express this"
                    .to_string(),
            )
        } else {
            (
                "unsafe-missing-safety-comment",
                "unsafe-missing-safety-comment",
                "unsafe without an immediately preceding `// SAFETY:` comment; document \
                 the invariant the block relies on, then allowlist it"
                    .to_string(),
            )
        };
        out.push(finding(
            "unsafe-forbid",
            kind,
            &src.path,
            t,
            Severity::Error,
            needle,
            message,
        ));
    }
}

#[cfg(test)]
mod tests {
    use crate::passes::testutil::run_pass;

    #[test]
    fn unsafe_forbid_covers_everything_and_distinguishes_safety_comments() {
        let bare = "fn f() { unsafe { work(); } }";
        let hits = run_pass("unsafe-forbid", "vendor/rand/src/lib.rs", bare, "");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].needle, "unsafe-missing-safety-comment");
        assert_eq!(hits[0].kind, "unsafe-missing-safety-comment");
        let commented = "fn f() {\n  // SAFETY: len checked above\n  unsafe { work(); }\n}";
        let hits = run_pass("unsafe-forbid", "crates/core/src/sim.rs", commented, "");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].needle, "unsafe");
        assert_eq!(hits[0].kind, "unsafe-block");
        // Test code is NOT exempt for this pass.
        let in_test = "#[cfg(test)]\nmod tests { fn t() { unsafe { work(); } } }";
        assert_eq!(
            run_pass("unsafe-forbid", "tests/properties.rs", in_test, "").len(),
            1
        );
        // The word inside a string or comment does not count.
        let quoted = "// unsafe in prose\nfn f() { let s = \"unsafe\"; }";
        assert!(run_pass("unsafe-forbid", "src/lib.rs", quoted, "").is_empty());
    }
}
