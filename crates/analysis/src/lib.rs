#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fdip-analysis` — the workspace's own static-analysis harness
//! (`fdip-lint`), in the repo's no-external-deps style.
//!
//! The repository's two hardest contracts are byte-identical results
//! across `FDIP_JOBS` worker counts and the bidirectional
//! `docs/METRICS.md` schema. Both are enforced at runtime by tests —
//! *after* a violation ships. This crate enforces the invariants that
//! back them statically, at `scripts/verify.sh` time, before any
//! simulation runs:
//!
//! | pass | invariant |
//! |---|---|
//! | `determinism` | no wall-clock reads, hash-order iteration, thread ids, or un-seeded randomness in result-affecting crates |
//! | `atomics` | no `Ordering::Relaxed` on executor/daemon/telemetry atomics without justification |
//! | `panic-audit` | no `unwrap`/`expect`/`panic!` in the hot-path modules |
//! | `unsafe-forbid` | the workspace stays `unsafe`-free |
//! | `schema-drift` | every emitted JSON key is documented in `docs/METRICS.md` (serve/wire code may document keys in `docs/SERVE.md`) |
//! | `hot-alloc` | no heap allocation reachable inside loops in the hot-path modules |
//! | `lock-discipline` | Condvar waits re-checked in loops, no guard across blocking calls, one lock order |
//! | `result-drop` | no silently discarded `Result`s in non-test code |
//!
//! The architecture is a hand-rolled lexer ([`lexer`]) — comments,
//! strings, char-vs-lifetime, idents — a tolerant recursive-descent
//! parser over it ([`ast`]) with scope queries ([`scope`]), a registry
//! of passes ([`passes`]), a justified allowlist ([`allow`]),
//! machine-readable diagnostics plus a versioned `lint.json`
//! ([`report`], Document 5 of `docs/METRICS.md`), and a
//! detection-liveness harness ([`mutate`]) that splices known-bad
//! constructs in memory to prove each pass still fires. See
//! `docs/ANALYSIS.md` for the operator's view.

pub mod allow;
pub mod ast;
pub mod lexer;
pub mod mutate;
pub mod passes;
pub mod report;
pub mod scope;

use std::path::Path;

use allow::Allowlist;
use passes::{registry, PassCtx, SourceFile};
use report::{Finding, LintOutcome, Severity};

/// Workspace-relative path of the allowlist file.
pub const ALLOWLIST_PATH: &str = "lint-allow.txt";

/// Top-level directories scanned for `.rs` sources. Directory-walk order
/// is sorted, so two runs over the same tree report identically — the
/// lint tool holds itself to the workspace's determinism bar.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "vendor"];

/// Directory names never descended into: build output and the lint
/// crate's own deliberately-violating test fixtures.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Collects every scannable `.rs` path under `root`, workspace-relative
/// with `/` separators, sorted.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let unix: Vec<String> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                out.push(unix.join("/"));
            }
        }
    }
    Ok(())
}

/// Lints every workspace source file under `root`, applying (and
/// auditing) the allowlist. The returned findings are sorted by
/// `(file, line, col, pass)`.
pub fn lint_workspace(root: &Path, allowlist: &mut Allowlist) -> std::io::Result<LintOutcome> {
    lint_workspace_with(root, allowlist, None)
}

/// [`lint_workspace`] with an optional detection-liveness mutation:
/// when `inject` names a pass, that pass's known-bad construct from
/// [`mutate::MUTATIONS`] is spliced (in memory only — nothing on disk
/// changes) into its target file before linting. A healthy pass then
/// produces at least one denying finding; a silently-dead one exits
/// clean, which `scripts/verify.sh` turns into a CI failure.
pub fn lint_workspace_with(
    root: &Path,
    allowlist: &mut Allowlist,
    inject: Option<&str>,
) -> std::io::Result<LintOutcome> {
    let mutation = match inject {
        Some(id) => Some(mutate::for_pass(id).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("no mutation registered for pass `{id}`"),
            )
        })?),
        None => None,
    };
    let metrics_doc = std::fs::read_to_string(root.join("docs/METRICS.md")).unwrap_or_default();
    let serve_doc = std::fs::read_to_string(root.join("docs/SERVE.md")).unwrap_or_default();
    let ctx = PassCtx {
        metrics_doc,
        serve_doc,
    };
    let passes = registry();
    let files = collect_files(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let mut text = std::fs::read_to_string(root.join(rel))?;
        if let Some(m) = mutation {
            if m.file == rel {
                text = mutate::splice(&text, m);
            }
        }
        let src = SourceFile::new(rel.clone(), &text);
        for pass in &passes {
            (pass.run)(&ctx, &src, &mut findings);
        }
    }
    apply_allowlist(&mut findings, allowlist);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.pass).cmp(&(b.file.as_str(), b.line, b.col, b.pass))
    });
    Ok(LintOutcome {
        findings,
        files_scanned: files.len(),
        pass_ids: passes.iter().map(|p| p.id).collect(),
    })
}

/// Marks findings covered by the allowlist and appends meta-findings for
/// allowlist problems: entries with no justification and entries that
/// matched nothing. Both are errors — a stale entry means the allowlist
/// no longer tracks reality and must be pruned before `--deny` passes.
pub fn apply_allowlist(findings: &mut Vec<Finding>, allowlist: &mut Allowlist) {
    for f in findings.iter_mut() {
        if f.severity < Severity::Warn {
            continue;
        }
        if let Some(entry) = allowlist.claim(f.pass, &f.file, &f.needle) {
            if !entry.justification.is_empty() {
                f.justification = Some(entry.justification.clone());
            }
        }
    }
    for e in &allowlist.entries {
        if e.justification.is_empty() {
            findings.push(Finding {
                pass: "allowlist",
                kind: "missing-justification",
                file: ALLOWLIST_PATH.to_string(),
                line: e.line,
                col: 1,
                severity: Severity::Error,
                needle: e.needle.clone(),
                message: format!(
                    "allowlist entry `{} | {} | {}` has no justification — every \
                     exemption must say why it is sound",
                    e.pass, e.file, e.needle
                ),
                justification: None,
            });
        } else if !e.used {
            findings.push(Finding {
                pass: "allowlist",
                kind: "stale-entry",
                file: ALLOWLIST_PATH.to_string(),
                line: e.line,
                col: 1,
                severity: Severity::Error,
                needle: e.needle.clone(),
                message: format!(
                    "stale allowlist entry `{} | {} | {}`: no finding matches it — \
                     remove it so the allowlist tracks reality",
                    e.pass, e.file, e.needle
                ),
                justification: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlisted_findings_stop_denying_and_entries_are_audited() {
        let mut findings = vec![
            Finding {
                pass: "determinism",
                kind: "wall-clock",
                file: "crates/harness/src/bench.rs".into(),
                line: 5,
                col: 1,
                severity: Severity::Error,
                needle: "Instant".into(),
                message: "wall clock".into(),
                justification: None,
            },
            Finding {
                pass: "determinism",
                kind: "hash-order",
                file: "crates/core/src/sim.rs".into(),
                line: 9,
                col: 1,
                severity: Severity::Error,
                needle: "HashMap".into(),
                message: "hash order".into(),
                justification: None,
            },
        ];
        let mut al = Allowlist::parse(
            "determinism | crates/harness/src/bench.rs | Instant | timing telemetry\n\
             determinism | crates/mem/src/cache.rs | HashSet | gone since PR 3\n\
             atomics | crates/exec/src/lib.rs | Ordering::Relaxed |\n",
        )
        .unwrap();
        apply_allowlist(&mut findings, &mut al);
        // Covered finding carries the justification; uncovered still denies.
        assert_eq!(
            findings[0].justification.as_deref(),
            Some("timing telemetry")
        );
        assert!(!findings[0].denies());
        assert!(findings[1].denies());
        // Stale entries and empty justifications are both hard errors.
        let metas: Vec<(&str, &str, Severity)> = findings[2..]
            .iter()
            .map(|f| (f.needle.as_str(), f.kind, f.severity))
            .collect();
        assert!(metas.contains(&("HashSet", "stale-entry", Severity::Error)));
        assert!(metas.contains(&(
            "Ordering::Relaxed",
            "missing-justification",
            Severity::Error
        )));
    }

    #[test]
    fn notes_are_never_allowlist_matched() {
        let mut findings = vec![Finding {
            pass: "panic-audit",
            kind: "index-in-loop",
            file: "crates/core/src/sim.rs".into(),
            line: 1,
            col: 1,
            severity: Severity::Note,
            needle: "index".into(),
            message: "advisory".into(),
            justification: None,
        }];
        let mut al =
            Allowlist::parse("panic-audit | crates/core/src/sim.rs | index | why\n").unwrap();
        apply_allowlist(&mut findings, &mut al);
        assert!(findings[0].justification.is_none());
        // The entry is therefore stale — and stale is a hard error.
        let meta = findings.iter().find(|f| f.pass == "allowlist").unwrap();
        assert_eq!(meta.kind, "stale-entry");
        assert_eq!(meta.severity, Severity::Error);
    }
}
