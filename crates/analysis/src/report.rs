//! Findings, severities, human rendering, and the versioned `lint.json`
//! document (Document 5 of `docs/METRICS.md`).

use fdip_telemetry::Json;

/// Version of the `lint.json` document (Document 5 of
/// `docs/METRICS.md`). Independent of the workspace-wide
/// `fdip_telemetry::SCHEMA_VERSION`: bumped when the lint document's
/// shape changes. v2 added per-finding diagnostic `kind`s and made
/// stale allowlist entries hard errors.
pub const LINT_SCHEMA_VERSION: u64 = 2;

/// How serious a finding is.
///
/// `Error` and `Warn` findings deny (non-zero exit under `--deny`)
/// unless allowlisted; `Note` findings are advisory and never deny —
/// they mark idioms worth a look (e.g. bounds-checked indexing in a hot
/// loop) that the workspace deliberately uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory only; never denies.
    Note,
    /// Denies unless allowlisted.
    Warn,
    /// Denies unless allowlisted.
    Error,
}

impl Severity {
    /// Lowercase display name (`error`, `warn`, `note`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic from one pass at one source position.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Id of the pass that produced it (`determinism`, `atomics`, …, or
    /// `allowlist` for problems with the allowlist file itself).
    pub pass: &'static str,
    /// Machine-readable diagnostic kind within the pass (e.g.
    /// `wall-clock`, `alloc-in-loop`); the full table is
    /// [`crate::passes::KINDS`].
    pub kind: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Severity (see [`Severity`] for deny semantics).
    pub severity: Severity,
    /// The flagged construct — what an allowlist entry must name.
    pub needle: String,
    /// Human explanation.
    pub message: String,
    /// The allowlist justification, when an entry covered this finding.
    pub justification: Option<String>,
}

impl Finding {
    /// Does this finding fail a `--deny` run? (Error/Warn, not covered
    /// by an allowlist entry.)
    pub fn denies(&self) -> bool {
        self.severity >= Severity::Warn && self.justification.is_none()
    }

    /// Stable single-line rendering: `file:line:col: [pass] severity: message`.
    pub fn render(&self) -> String {
        let suffix = match &self.justification {
            Some(j) => format!(" (allowed: {j})"),
            None => String::new(),
        };
        format!(
            "{}:{}:{}: [{}] {}: {}{}",
            self.file,
            self.line,
            self.col,
            self.pass,
            self.severity.name(),
            self.message,
            suffix
        )
    }
}

/// Everything one lint run produced.
#[derive(Clone, Debug)]
pub struct LintOutcome {
    /// All findings, sorted by (file, line, col, pass).
    pub findings: Vec<Finding>,
    /// Number of source files lexed and scanned.
    pub files_scanned: usize,
    /// Registered pass ids, in registry order.
    pub pass_ids: Vec<&'static str>,
}

impl LintOutcome {
    /// Findings that fail `--deny`.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.denies())
    }

    /// Count of findings at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// Count of allowlisted (justified) findings.
    pub fn allowlisted(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.justification.is_some())
            .count()
    }

    /// The versioned `lint.json` document (Document 5, `docs/METRICS.md`).
    pub fn to_json(&self) -> Json {
        let per_pass: Vec<Json> = self
            .pass_ids
            .iter()
            .map(|id| {
                let of_pass = || self.findings.iter().filter(move |f| f.pass == *id);
                Json::obj()
                    .with("id", *id)
                    .with("findings", of_pass().count())
                    .with("denied", of_pass().filter(|f| f.denies()).count())
                    .with(
                        "allowed",
                        of_pass().filter(|f| f.justification.is_some()).count(),
                    )
            })
            .collect();
        let findings: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                let mut j = Json::obj()
                    .with("pass", f.pass)
                    .with("kind", f.kind)
                    .with("file", f.file.as_str())
                    .with("line", f.line)
                    .with("col", f.col)
                    .with("severity", f.severity.name())
                    .with("needle", f.needle.as_str())
                    .with("message", f.message.as_str());
                if let Some(just) = &f.justification {
                    j.set("justification", just.as_str());
                }
                j
            })
            .collect();
        Json::obj()
            .with("schema_version", LINT_SCHEMA_VERSION)
            .with(
                "lint",
                Json::obj()
                    .with("tool", "fdip-lint")
                    .with("files_scanned", self.files_scanned)
                    .with("passes", Json::Arr(per_pass))
                    .with("findings", Json::Arr(findings))
                    .with(
                        "summary",
                        Json::obj()
                            .with("errors", self.count(Severity::Error))
                            .with("warnings", self.count(Severity::Warn))
                            .with("notes", self.count(Severity::Note))
                            .with("allowlisted", self.allowlisted())
                            .with("denied", self.denied().count()),
                    ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintOutcome {
        LintOutcome {
            findings: vec![
                Finding {
                    pass: "determinism",
                    kind: "wall-clock",
                    file: "crates/x/src/a.rs".into(),
                    line: 3,
                    col: 9,
                    severity: Severity::Error,
                    needle: "Instant".into(),
                    message: "wall-clock read".into(),
                    justification: None,
                },
                Finding {
                    pass: "determinism",
                    kind: "hash-order",
                    file: "crates/x/src/a.rs".into(),
                    line: 7,
                    col: 1,
                    severity: Severity::Error,
                    needle: "HashMap".into(),
                    message: "nondeterministic iteration".into(),
                    justification: Some("frozen before iteration".into()),
                },
                Finding {
                    pass: "panic-audit",
                    kind: "index-in-loop",
                    file: "crates/x/src/b.rs".into(),
                    line: 1,
                    col: 2,
                    severity: Severity::Note,
                    needle: "index".into(),
                    message: "indexing in loop".into(),
                    justification: None,
                },
            ],
            files_scanned: 2,
            pass_ids: vec!["determinism", "panic-audit"],
        }
    }

    #[test]
    fn deny_semantics_follow_severity_and_allowlisting() {
        let o = sample();
        let denied: Vec<&str> = o.denied().map(|f| f.needle.as_str()).collect();
        assert_eq!(denied, ["Instant"]);
        assert_eq!(o.count(Severity::Error), 2);
        assert_eq!(o.count(Severity::Note), 1);
        assert_eq!(o.allowlisted(), 1);
    }

    #[test]
    fn rendering_is_stable() {
        let o = sample();
        assert_eq!(
            o.findings[0].render(),
            "crates/x/src/a.rs:3:9: [determinism] error: wall-clock read"
        );
        assert_eq!(
            o.findings[1].render(),
            "crates/x/src/a.rs:7:1: [determinism] error: nondeterministic iteration \
             (allowed: frozen before iteration)"
        );
    }

    #[test]
    fn json_document_carries_passes_findings_and_summary() {
        let j = sample().to_json();
        assert_eq!(
            j.get("schema_version").and_then(Json::as_u64),
            Some(LINT_SCHEMA_VERSION)
        );
        const _: () = assert!(LINT_SCHEMA_VERSION >= 2, "v2 added diagnostic kinds");
        let lint = j.get("lint").expect("lint block");
        assert_eq!(lint.get("files_scanned").and_then(Json::as_u64), Some(2));
        let passes = lint.get("passes").and_then(Json::as_arr).unwrap();
        assert_eq!(passes.len(), 2);
        assert_eq!(passes[0].get("findings").and_then(Json::as_u64), Some(2));
        assert_eq!(passes[0].get("denied").and_then(Json::as_u64), Some(1));
        assert_eq!(passes[0].get("allowed").and_then(Json::as_u64), Some(1));
        let summary = lint.get("summary").expect("summary");
        assert_eq!(summary.get("denied").and_then(Json::as_u64), Some(1));
        assert_eq!(summary.get("allowlisted").and_then(Json::as_u64), Some(1));
        let findings = lint.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(findings.len(), 3);
        assert!(findings[1].get("justification").is_some());
        assert!(findings[0].get("justification").is_none());
        // Round-trips through the in-repo parser.
        assert!(Json::parse(&j.to_string_pretty()).is_ok());
    }
}
