//! The checked-in allowlist: one justified exemption per line.
//!
//! Format (`lint-allow.txt` at the repository root):
//!
//! ```text
//! # comment
//! pass-id | relative/path.rs | needle | one-line justification
//! ```
//!
//! An entry exempts every finding of `pass-id` in that file whose
//! `needle` (the flagged construct, e.g. `Instant` or
//! `Ordering::Relaxed`) matches exactly. Justifications are mandatory —
//! an empty fourth field is itself a lint error — and entries that match
//! nothing are flagged as stale so the file cannot rot.

/// One parsed allowlist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Pass id the exemption applies to (`determinism`, `atomics`, …).
    pub pass: String,
    /// Workspace-relative path of the exempted file, `/`-separated.
    pub file: String,
    /// Exact needle the pass reported (the flagged construct).
    pub needle: String,
    /// Human reason the finding is acceptable. Must be non-empty.
    pub justification: String,
    /// 1-based line number in the allowlist file (for diagnostics).
    pub line: u32,
    /// Whether any finding matched this entry (set during application).
    pub used: bool,
}

/// A parsed allowlist file.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// The entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the `pass | file | needle | justification` line format.
    /// Blank lines and `#` comments are skipped. Lines with fewer than
    /// four fields are an error naming the offending line.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
            let [pass, file, needle, justification] = fields[..] else {
                return Err(format!(
                    "allowlist line {}: expected `pass | file | needle | justification`, \
                     got: {line}",
                    i + 1
                ));
            };
            if pass.is_empty() || file.is_empty() || needle.is_empty() {
                return Err(format!(
                    "allowlist line {}: pass, file, and needle must be non-empty: {line}",
                    i + 1
                ));
            }
            entries.push(AllowEntry {
                pass: pass.to_string(),
                file: file.to_string(),
                needle: needle.to_string(),
                justification: justification.to_string(),
                line: (i + 1) as u32,
                used: false,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Renders back to the line format (round-trip; comments are not
    /// preserved).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{} | {} | {} | {}\n",
                e.pass, e.file, e.needle, e.justification
            ));
        }
        out
    }

    /// Finds the entry covering `(pass, file, needle)`, marking it used.
    pub fn claim(&mut self, pass: &str, file: &str, needle: &str) -> Option<&AllowEntry> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.pass == pass && e.file == file && e.needle == needle)?;
        e.used = true;
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_entries() {
        let text = "# header\n\n\
                    determinism | crates/a/src/x.rs | Instant | timing telemetry only\n";
        let al = Allowlist::parse(text).unwrap();
        assert_eq!(al.entries.len(), 1);
        let e = &al.entries[0];
        assert_eq!(e.pass, "determinism");
        assert_eq!(e.file, "crates/a/src/x.rs");
        assert_eq!(e.needle, "Instant");
        assert_eq!(e.justification, "timing telemetry only");
        assert_eq!(e.line, 3);
        assert!(!e.used);
    }

    #[test]
    fn justification_may_contain_pipes() {
        let al = Allowlist::parse("p | f.rs | n | uses a | b split\n").unwrap();
        assert_eq!(al.entries[0].justification, "uses a | b split");
    }

    #[test]
    fn short_lines_are_rejected() {
        assert!(Allowlist::parse("p | f.rs\n").is_err());
        assert!(Allowlist::parse("| f | n | j\n").is_err());
    }

    #[test]
    fn empty_justification_parses_but_is_detectable() {
        let al = Allowlist::parse("p | f.rs | n |\n").unwrap();
        assert!(al.entries[0].justification.is_empty());
        let al = Allowlist::parse("p | f.rs | n\n");
        assert!(al.is_err(), "missing field entirely is a parse error");
    }

    #[test]
    fn claim_matches_exactly_and_marks_used() {
        let mut al = Allowlist::parse("p | f.rs | Instant | why\n").unwrap();
        assert!(al.claim("p", "f.rs", "SystemTime").is_none());
        assert!(al.claim("other", "f.rs", "Instant").is_none());
        assert!(al.claim("p", "f.rs", "Instant").is_some());
        assert!(al.entries[0].used);
    }

    #[test]
    fn round_trips_through_render() {
        let text = "a | b.rs | c | d\ne | f.rs | g | h\n";
        let al = Allowlist::parse(text).unwrap();
        let again = Allowlist::parse(&al.render()).unwrap();
        assert_eq!(al.entries, again.entries);
    }
}
