//! `fdip-lint` — run the workspace static-analysis passes.
//!
//! ```text
//! fdip-lint [--root <dir>] [--allowlist <path>] [--json <path>]
//!           [--deny] [--notes] [--list-passes] [--inject <pass>]
//! ```
//!
//! Prints one `file:line:col: [pass] severity: message` line per finding
//! (notes only with `--notes`), a summary, and optionally the versioned
//! `lint.json` document (Document 5 of `docs/METRICS.md`). With
//! `--deny`, exits non-zero when any error/warn finding lacks an
//! allowlist justification — the `scripts/verify.sh` gate.
//!
//! `--inject <pass>` is the detection-liveness harness: it splices the
//! named pass's registered bad construct into its target file (in
//! memory only) before linting, so a healthy pass *must* deny. CI runs
//! `--deny --inject <pass>` per pass and fails if the exit is zero.

use std::path::PathBuf;
use std::process::ExitCode;

use fdip_analysis::allow::Allowlist;
use fdip_analysis::report::Severity;
use fdip_analysis::{lint_workspace_with, passes, ALLOWLIST_PATH};

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: Option<PathBuf>,
    deny: bool,
    notes: bool,
    list_passes: bool,
    inject: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        allowlist: None,
        json: None,
        deny: false,
        notes: false,
        list_passes: false,
        inject: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a path")?),
            "--allowlist" => {
                args.allowlist = Some(PathBuf::from(it.next().ok_or("--allowlist needs a path")?))
            }
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?)),
            "--deny" => args.deny = true,
            "--notes" => args.notes = true,
            "--list-passes" => args.list_passes = true,
            "--inject" => args.inject = Some(it.next().ok_or("--inject needs a pass id")?),
            "--help" | "-h" => {
                println!(
                    "usage: fdip-lint [--root <dir>] [--allowlist <path>] [--json <path>] \
                     [--deny] [--notes] [--list-passes] [--inject <pass>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fdip-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list_passes {
        for p in passes::registry() {
            println!("{:14} {}", p.id, p.description);
        }
        return ExitCode::SUCCESS;
    }
    let allow_path = args
        .allowlist
        .clone()
        .unwrap_or_else(|| args.root.join(ALLOWLIST_PATH));
    let allow_text = match std::fs::read_to_string(&allow_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("fdip-lint: reading {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut allowlist = match Allowlist::parse(&allow_text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fdip-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(id) = &args.inject {
        eprintln!("fdip-lint: injecting the `{id}` mutation (in memory; no files change)");
    }
    let outcome = match lint_workspace_with(&args.root, &mut allowlist, args.inject.as_deref()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fdip-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in &outcome.findings {
        if f.severity == Severity::Note && !args.notes {
            continue;
        }
        println!("{}", f.render());
    }
    let denied = outcome.denied().count();
    println!(
        "fdip-lint: {} files, {} errors, {} warnings, {} notes, {} allowlisted, {} denied",
        outcome.files_scanned,
        outcome.count(Severity::Error),
        outcome.count(Severity::Warn),
        outcome.count(Severity::Note),
        outcome.allowlisted(),
        denied
    );
    if let Some(path) = &args.json {
        let doc = outcome.to_json().to_string_pretty();
        if let Err(e) = std::fs::write(path, doc + "\n") {
            eprintln!("fdip-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if args.deny && denied > 0 {
        eprintln!("fdip-lint: {denied} finding(s) denied (not allowlisted) — failing --deny");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
