//! A minimal Rust lexer: comments, strings, char-vs-lifetime, idents,
//! numbers, punctuation — deliberately *not* a parser.
//!
//! The lint passes only need a faithful token stream: a `HashMap` inside
//! a doc comment or a string literal must not be flagged, a `"key"` after
//! `.with(` must be recoverable, and `#[cfg(test)]` regions must be
//! maskable. Everything beyond that (expressions, types, items) stays
//! out of scope, which keeps the lexer a few hundred lines and the whole
//! crate dependency-free like the rest of the workspace.
//!
//! Positions are 1-based line/column pairs counted in characters, so a
//! diagnostic `file:line:col` lands where an editor expects it.

/// Kind of a lexed token.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `unsafe`, …).
    Ident,
    /// A single punctuation character (`{`, `:`, `#`, …).
    Punct,
    /// String literal — normal, raw, or byte; `text` holds the body
    /// between the quotes, escapes unprocessed.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime (`'a`, `'static`); `text` holds the name without the quote.
    Lifetime,
    /// Numeric literal (loosely scanned: `0x1f`, `1.5`, `3u64`).
    Num,
    /// Line or block comment; `text` holds the body including markers.
    Comment,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is included per kind).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column, in characters.
    pub col: u32,
    /// `true` when the token sits inside a `#[cfg(test)]` / `#[test]`
    /// region (set by the post-lex marking pass).
    pub in_test: bool,
}

impl Token {
    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this an identifier token with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Lexes `src` into tokens and marks `#[cfg(test)]` / `#[test]` regions.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    };
    lx.run();
    mark_test_regions(&mut lx.out);
    lx.out
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn cur(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek(&self, n: usize) -> Option<char> {
        self.chars.get(self.i + n).copied()
    }

    /// Consumes one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.cur()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.cur() {
            let (line, col) = (self.line, self.col);
            if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == '"' {
                self.bump();
                let text = self.quoted_string();
                self.push(TokKind::Str, text, line, col);
            } else if c == '\'' {
                self.char_or_lifetime(line, col);
            } else if c.is_alphabetic() || c == '_' {
                if (c == 'r' || c == 'b') && self.string_prefix(line, col) {
                    continue;
                }
                self.ident(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if c.is_whitespace() {
                self.bump();
            } else {
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line, col);
            }
        }
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(ch) = self.cur() {
            if ch == '\n' {
                break;
            }
            text.push(ch);
            self.bump();
        }
        self.push(TokKind::Comment, text, line, col);
    }

    /// Block comment, nesting like Rust's.
    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(ch) = self.cur() {
            if ch == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if ch == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(ch);
                self.bump();
            }
        }
        self.push(TokKind::Comment, text, line, col);
    }

    /// Body of a normal (escaped) string; the opening quote is consumed.
    fn quoted_string(&mut self) -> String {
        let mut text = String::new();
        while let Some(ch) = self.bump() {
            if ch == '\\' {
                text.push(ch);
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if ch == '"' {
                break;
            } else {
                text.push(ch);
            }
        }
        text
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` — returns `false`
    /// (consuming nothing) when the `r`/`b` at the cursor is a plain
    /// identifier start instead.
    fn string_prefix(&mut self, line: u32, col: u32) -> bool {
        let hashes_then_quote = |lx: &Lexer, mut off: usize| {
            while lx.peek(off) == Some('#') {
                off += 1;
            }
            lx.peek(off) == Some('"')
        };
        let c0 = self.cur();
        let (skip, raw, is_char) = match c0 {
            Some('r') => match self.peek(1) {
                Some('"') => (1, true, false),
                Some('#') if hashes_then_quote(self, 1) => (1, true, false),
                _ => return false,
            },
            Some('b') => match self.peek(1) {
                Some('"') => (1, false, false),
                Some('\'') => (1, false, true),
                Some('r') => match self.peek(2) {
                    Some('"') => (2, true, false),
                    Some('#') if hashes_then_quote(self, 2) => (2, true, false),
                    _ => return false,
                },
                _ => return false,
            },
            _ => return false,
        };
        for _ in 0..skip {
            self.bump();
        }
        if is_char {
            self.bump(); // opening quote
            let mut text = String::new();
            while let Some(ch) = self.bump() {
                if ch == '\\' {
                    text.push(ch);
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                } else if ch == '\'' {
                    break;
                } else {
                    text.push(ch);
                }
            }
            self.push(TokKind::Char, text, line, col);
        } else if raw {
            let text = self.raw_string_body();
            self.push(TokKind::Str, text, line, col);
        } else {
            self.bump(); // opening quote
            let text = self.quoted_string();
            self.push(TokKind::Str, text, line, col);
        }
        true
    }

    /// Raw string body: counts leading `#`s, then reads until `"` followed
    /// by the same number of `#`s. The cursor sits on the first `#` or `"`.
    fn raw_string_body(&mut self) -> String {
        let mut hashes = 0usize;
        while self.cur() == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(ch) = self.cur() {
            if ch == '"' && (0..hashes).all(|k| self.peek(1 + k) == Some('#')) {
                self.bump();
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(ch);
            self.bump();
        }
        text
    }

    /// Disambiguates `'a'` (char) from `'a` / `'static` (lifetime).
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        match self.cur() {
            Some('\\') => {
                // Escaped char literal: consume through the closing quote.
                let mut text = String::new();
                text.push('\\');
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                while let Some(ch) = self.cur() {
                    self.bump();
                    if ch == '\'' {
                        break;
                    }
                    text.push(ch);
                }
                self.push(TokKind::Char, text, line, col);
            }
            Some(ch) if ch.is_alphabetic() || ch == '_' => {
                let mut name = String::new();
                while let Some(c2) = self.cur() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        name.push(c2);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.cur() == Some('\'') && name.chars().count() == 1 {
                    self.bump();
                    self.push(TokKind::Char, name, line, col);
                } else {
                    self.push(TokKind::Lifetime, name, line, col);
                }
            }
            Some(ch) => {
                // Non-ident char literal like '(' or '0'.
                self.bump();
                if self.cur() == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, ch.to_string(), line, col);
            }
            None => self.push(TokKind::Punct, "'".to_string(), line, col),
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(ch) = self.cur() {
            if ch.is_alphanumeric() || ch == '_' {
                text.push(ch);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }

    /// Loose numeric scan: alphanumerics plus `_`, and `.` only when
    /// followed by a digit (so `0..n` stays three tokens).
    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(ch) = self.cur() {
            let continues = ch.is_ascii_alphanumeric()
                || ch == '_'
                || (ch == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()));
            if !continues {
                break;
            }
            text.push(ch);
            self.bump();
        }
        self.push(TokKind::Num, text, line, col);
    }
}

/// Marks every token inside a `#[cfg(test)]` / `#[test]` item as
/// `in_test`, so passes can skip test-only code.
///
/// An attribute is test-related when its bracket contents mention the
/// ident `test` and either mention `cfg` (`#[cfg(test)]`,
/// `#[cfg(all(test, …))]`) or start with `test` itself (`#[test]`). The
/// marked region runs from the attribute through the item's body: the
/// first `{` … matching `}` (brace-counted over tokens, so braces inside
/// strings or comments cannot confuse it), or through the terminating
/// `;` for brace-less items (`#[cfg(test)] use …;`).
fn mark_test_regions(tokens: &mut [Token]) {
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::Comment)
        .map(|(i, _)| i)
        .collect();
    let mut s = 0;
    while s < sig.len() {
        let i = sig[s];
        let starts_attr =
            tokens[i].is_punct('#') && s + 1 < sig.len() && tokens[sig[s + 1]].is_punct('[');
        if !starts_attr {
            s += 1;
            continue;
        }
        // Find the matching `]`, noting what the attribute mentions.
        let mut depth = 0usize;
        let mut e = s + 1;
        let mut has_test = false;
        let mut has_cfg = false;
        let mut first_ident_is_test = None::<bool>;
        while e < sig.len() {
            let t = &tokens[sig[e]];
            match t.kind {
                TokKind::Punct => match t.text.as_str() {
                    "[" | "(" | "{" => depth += 1,
                    "]" | ")" | "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                },
                TokKind::Ident => {
                    if first_ident_is_test.is_none() {
                        first_ident_is_test = Some(t.text == "test");
                    }
                    if t.text == "test" {
                        has_test = true;
                    } else if t.text == "cfg" {
                        has_cfg = true;
                    }
                }
                _ => {}
            }
            e += 1;
        }
        let is_test_attr = has_test && (has_cfg || first_ident_is_test == Some(true));
        if !is_test_attr {
            s = e + 1;
            continue;
        }
        // Walk forward to the item body: first top-level `{`…`}` pair, or
        // a top-level `;` for brace-less items.
        let mut braces = 0usize;
        let mut b = e + 1;
        let mut entered = false;
        while b < sig.len() {
            let t = &tokens[sig[b]];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        braces += 1;
                        entered = true;
                    }
                    "}" => {
                        braces = braces.saturating_sub(1);
                        if entered && braces == 0 {
                            break;
                        }
                    }
                    ";" if !entered => break,
                    _ => {}
                }
            }
            b += 1;
        }
        let end_tok = if b < sig.len() {
            sig[b]
        } else {
            tokens.len() - 1
        };
        for t in &mut tokens[i..=end_tok] {
            t.in_test = true;
        }
        s = b + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("let x = foo_bar(1, 0x2f);");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
        assert_eq!(toks[2], (TokKind::Punct, "=".into()));
        assert_eq!(toks[3], (TokKind::Ident, "foo_bar".into()));
        assert!(toks.contains(&(TokKind::Num, "1".into())));
        assert!(toks.contains(&(TokKind::Num, "0x2f".into())));
    }

    #[test]
    fn comments_capture_words_without_leaking_idents() {
        let toks = kinds("// a HashMap here\nlet x = 1; /* SystemTime /* nested */ ok */");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, ["let", "x"]);
        let comments: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Comment)
            .map(|(_, s)| s.as_str())
            .collect();
        assert!(comments[0].contains("HashMap"));
        assert!(comments[1].contains("nested"));
    }

    #[test]
    fn strings_swallow_their_contents() {
        let toks = kinds(r##"let s = "unsafe { }"; let r = r#"HashMap "quoted""#;"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(strs, ["unsafe { }", "HashMap \"quoted\""]);
        assert!(!toks.contains(&(TokKind::Ident, "unsafe".into())));
        assert!(!toks.contains(&(TokKind::Ident, "HashMap".into())));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#"let s = "a\"b";"#);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(strs, [r#"a\"b"#]);
    }

    #[test]
    fn char_versus_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; let u = '_'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(chars, ["x", "\\n", "_"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"raw"; let b = b'x'; let c = br#"hash"#;"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(strs, ["raw", "hash"]);
        assert!(toks.contains(&(TokKind::Char, "x".into())));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn helper() { y.unwrap(); }\n}\n\
                   fn live2() {}";
        let toks = lex(src);
        let unwraps: Vec<bool> = toks
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [false, true]);
        assert!(toks.iter().any(|t| t.is_ident("live2") && !t.in_test));
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn live() { b.unwrap(); }";
        let toks = lex(src);
        let unwraps: Vec<bool> = toks
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [true, false]);
    }

    #[test]
    fn cfg_all_test_is_masked_but_other_attrs_are_not() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() { a.unwrap(); } }\n\
                   #[derive(Debug)]\nstruct S { x: u8 }\nfn live() { b.unwrap(); }";
        let toks = lex(src);
        let unwraps: Vec<bool> = toks
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [true, false]);
        assert!(toks.iter().any(|t| t.is_ident("S") && !t.in_test));
    }
}
