//! Lints the actual workspace at HEAD and asserts the `--deny` bar
//! holds: every error/warn finding is covered by a justified
//! `lint-allow.txt` entry and the allowlist itself is sound. This is
//! the same check `scripts/verify.sh` runs via the binary, kept here so
//! `cargo test` alone catches regressions.

use std::path::{Path, PathBuf};

use fdip_analysis::allow::Allowlist;
use fdip_analysis::{lint_workspace, ALLOWLIST_PATH};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_is_lint_clean_under_deny() {
    let root = workspace_root();
    let allow_text =
        std::fs::read_to_string(root.join(ALLOWLIST_PATH)).expect("lint-allow.txt exists");
    let mut allowlist = Allowlist::parse(&allow_text).expect("allowlist parses");
    let outcome = lint_workspace(&root, &mut allowlist).expect("workspace lints");

    assert!(outcome.files_scanned > 50, "scan found the workspace");
    let denied: Vec<String> = outcome.denied().map(|f| f.render()).collect();
    assert!(
        denied.is_empty(),
        "fdip-lint --deny would fail on HEAD:\n{}",
        denied.join("\n")
    );
}

#[test]
fn all_eight_passes_are_registered() {
    let ids: Vec<&str> = fdip_analysis::passes::registry()
        .iter()
        .map(|p| p.id)
        .collect();
    assert_eq!(
        ids,
        vec![
            "determinism",
            "atomics",
            "panic-audit",
            "unsafe-forbid",
            "schema-drift",
            "hot-alloc",
            "lock-discipline",
            "result-drop"
        ]
    );
}

#[test]
fn allowlist_round_trips_and_is_fully_used() {
    let root = workspace_root();
    let allow_text =
        std::fs::read_to_string(root.join(ALLOWLIST_PATH)).expect("lint-allow.txt exists");
    let parsed = Allowlist::parse(&allow_text).expect("allowlist parses");
    let reparsed = Allowlist::parse(&parsed.render()).expect("rendered allowlist parses");
    // Render drops comments, so line numbers shift; the content fields
    // must round-trip exactly.
    let content = |a: &Allowlist| -> Vec<(String, String, String, String)> {
        a.entries
            .iter()
            .map(|e| {
                (
                    e.pass.clone(),
                    e.file.clone(),
                    e.needle.clone(),
                    e.justification.clone(),
                )
            })
            .collect()
    };
    assert_eq!(content(&parsed), content(&reparsed));
    assert!(
        parsed.entries.iter().all(|e| !e.justification.is_empty()),
        "every checked-in entry must carry a justification"
    );

    // Linting marks every entry used — the apply pass reports stale
    // entries as warnings, which the clean-tree test above would catch,
    // but assert directly for a clearer failure.
    let mut allowlist = parsed;
    lint_workspace(&root, &mut allowlist).expect("workspace lints");
    let stale: Vec<&str> = allowlist
        .entries
        .iter()
        .filter(|e| !e.used)
        .map(|e| e.needle.as_str())
        .collect();
    assert!(stale.is_empty(), "stale allowlist entries: {stale:?}");
}
