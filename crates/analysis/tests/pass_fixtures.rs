//! Fixture-driven pass tests: each file under `tests/fixtures/` is a
//! deliberately violating (or deliberately clean) source that the
//! workspace scan itself skips (`fixtures` is in `SKIP_DIRS`). Scoping
//! is path-based, so each fixture is lexed from disk and then assigned
//! an in-scope synthetic path.

use std::path::Path;

use fdip_analysis::passes::{registry, PassCtx, SourceFile};
use fdip_analysis::report::{Finding, Severity};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn run_pass_on(pass_id: &str, path: &str, source: &str, metrics_doc: &str) -> Vec<Finding> {
    let ctx = PassCtx {
        metrics_doc: metrics_doc.to_string(),
        serve_doc: String::new(),
    };
    let src = SourceFile::new(path, source);
    let mut out = Vec::new();
    let passes = registry();
    let pass = passes
        .iter()
        .find(|p| p.id == pass_id)
        .unwrap_or_else(|| panic!("no pass named {pass_id}"));
    (pass.run)(&ctx, &src, &mut out);
    out
}

#[test]
fn determinism_fixture_flags_every_hazard() {
    let hits = run_pass_on(
        "determinism",
        "crates/core/src/sim.rs",
        &fixture("determinism_bad.rs"),
        "",
    );
    let needles: Vec<&str> = hits.iter().map(|f| f.needle.as_str()).collect();
    for expected in [
        "HashMap",
        "HashSet",
        "Instant",
        "SystemTime",
        "thread::current",
        "thread_rng",
        "from_entropy",
    ] {
        assert!(
            needles.contains(&expected),
            "missing {expected}: {needles:?}"
        );
    }
    assert!(hits.iter().all(|f| f.severity == Severity::Error));
}

#[test]
fn determinism_fixture_clean_version_passes() {
    let hits = run_pass_on(
        "determinism",
        "crates/core/src/sim.rs",
        &fixture("determinism_good.rs"),
        "",
    );
    assert!(hits.is_empty(), "clean fixture flagged: {hits:?}");
}

#[test]
fn determinism_is_scoped_to_result_crates() {
    // The same hazards in an out-of-scope crate are not findings.
    let hits = run_pass_on(
        "determinism",
        "crates/telemetry/src/manifest.rs",
        &fixture("determinism_bad.rs"),
        "",
    );
    assert!(hits.is_empty());
}

#[test]
fn atomics_fixture_flags_relaxed_only_in_exec() {
    let bad = fixture("atomics_bad.rs");
    let hits = run_pass_on("atomics", "crates/exec/src/lib.rs", &bad, "");
    assert_eq!(hits.len(), 2);
    assert!(hits.iter().all(|f| f.needle == "Ordering::Relaxed"));

    let good = fixture("atomics_good.rs");
    assert!(run_pass_on("atomics", "crates/exec/src/lib.rs", &good, "").is_empty());
    // Out of scope: Relaxed elsewhere is not this pass's business.
    assert!(run_pass_on("atomics", "crates/core/src/sim.rs", &bad, "").is_empty());
}

#[test]
fn panic_audit_fixture_flags_hot_path_panics() {
    let hits = run_pass_on(
        "panic-audit",
        "crates/core/src/sim.rs",
        &fixture("panic_bad.rs"),
        "",
    );
    let errors: Vec<&str> = hits
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(|f| f.needle.as_str())
        .collect();
    assert_eq!(errors, vec!["unwrap", "expect", "panic!", "unreachable!"]);
    // Indexing inside the loop is advisory only.
    let notes: Vec<&Finding> = hits
        .iter()
        .filter(|f| f.severity == Severity::Note)
        .collect();
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].needle, "index");
    assert!(hits
        .iter()
        .all(|f| !f.denies() || f.severity >= Severity::Warn));
}

#[test]
fn panic_audit_fixture_clean_version_passes() {
    let hits = run_pass_on(
        "panic-audit",
        "crates/core/src/sim.rs",
        &fixture("panic_good.rs"),
        "",
    );
    assert!(hits.is_empty(), "clean fixture flagged: {hits:?}");
}

#[test]
fn panic_audit_is_scoped_to_hot_path_files() {
    let hits = run_pass_on(
        "panic-audit",
        "crates/core/src/config.rs",
        &fixture("panic_bad.rs"),
        "",
    );
    assert!(hits.is_empty());
}

#[test]
fn unsafe_fixture_distinguishes_safety_comment() {
    // Scope is everywhere — even a vendored or test path.
    let hits = run_pass_on(
        "unsafe-forbid",
        "vendor/rand/src/lib.rs",
        &fixture("unsafe_bad.rs"),
        "",
    );
    let needles: Vec<&str> = hits.iter().map(|f| f.needle.as_str()).collect();
    assert_eq!(needles, vec!["unsafe-missing-safety-comment", "unsafe"]);
}

#[test]
fn schema_drift_fixture_flags_undocumented_keys() {
    let doc = "| `documented_key` | int | a documented key |";
    let hits = run_pass_on(
        "schema-drift",
        "crates/telemetry/src/manifest.rs",
        &fixture("schema_drift.rs"),
        doc,
    );
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].needle, "undocumented_key");
    // Vendored code does not emit schema documents.
    assert!(run_pass_on(
        "schema-drift",
        "vendor/criterion/src/lib.rs",
        &fixture("schema_drift.rs"),
        doc,
    )
    .is_empty());
}

#[test]
fn golden_diagnostic_rendering() {
    let hits = run_pass_on(
        "atomics",
        "crates/exec/src/lib.rs",
        &fixture("atomics_bad.rs"),
        "",
    );
    let rendered: Vec<String> = hits.iter().map(Finding::render).collect();
    assert_eq!(
        rendered,
        vec![
            "crates/exec/src/lib.rs:5:20: [atomics] error: Relaxed ordering on a cross-thread \
             atomic: anything guarding cross-thread hand-off needs Acquire/Release; a pure \
             telemetry tally may be allowlisted",
            "crates/exec/src/lib.rs:6:20: [atomics] error: Relaxed ordering on a cross-thread \
             atomic: anything guarding cross-thread hand-off needs Acquire/Release; a pure \
             telemetry tally may be allowlisted",
        ]
    );
}

#[test]
fn hot_alloc_fixture_flags_every_loop_reachable_allocation() {
    let hits = run_pass_on(
        "hot-alloc",
        "crates/core/src/sim.rs",
        &fixture("hot_alloc_bad.rs"),
        "",
    );
    let found: Vec<(&str, &str)> = hits.iter().map(|f| (f.kind, f.needle.as_str())).collect();
    assert_eq!(
        found,
        vec![
            ("alloc-in-loop", "Vec::new"),
            ("alloc-in-loop", "format!"),
            ("alloc-in-loop", "to_vec"),
            ("alloc-in-hot-fn", "String::from"),
        ],
        "{hits:?}"
    );
    assert!(hits.iter().all(|f| f.severity == Severity::Warn));
}

#[test]
fn hot_alloc_fixture_clean_version_passes() {
    let hits = run_pass_on(
        "hot-alloc",
        "crates/core/src/sim.rs",
        &fixture("hot_alloc_good.rs"),
        "",
    );
    assert!(hits.is_empty(), "clean fixture flagged: {hits:?}");
}

#[test]
fn lock_fixture_flags_all_three_hazards() {
    let hits = run_pass_on(
        "lock-discipline",
        "crates/serve/src/scheduler.rs",
        &fixture("lock_bad.rs"),
        "",
    );
    let kinds: Vec<&str> = hits.iter().map(|f| f.kind).collect();
    assert_eq!(
        kinds,
        vec![
            "wait-outside-loop",
            "guard-across-blocking-call",
            "lock-order-inversion"
        ],
        "{hits:?}"
    );
    // The inversion names both mutexes involved.
    assert_eq!(hits[2].needle, "slots/journal");
}

#[test]
fn lock_fixture_clean_version_passes() {
    let hits = run_pass_on(
        "lock-discipline",
        "crates/serve/src/scheduler.rs",
        &fixture("lock_good.rs"),
        "",
    );
    assert!(hits.is_empty(), "clean fixture flagged: {hits:?}");
}

#[test]
fn result_drop_fixture_flags_both_discard_shapes() {
    let hits = run_pass_on(
        "result-drop",
        "crates/serve/src/lib.rs",
        &fixture("result_drop_bad.rs"),
        "",
    );
    let found: Vec<(&str, &str)> = hits.iter().map(|f| (f.kind, f.needle.as_str())).collect();
    assert_eq!(
        found,
        vec![
            ("discarded-result", "send"),
            ("underscore-bound-result", "send"),
            ("discarded-result", "persist"),
        ],
        "{hits:?}"
    );
}

#[test]
fn result_drop_fixture_clean_version_passes() {
    let hits = run_pass_on(
        "result-drop",
        "crates/serve/src/lib.rs",
        &fixture("result_drop_good.rs"),
        "",
    );
    assert!(hits.is_empty(), "clean fixture flagged: {hits:?}");
}
