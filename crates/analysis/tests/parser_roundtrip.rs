//! Parser round-trip over the real workspace: every `.rs` file the
//! linter scans must parse into a tree that (a) consumed every
//! significant token exactly once, (b) has properly nested spans with
//! monotone siblings, and (c) carries `#[cfg(test)]` masking over from
//! the lexer. The parser is *tolerant* — it never rejects input — so
//! "parses" here means the structural invariants hold, which is what
//! the syntax-aware passes rely on.

use std::path::{Path, PathBuf};

use fdip_analysis::ast::{parse, NodeKind};
use fdip_analysis::collect_files;
use fdip_analysis::lexer::lex;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn every_workspace_source_file_round_trips() {
    let root = workspace_root();
    let files = collect_files(&root).expect("workspace scan");
    assert!(files.len() > 50, "scan found the workspace");
    let mut fns = 0usize;
    let mut loops = 0usize;
    let mut calls = 0usize;
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel)).expect("file reads");
        let tokens = lex(&text);
        let ast = parse(&tokens);
        ast.validate()
            .unwrap_or_else(|e| panic!("{rel}: parser invariant broken: {e}"));
        for id in ast.walk() {
            match &ast.nodes[id].kind {
                NodeKind::Fn { .. } => fns += 1,
                NodeKind::Loop { .. } => loops += 1,
                NodeKind::Call { .. } | NodeKind::MethodCall { .. } => calls += 1,
                _ => {}
            }
        }
    }
    // The tree is structural, not decorative: the workspace has
    // thousands of fns/calls and hundreds of loops, and a parser bug
    // that silently drops them would pass validate() alone.
    assert!(fns > 1_000, "only {fns} fn items recognized");
    assert!(loops > 300, "only {loops} loops recognized");
    assert!(calls > 10_000, "only {calls} calls recognized");
}

#[test]
fn fixture_files_round_trip_too() {
    // The lint fixtures are skipped by collect_files (deliberately
    // violating code) but must still parse cleanly.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut n = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path).expect("fixture reads");
            let ast = parse(&lex(&text));
            ast.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            n += 1;
        }
    }
    assert!(n >= 10, "expected the fixture corpus, found {n} files");
}
