// Fixture: one documented and one undocumented emitted JSON key.
fn emit(j: Json) -> Json {
    j.with("documented_key", 1u64)
        .with("undocumented_key", 2u64)
}
