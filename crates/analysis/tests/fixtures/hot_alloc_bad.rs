//! Fixture: heap allocation reachable inside hot-path loops. Every
//! allocating construct here is a `hot-alloc` finding when the file is
//! scanned under a hot-path name.

fn fill(lines: &[u64], n: usize) -> u64 {
    let mut acc = 0u64;
    for &line in lines {
        let mut scratch = Vec::new(); // alloc-in-loop: Vec::new
        scratch.push(line);
        let key = format!("{line:x}"); // alloc-in-loop: format!
        let copy = lines.to_vec(); // alloc-in-loop: to_vec
        acc += scratch.len() as u64 + key.len() as u64 + copy.len() as u64;
    }
    let mut i = 0;
    while i < n {
        acc += helper(i); // makes `helper` hot
        i += 1;
    }
    acc
}

fn helper(i: usize) -> u64 {
    let s = String::from("hot"); // alloc-in-hot-fn: String::from
    (s.len() + i) as u64
}
