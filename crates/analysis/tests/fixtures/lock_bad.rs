//! Fixture: the three lock-discipline hazards — a wait without a
//! predicate re-check loop, a guard held across a blocking send, and
//! an inconsistent two-mutex acquisition order.

fn waits_without_recheck(m: &Mutex<bool>, cv: &Condvar) {
    let started = m.lock().expect("poisoned");
    let _woken = cv.wait(started).expect("wait"); // wait-outside-loop
}

fn sends_under_guard(m: &Mutex<u8>, tx: &Sender<u8>) {
    let st = m.lock().expect("poisoned");
    tx.send(*st).expect("send"); // guard-across-blocking-call
}

fn nests_ab(s: &Shared) {
    let slots = s.slots.lock().unwrap();
    let journal = s.journal.lock().unwrap();
    use2(slots, journal);
}

fn nests_ba(s: &Shared) {
    let journal = s.journal.lock().unwrap();
    let slots = s.slots.lock().unwrap(); // lock-order-inversion
    use2(slots, journal);
}
