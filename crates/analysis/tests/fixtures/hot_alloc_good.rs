//! Fixture: the same shapes with buffers hoisted out of the loop and
//! reused — clean under `hot-alloc`.

fn fill(lines: &[u64], n: usize) -> u64 {
    let mut scratch: Vec<u64> = Vec::with_capacity(lines.len());
    let mut key = String::with_capacity(16);
    let mut acc = 0u64;
    for &line in lines {
        scratch.clear();
        scratch.push(line);
        key.clear();
        acc += scratch.len() as u64 + key.len() as u64;
    }
    let mut i = 0;
    while i < n {
        acc += helper(i);
        i += 1;
    }
    acc
}

fn helper(i: usize) -> u64 {
    (i + 1) as u64
}
