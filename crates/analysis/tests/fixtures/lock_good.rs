//! Fixture: the disciplined versions of the `lock_bad.rs` shapes —
//! clean under `lock-discipline`.

fn waits_with_recheck(m: &Mutex<bool>, cv: &Condvar) {
    let mut started = m.lock().expect("poisoned");
    while !*started {
        started = cv.wait(started).expect("wait");
    }
}

fn sends_after_release(m: &Mutex<u8>, tx: &Sender<u8>) {
    let st = m.lock().expect("poisoned");
    let v = *st;
    drop(st);
    tx.send(v).expect("send");
}

fn nests_consistently(s: &Shared) {
    let slots = s.slots.lock().unwrap();
    let journal = s.journal.lock().unwrap();
    use2(slots, journal);
}

fn nests_consistently_again(s: &Shared) {
    let slots = s.slots.lock().unwrap();
    let journal = s.journal.lock().unwrap();
    use2(slots, journal);
}
