// Fixture: deterministic equivalents that must not be flagged.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

fn good(seed: u64) {
    let m: BTreeMap<u64, u64> = BTreeMap::new();
    let s: BTreeSet<u64> = BTreeSet::new();
    let mut rng = SmallRng::seed_from_u64(seed);
}

#[cfg(test)]
mod tests {
    // Test code may use wall clocks and hash maps freely.
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let _t0 = Instant::now();
        let _m: HashMap<u8, u8> = HashMap::new();
    }
}
