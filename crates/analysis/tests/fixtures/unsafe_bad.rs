// Fixture: unsafe without a SAFETY comment, and unsafe with one (the
// latter still requires an allowlist entry — the pass reports both,
// with different needles).
fn no_comment(p: *const u64) -> u64 {
    unsafe { *p }
}

fn with_comment(p: *const u64) -> u64 {
    // SAFETY: caller guarantees p is valid and aligned.
    unsafe { *p }
}
