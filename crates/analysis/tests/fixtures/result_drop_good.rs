//! Fixture: every `Result` handled, propagated, or explicitly
//! inspected — clean under `result-drop`.

fn persist(dst: &str) -> Result<(), std::io::Error> {
    std::fs::rename("staging", dst)?;
    Ok(())
}

fn f(tx: &Sender<u8>) -> Result<(), SendError<u8>> {
    tx.send(1)?;
    let r = tx.send(2);
    r?;
    if tx.send(3).is_err() {
        retry();
    }
    tx.send(4).ok();
    persist("out")?;
    Ok(())
}

fn retry() {}
