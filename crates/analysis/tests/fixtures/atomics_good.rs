// Fixture: properly paired Release/Acquire orderings.
use std::sync::atomic::{AtomicU64, Ordering};

fn good(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Release);
    let _ = c.load(Ordering::Acquire);
    c.store(0, Ordering::SeqCst);
}
