// Fixture: infallible patterns, plus panics confined to test code.
fn good(v: Vec<u64>, o: Option<u64>) -> u64 {
    let Some(a) = o else { return 0 };
    let mut sum = a;
    for x in &v {
        sum += x;
    }
    // Indexing outside a loop is not even a note.
    sum += v.first().copied().unwrap_or(0);
    sum
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
