// Fixture: Relaxed ordering on executor atomics.
use std::sync::atomic::{AtomicU64, Ordering};

fn bad(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
    let _ = c.load(Ordering::Relaxed);
}
