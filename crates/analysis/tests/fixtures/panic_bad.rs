// Fixture: panicking constructs on the hot path.
fn bad(v: Vec<u64>, o: Option<u64>) -> u64 {
    let a = o.unwrap();
    let b = o.expect("present");
    if a == 0 {
        panic!("zero");
    }
    if b == 1 {
        unreachable!("one");
    }
    let mut sum = 0;
    for i in 0..v.len() {
        sum += v[i];
    }
    sum
}
