//! Fixture: `Result`s silently discarded in non-test code — each of
//! the two `result-drop` shapes plus a local `-> Result` fn resolved
//! by signature.

fn persist(dst: &str) -> Result<(), std::io::Error> {
    std::fs::rename("staging", dst)?;
    Ok(())
}

fn f(tx: &Sender<u8>) {
    tx.send(1); // discarded-result
    let _ = tx.send(2); // underscore-bound-result
    persist("out"); // discarded-result (local signature)
}
