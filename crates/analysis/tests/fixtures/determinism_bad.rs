// Fixture: every construct the determinism pass must flag.
use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use std::time::SystemTime;

fn bad() {
    let m: HashMap<u64, u64> = HashMap::new();
    let s: HashSet<u64> = HashSet::new();
    let t0 = Instant::now();
    let now = SystemTime::now();
    let id = std::thread::current().id();
    let mut rng = rand::thread_rng();
    let other = SmallRng::from_entropy();
}
