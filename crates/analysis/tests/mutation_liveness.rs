//! Detection liveness: a lint pass that silently stops firing is worse
//! than no pass at all — the workspace looks clean while the invariant
//! rots. Each registered pass therefore carries one canonical bad
//! construct ([`fdip_analysis::mutate`]); splicing it into its target
//! file (in memory only) must produce at least one *denying* finding
//! from that pass that the real checked-in allowlist does not excuse.

use std::path::{Path, PathBuf};

use fdip_analysis::allow::Allowlist;
use fdip_analysis::{lint_workspace_with, passes, ALLOWLIST_PATH};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn every_pass_fires_on_its_injected_mutation() {
    let root = workspace_root();
    let allow_text =
        std::fs::read_to_string(root.join(ALLOWLIST_PATH)).expect("lint-allow.txt exists");
    for pass in passes::registry() {
        // Fresh allowlist per run: claims are stateful.
        let mut allowlist = Allowlist::parse(&allow_text).expect("allowlist parses");
        let outcome = lint_workspace_with(&root, &mut allowlist, Some(pass.id))
            .unwrap_or_else(|e| panic!("linting with `{}` injected: {e}", pass.id));
        let fired = outcome.denied().filter(|f| f.pass == pass.id).count();
        assert!(
            fired > 0,
            "pass `{}` did not fire on its own injected mutation — it is dead",
            pass.id
        );
        // The splice is synthetic and clearly named.
        assert!(
            outcome
                .denied()
                .filter(|f| f.pass == pass.id)
                .any(|f| f.line > 0),
            "mutation finding for `{}` lost its location",
            pass.id
        );
    }
}

#[test]
fn injection_is_memory_only() {
    // Splicing must never touch the tree: lint the workspace with a
    // mutation, then re-read the target file and confirm the marker is
    // absent on disk.
    let root = workspace_root();
    let allow_text =
        std::fs::read_to_string(root.join(ALLOWLIST_PATH)).expect("lint-allow.txt exists");
    let m = fdip_analysis::mutate::for_pass("hot-alloc").expect("hot-alloc mutation exists");
    let mut allowlist = Allowlist::parse(&allow_text).expect("allowlist parses");
    lint_workspace_with(&root, &mut allowlist, Some("hot-alloc")).expect("workspace lints");
    let on_disk = std::fs::read_to_string(root.join(m.file)).expect("target file reads");
    assert!(
        !on_disk.contains("__lint_mutation"),
        "mutation splice leaked to disk in {}",
        m.file
    );
}

#[test]
fn unknown_pass_injection_is_rejected() {
    let root = workspace_root();
    let mut allowlist = Allowlist::parse("").expect("empty allowlist parses");
    let err = lint_workspace_with(&root, &mut allowlist, Some("no-such-pass"))
        .expect_err("unknown pass must not lint");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
