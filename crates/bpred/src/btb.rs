//! The branch target buffer (BTB).
//!
//! Set-associative, indexed at 16-byte block granularity (§IV-B): every
//! branch in the same 16-byte block maps to the same set, and each way
//! holds one branch (exact-PC tag). Capacity is swept 1K–32K entries by
//! the paper's sensitivity studies (Fig. 7, Fig. 11); allocation policy
//! (taken-only vs all-branch) is chosen by the history-management policy
//! (Table V) and BTB prefetching may insert pre-decoded branches.

use fdip_types::{Addr, BranchKind};

/// BTB geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BtbConfig {
    /// Total entry count (must be a multiple of `assoc`, power-of-two
    /// sets).
    pub entries: usize,
    /// Ways per set.
    pub assoc: usize,
}

impl Default for BtbConfig {
    /// The paper's baseline: 8K entries, 4-way.
    fn default() -> Self {
        BtbConfig {
            entries: 8 * 1024,
            assoc: 4,
        }
    }
}

impl BtbConfig {
    /// Creates a config with the given entry count and the baseline
    /// associativity.
    pub fn with_entries(entries: usize) -> Self {
        BtbConfig { entries, assoc: 4 }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries / self.assoc
    }

    /// Estimated storage, using the paper's 7 bytes/branch estimate from
    /// the Exynos M3 data (§VI-D).
    pub fn estimated_bytes(&self) -> usize {
        self.entries * 7
    }
}

/// One BTB entry: a branch's address, kind, and last-seen target.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BtbEntry {
    /// Branch instruction address.
    pub pc: Addr,
    /// Pre-decoded branch kind.
    pub kind: BranchKind,
    /// Most recently observed taken-target.
    pub target: Addr,
}

/// Hit/miss counters.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct BtbStats {
    /// Demand lookups.
    pub lookups: u64,
    /// Demand lookups that hit.
    pub hits: u64,
    /// Entries inserted (allocations, not target updates).
    pub allocs: u64,
}

#[derive(Copy, Clone, Debug)]
struct Way {
    entry: BtbEntry,
    /// Higher = more recently used.
    lru: u32,
}

/// A set-associative branch target buffer.
///
/// # Examples
///
/// ```
/// use fdip_bpred::{Btb, BtbConfig};
/// use fdip_types::{Addr, BranchKind};
///
/// let mut btb = Btb::new(BtbConfig::with_entries(1024));
/// let pc = Addr::new(0x1000);
/// assert!(btb.lookup(pc).is_none());
/// btb.insert(pc, BranchKind::CondDirect, Addr::new(0x2000));
/// assert_eq!(btb.lookup(pc).unwrap().target, Addr::new(0x2000));
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    config: BtbConfig,
    sets: Vec<Vec<Way>>,
    stamp: u32,
    stats: BtbStats,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two or `assoc == 0`.
    pub fn new(config: BtbConfig) -> Self {
        assert!(config.assoc > 0, "associativity must be positive");
        let sets = config.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        Btb {
            config,
            sets: vec![Vec::with_capacity(config.assoc); sets],
            stamp: 0,
            stats: BtbStats::default(),
        }
    }

    /// The geometry this BTB was built with.
    pub fn config(&self) -> BtbConfig {
        self.config
    }

    /// Demand hit/miss statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    fn set_index(&self, pc: Addr) -> usize {
        // 16B-block indexing (§IV-B): all branches in a 16-byte block
        // share a set. Mix some higher bits in to avoid striding artifacts.
        let block = pc.raw() / fdip_types::BTB_SET_BYTES;
        let mixed = block ^ (block >> 13);
        (mixed as usize) & (self.sets.len() - 1)
    }

    /// Looks up a branch by exact PC, updating recency and demand stats.
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        self.stats.lookups += 1;
        let set = self.set_index(pc);
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.entry.pc == pc) {
            w.lru = stamp;
            self.stats.hits += 1;
            return Some(w.entry);
        }
        None
    }

    /// Looks up without touching recency or statistics (used by tests and
    /// by occupancy inspection).
    pub fn peek(&self, pc: Addr) -> Option<BtbEntry> {
        let set = self.set_index(pc);
        self.sets[set]
            .iter()
            .find(|w| w.entry.pc == pc)
            .map(|w| w.entry)
    }

    /// Inserts or updates a branch. An existing entry has its target and
    /// kind refreshed (indirect branches keep their last target here);
    /// otherwise the LRU way of the set is replaced.
    pub fn insert(&mut self, pc: Addr, kind: BranchKind, target: Addr) {
        let set = self.set_index(pc);
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = &mut self.sets[set];
        if let Some(w) = ways.iter_mut().find(|w| w.entry.pc == pc) {
            w.entry.target = target;
            w.entry.kind = kind;
            w.lru = stamp;
            return;
        }
        self.stats.allocs += 1;
        let entry = BtbEntry { pc, kind, target };
        if ways.len() < self.config.assoc {
            ways.push(Way { entry, lru: stamp });
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("non-empty set");
        *victim = Way { entry, lru: stamp };
    }

    /// Number of valid entries currently held.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb(entries: usize) -> Btb {
        Btb::new(BtbConfig::with_entries(entries))
    }

    #[test]
    fn miss_then_hit() {
        let mut b = btb(64);
        let pc = Addr::new(0x4000);
        assert!(b.lookup(pc).is_none());
        b.insert(pc, BranchKind::DirectJump, Addr::new(0x8000));
        let e = b.lookup(pc).expect("hit");
        assert_eq!(e.kind, BranchKind::DirectJump);
        assert_eq!(e.target, Addr::new(0x8000));
        assert_eq!(b.stats().lookups, 2);
        assert_eq!(b.stats().hits, 1);
    }

    #[test]
    fn update_refreshes_target_without_allocating() {
        let mut b = btb(64);
        let pc = Addr::new(0x4000);
        b.insert(pc, BranchKind::IndirectJump, Addr::new(0x8000));
        b.insert(pc, BranchKind::IndirectJump, Addr::new(0x9000));
        assert_eq!(b.peek(pc).unwrap().target, Addr::new(0x9000));
        assert_eq!(b.stats().allocs, 1);
        assert_eq!(b.occupancy(), 1);
    }

    #[test]
    fn same_16b_block_shares_a_set() {
        let mut b = btb(64);
        // 4 branches within one 16-byte block plus more from aliasing
        // blocks overflow a 4-way set and evict LRU.
        let base = Addr::new(0x1000);
        for i in 0..4u64 {
            b.insert(base + i * 4, BranchKind::CondDirect, Addr::new(0x2000));
        }
        assert_eq!(b.occupancy(), 4);
        for i in 0..4u64 {
            assert!(b.peek(base + i * 4).is_some());
        }
    }

    #[test]
    fn lru_eviction_prefers_least_recent() {
        let cfg = BtbConfig {
            entries: 8,
            assoc: 4,
        };
        let mut b = Btb::new(cfg);
        // All in one 16B block -> one set; insert 4 then touch the first.
        let pcs: Vec<Addr> = (0..4).map(|i| Addr::new(0x1000 + i * 4)).collect();
        for &pc in &pcs {
            b.insert(pc, BranchKind::CondDirect, Addr::new(0x2000));
        }
        b.lookup(pcs[0]);
        // A 5th branch in the same set must evict pcs[1] (the LRU).
        // Find an aliasing address: same set index.
        let mut alias = Addr::new(0x1000 + 16);
        while b.set_index(alias) != b.set_index(pcs[0]) {
            alias = alias + 16;
        }
        b.insert(alias, BranchKind::CondDirect, Addr::new(0x3000));
        assert!(b.peek(pcs[0]).is_some(), "recently used survived");
        assert!(b.peek(pcs[1]).is_none(), "LRU evicted");
        assert!(b.peek(alias).is_some());
    }

    #[test]
    fn capacity_is_respected() {
        let mut b = btb(256);
        for i in 0..10_000u64 {
            b.insert(
                Addr::new(0x1_0000 + i * 4),
                BranchKind::CondDirect,
                Addr::new(0x2000),
            );
        }
        assert!(b.occupancy() <= 256);
    }

    #[test]
    fn bigger_btb_retains_more() {
        let mut small = btb(64);
        let mut large = btb(4096);
        let branches: Vec<Addr> = (0..1000u64).map(|i| Addr::new(0x1_0000 + i * 20)).collect();
        for &pc in &branches {
            small.insert(pc, BranchKind::CondDirect, Addr::new(0x2000));
            large.insert(pc, BranchKind::CondDirect, Addr::new(0x2000));
        }
        let small_hits = branches
            .iter()
            .filter(|&&pc| small.peek(pc).is_some())
            .count();
        let large_hits = branches
            .iter()
            .filter(|&&pc| large.peek(pc).is_some())
            .count();
        assert!(large_hits > small_hits * 4, "{large_hits} vs {small_hits}");
    }

    #[test]
    fn estimated_bytes_uses_paper_constant() {
        assert_eq!(BtbConfig::with_entries(4096).estimated_bytes(), 28 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = Btb::new(BtbConfig {
            entries: 12,
            assoc: 4,
        });
    }
}
