//! The branch-history management policies of the paper's Table V.
//!
//! The paper's §III-A/§VI-C contrast taken-only **target history** (THR,
//! the commercial choice) against **direction history** variants that
//! differ in (a) whether BTB-miss not-taken branches trigger a history
//! fixup (a frontend flush), and (b) whether not-taken branches are
//! allocated in the BTB so they can be detected at all.
//!
//! Table V itself did not survive PDF extraction; the six policies are
//! reconstructed from the prose (see `DESIGN.md` §4):
//!
//! | policy | history | fixup on BTB-miss NT | BTB allocation |
//! |--------|---------|----------------------|----------------|
//! | THR    | target  | not needed           | taken only     |
//! | Ideal  | direction (oracle detection, 280-bit) | not needed | taken only |
//! | GHR0   | direction | no                 | taken only     |
//! | GHR1   | direction | no                 | all branches   |
//! | GHR2   | direction | yes (frontend flush) | taken only   |
//! | GHR3   | direction | yes (frontend flush) | all branches — the academic default |

use std::fmt;

/// A history-management policy (one column group of Fig. 8).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum HistoryPolicy {
    /// Taken-only branch target history (the paper's proposal).
    Thr,
    /// Idealized direction history: every branch is detected at
    /// prediction time regardless of BTB contents (upper bound).
    Ideal,
    /// Direction history, no fixup, taken-only BTB allocation.
    Ghr0,
    /// Direction history, no fixup, all-branch BTB allocation.
    Ghr1,
    /// Direction history, fixup via frontend flush, taken-only BTB
    /// allocation.
    Ghr2,
    /// Direction history, fixup via frontend flush, all-branch BTB
    /// allocation (used with basic-block BTBs in academia).
    Ghr3,
}

impl HistoryPolicy {
    /// All policies, in the order Fig. 8 reports them.
    pub const ALL: [HistoryPolicy; 6] = [
        HistoryPolicy::Thr,
        HistoryPolicy::Ideal,
        HistoryPolicy::Ghr0,
        HistoryPolicy::Ghr1,
        HistoryPolicy::Ghr2,
        HistoryPolicy::Ghr3,
    ];

    /// Does this policy hash taken-branch targets into the history
    /// (paper Eq. 2–3) rather than per-branch direction bits (Eq. 1)?
    pub const fn uses_target_history(self) -> bool {
        matches!(self, HistoryPolicy::Thr)
    }

    /// Is branch *detection* idealized (all branches seen at prediction
    /// time, independent of the BTB)?
    pub const fn oracle_detection(self) -> bool {
        matches!(self, HistoryPolicy::Ideal)
    }

    /// Must the frontend flush and repair the history when pre-decode
    /// discovers a BTB-miss not-taken branch?
    pub const fn fixup_not_taken(self) -> bool {
        matches!(self, HistoryPolicy::Ghr2 | HistoryPolicy::Ghr3)
    }

    /// Are not-taken branches allocated into the BTB (so they can be
    /// detected on future predictions)?
    pub const fn allocate_not_taken(self) -> bool {
        matches!(self, HistoryPolicy::Ghr1 | HistoryPolicy::Ghr3)
    }

    /// Display label matching the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            HistoryPolicy::Thr => "THR",
            HistoryPolicy::Ideal => "Ideal",
            HistoryPolicy::Ghr0 => "GHR0",
            HistoryPolicy::Ghr1 => "GHR1",
            HistoryPolicy::Ghr2 => "GHR2",
            HistoryPolicy::Ghr3 => "GHR3",
        }
    }
}

impl fmt::Display for HistoryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_thr_uses_target_history() {
        for p in HistoryPolicy::ALL {
            assert_eq!(p.uses_target_history(), p == HistoryPolicy::Thr);
        }
    }

    #[test]
    fn fixup_and_allocation_matrix() {
        use HistoryPolicy::*;
        assert!(!Thr.fixup_not_taken() && !Thr.allocate_not_taken());
        assert!(!Ideal.fixup_not_taken() && !Ideal.allocate_not_taken());
        assert!(!Ghr0.fixup_not_taken() && !Ghr0.allocate_not_taken());
        assert!(!Ghr1.fixup_not_taken() && Ghr1.allocate_not_taken());
        assert!(Ghr2.fixup_not_taken() && !Ghr2.allocate_not_taken());
        assert!(Ghr3.fixup_not_taken() && Ghr3.allocate_not_taken());
    }

    #[test]
    fn only_ideal_has_oracle_detection() {
        for p in HistoryPolicy::ALL {
            assert_eq!(p.oracle_detection(), p == HistoryPolicy::Ideal);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            HistoryPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 6);
        assert_eq!(HistoryPolicy::Thr.to_string(), "THR");
    }
}
