//! The return address stack (RAS).
//!
//! Calls push their return address at prediction time; returns pop. The
//! RAS is speculative state: the simulator snapshots it into branch
//! checkpoints and restores it on pipeline flushes, so it is a fixed-size
//! `Copy` structure.

use fdip_types::Addr;

/// Maximum RAS depth. Commercial cores use 16–64 entries; generated
/// programs bound call depth well below this.
pub const RAS_DEPTH: usize = 64;

/// A fixed-depth return address stack.
///
/// Overflow wraps (oldest entry is overwritten), underflow returns `None`
/// — both matching hardware behaviour.
///
/// # Examples
///
/// ```
/// use fdip_bpred::Ras;
/// use fdip_types::Addr;
///
/// let mut ras = Ras::new();
/// ras.push(Addr::new(0x1004));
/// let snapshot = ras;              // checkpoint before speculation
/// ras.push(Addr::new(0x2008));
/// assert_eq!(ras.pop(), Some(Addr::new(0x2008)));
/// let ras = snapshot;              // flush: restore
/// assert_eq!(ras.top(), Some(Addr::new(0x1004)));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Ras {
    stack: [Addr; RAS_DEPTH],
    /// Number of live entries (<= RAS_DEPTH).
    len: usize,
    /// Index one past the most recent entry (circular).
    top: usize,
}

impl Default for Ras {
    fn default() -> Self {
        Ras {
            stack: [Addr::NULL; RAS_DEPTH],
            len: 0,
            top: 0,
        }
    }
}

impl Ras {
    /// Creates an empty RAS.
    pub fn new() -> Self {
        Ras::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no return address is available.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a return address (called for every predicted call).
    pub fn push(&mut self, ra: Addr) {
        self.stack[self.top] = ra;
        self.top = (self.top + 1) % RAS_DEPTH;
        self.len = (self.len + 1).min(RAS_DEPTH);
    }

    /// Pops the most recent return address (called for every predicted
    /// return). Returns `None` on underflow.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.len == 0 {
            return None;
        }
        self.top = (self.top + RAS_DEPTH - 1) % RAS_DEPTH;
        self.len -= 1;
        Some(self.stack[self.top])
    }

    /// Peeks at the most recent return address without popping.
    pub fn top(&self) -> Option<Addr> {
        if self.len == 0 {
            return None;
        }
        Some(self.stack[(self.top + RAS_DEPTH - 1) % RAS_DEPTH])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u64) -> Addr {
        Addr::new(x)
    }

    #[test]
    fn lifo_order() {
        let mut r = Ras::new();
        r.push(a(1));
        r.push(a(2));
        r.push(a(3));
        assert_eq!(r.pop(), Some(a(3)));
        assert_eq!(r.pop(), Some(a(2)));
        assert_eq!(r.pop(), Some(a(1)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn underflow_is_none() {
        let mut r = Ras::new();
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
        assert_eq!(r.top(), None);
    }

    #[test]
    fn overflow_wraps_keeping_most_recent() {
        let mut r = Ras::new();
        for i in 0..RAS_DEPTH as u64 + 10 {
            r.push(a(i));
        }
        assert_eq!(r.len(), RAS_DEPTH);
        // The most recent RAS_DEPTH pushes survive, newest first.
        for i in (10..RAS_DEPTH as u64 + 10).rev() {
            assert_eq!(r.pop(), Some(a(i)));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn top_does_not_pop() {
        let mut r = Ras::new();
        r.push(a(7));
        assert_eq!(r.top(), Some(a(7)));
        assert_eq!(r.len(), 1);
        assert_eq!(r.pop(), Some(a(7)));
    }

    #[test]
    fn snapshot_restore() {
        let mut r = Ras::new();
        r.push(a(1));
        r.push(a(2));
        let cp = r;
        r.pop();
        r.push(a(9));
        r.push(a(10));
        r = cp;
        assert_eq!(r.pop(), Some(a(2)));
        assert_eq!(r.pop(), Some(a(1)));
    }
}
