//! A TAGE conditional branch direction predictor (Seznec, CBP-5 family).
//!
//! Matches the paper's configuration style (§V): geometric history lengths
//! up to 260 bits, a bimodal base predictor, partially-tagged components
//! with 3-bit counters and 2-bit usefulness, `use_alt_on_na` for weak
//! entries, and periodic usefulness aging. Storage presets scale between
//! the 9KB / 18KB / 36KB points of Fig. 12.
//!
//! History folding is maintained externally via a [`FoldPlan`] (see
//! [`crate::fold`]): TAGE registers three folds per component (index +
//! two tag folds) at construction and reads the speculative
//! [`FoldedHistories`] the simulator passes to every lookup, which is how
//! the frontend can reuse one fold computation for a whole prediction
//! block (paper footnote 1).

use crate::fold::{FoldPlan, FoldedHistories};
use fdip_types::Addr;

/// TAGE geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TageConfig {
    /// Number of tagged components.
    pub num_tables: usize,
    /// log2 entries per tagged component.
    pub entries_log2: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// Shortest history length.
    pub min_hist: u32,
    /// Longest history length (the paper uses 260).
    pub max_hist: u32,
    /// log2 entries of the bimodal base predictor (2-bit counters).
    pub bimodal_log2: u32,
}

impl TageConfig {
    /// The paper's baseline-class predictor (~18KB).
    pub fn kb18() -> Self {
        TageConfig {
            num_tables: 12,
            entries_log2: 9,
            tag_bits: 11,
            min_hist: 4,
            max_hist: 260,
            bimodal_log2: 14,
        }
    }

    /// Half-size predictor (~9KB) for the Fig. 12 sweep.
    pub fn kb9() -> Self {
        TageConfig {
            entries_log2: 8,
            bimodal_log2: 13,
            ..Self::kb18()
        }
    }

    /// Double-size predictor (~36KB) for the Fig. 12 sweep.
    pub fn kb36() -> Self {
        TageConfig {
            entries_log2: 10,
            bimodal_log2: 15,
            ..Self::kb18()
        }
    }

    /// Geometric history length of component `i` (0-based; longest last).
    pub fn history_length(&self, i: usize) -> u32 {
        if self.num_tables == 1 {
            return self.max_hist;
        }
        let ratio = (self.max_hist as f64 / self.min_hist as f64)
            .powf(i as f64 / (self.num_tables - 1) as f64);
        ((self.min_hist as f64 * ratio).round() as u32).clamp(self.min_hist, self.max_hist)
    }

    /// Total storage in bytes (tagged entries: tag + 3-bit ctr + 2-bit u;
    /// bimodal: 2 bits per entry).
    pub fn size_bytes(&self) -> usize {
        let tagged_bits =
            self.num_tables * (1usize << self.entries_log2) * (self.tag_bits as usize + 3 + 2);
        let bimodal_bits = (1usize << self.bimodal_log2) * 2;
        (tagged_bits + bimodal_bits) / 8
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct TageEntry {
    tag: u16,
    /// Signed 3-bit counter in [-4, 3]; >= 0 predicts taken.
    ctr: i8,
    /// 2-bit usefulness.
    u: u8,
}

/// What a TAGE lookup produced; passed back at update time.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct TagePrediction {
    /// Final predicted direction.
    pub taken: bool,
    /// Providing component (None = bimodal).
    pub provider: Option<u8>,
    /// Alternate prediction (next-longest match or bimodal).
    pub alt_taken: bool,
    /// Provider counter was weak (newly allocated).
    pub provider_weak: bool,
}

/// The TAGE predictor.
///
/// # Examples
///
/// ```
/// use fdip_bpred::{FoldPlan, GlobalHistory, Tage, TageConfig};
/// use fdip_types::Addr;
///
/// let mut plan = FoldPlan::new();
/// let mut tage = Tage::new(TageConfig::kb18(), &mut plan);
/// let hist = GlobalHistory::new();
/// let folds = plan.initial();
/// let pc = Addr::new(0x1000);
/// let pred = tage.predict(pc, &folds);
/// tage.update(pc, &folds, true, pred);
/// ```
#[derive(Clone, Debug)]
pub struct Tage {
    config: TageConfig,
    bimodal: Vec<u8>,
    tables: Vec<Vec<TageEntry>>,
    hist_lens: Vec<u32>,
    /// First fold slot; component `i` uses slots `base + 3i .. base + 3i + 3`.
    fold_base: usize,
    use_alt_on_na: i8,
    lfsr: u64,
    tick: u32,
}

impl Tage {
    /// Builds the predictor and registers its folds on `plan`.
    pub fn new(config: TageConfig, plan: &mut FoldPlan) -> Self {
        let hist_lens: Vec<u32> = (0..config.num_tables)
            .map(|i| config.history_length(i))
            .collect();
        let fold_base = plan.len();
        for &len in &hist_lens {
            plan.register(len, config.entries_log2);
            plan.register(len, config.tag_bits);
            plan.register(len, config.tag_bits - 1);
        }
        Tage {
            config,
            bimodal: vec![2; 1 << config.bimodal_log2], // weakly taken
            tables: vec![vec![TageEntry::default(); 1 << config.entries_log2]; config.num_tables],
            hist_lens,
            fold_base,
            use_alt_on_na: 0,
            lfsr: 0xace1_ace1_ace1_ace1,
            tick: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> TageConfig {
        self.config
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.config.size_bytes()
    }

    fn bimodal_index(&self, pc: Addr) -> usize {
        ((pc.raw() >> 2) as usize) & ((1 << self.config.bimodal_log2) - 1)
    }

    fn bimodal_taken(&self, pc: Addr) -> bool {
        self.bimodal[self.bimodal_index(pc)] >= 2
    }

    fn index(&self, pc: Addr, folds: &FoldedHistories, i: usize) -> usize {
        let h = pc.raw() >> 2;
        let f = folds.get(self.fold_base + 3 * i) as u64;
        let mixed = h ^ (h >> self.config.entries_log2) ^ f ^ ((i as u64) << 3);
        (mixed as usize) & ((1 << self.config.entries_log2) - 1)
    }

    fn tag(&self, pc: Addr, folds: &FoldedHistories, i: usize) -> u16 {
        let h = pc.raw() >> 2;
        let f1 = folds.get(self.fold_base + 3 * i + 1) as u64;
        let f2 = folds.get(self.fold_base + 3 * i + 2) as u64;
        ((h ^ f1 ^ (f2 << 1)) as u16) & ((1u16 << self.config.tag_bits) - 1)
    }

    /// Finds (provider, alt) component indices for `pc` under `folds`.
    fn matches(&self, pc: Addr, folds: &FoldedHistories) -> (Option<usize>, Option<usize>) {
        let mut provider = None;
        let mut alt = None;
        for i in (0..self.config.num_tables).rev() {
            let e = &self.tables[i][self.index(pc, folds, i)];
            if e.tag == self.tag(pc, folds, i) {
                if provider.is_none() {
                    provider = Some(i);
                } else {
                    alt = Some(i);
                    break;
                }
            }
        }
        (provider, alt)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: Addr, folds: &FoldedHistories) -> TagePrediction {
        let (provider, alt) = self.matches(pc, folds);
        let alt_taken = match alt {
            Some(i) => self.tables[i][self.index(pc, folds, i)].ctr >= 0,
            None => self.bimodal_taken(pc),
        };
        match provider {
            Some(i) => {
                let e = &self.tables[i][self.index(pc, folds, i)];
                let weak = e.ctr == 0 || e.ctr == -1;
                let taken = if weak && self.use_alt_on_na >= 0 {
                    alt_taken
                } else {
                    e.ctr >= 0
                };
                TagePrediction {
                    taken,
                    provider: Some(i as u8),
                    alt_taken,
                    provider_weak: weak,
                }
            }
            None => TagePrediction {
                taken: self.bimodal_taken(pc),
                provider: None,
                alt_taken,
                provider_weak: false,
            },
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64.
        let mut x = self.lfsr;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.lfsr = x;
        x
    }

    /// Trains the predictor with the resolved outcome.
    ///
    /// `folds` must be the folded histories the branch was *predicted*
    /// with (the simulator checkpoints them), and `pred` the value
    /// returned by [`Tage::predict`] at prediction time.
    pub fn update(&mut self, pc: Addr, folds: &FoldedHistories, taken: bool, pred: TagePrediction) {
        let mispredicted = pred.taken != taken;
        let (provider, _alt) = self.matches(pc, folds);

        // use_alt_on_na training on weak providers.
        if pred.provider.is_some() && pred.provider_weak {
            let provider_dir_correct = (pred.taken == taken) != (pred.taken != pred.alt_taken);
            // Simpler: compare both candidate directions to the outcome.
            let alt_correct = pred.alt_taken == taken;
            let _ = provider_dir_correct;
            if alt_correct != (pred.taken == taken) {
                let delta = if alt_correct { 1 } else { -1 };
                self.use_alt_on_na = (self.use_alt_on_na + delta).clamp(-8, 7);
            }
        }

        match provider {
            Some(p) => {
                let idx = self.index(pc, folds, p);
                let e = &mut self.tables[p][idx];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                let provider_taken = e.ctr >= 0;
                if provider_taken != pred.alt_taken {
                    let delta = if provider_taken == taken { 1i8 } else { -1 };
                    e.u = (e.u as i8 + delta).clamp(0, 3) as u8;
                }
            }
            None => {
                let idx = self.bimodal_index(pc);
                let c = &mut self.bimodal[idx];
                *c = (*c as i8 + if taken { 1 } else { -1 }).clamp(0, 3) as u8;
            }
        }

        // Allocate a longer-history entry on misprediction.
        if mispredicted {
            let start = provider.map_or(0, |p| p + 1);
            if start < self.config.num_tables {
                let candidates: Vec<usize> = (start..self.config.num_tables)
                    .filter(|&j| self.tables[j][self.index(pc, folds, j)].u == 0)
                    .collect();
                if candidates.is_empty() {
                    for j in start..self.config.num_tables {
                        let idx = self.index(pc, folds, j);
                        let e = &mut self.tables[j][idx];
                        e.u = e.u.saturating_sub(1);
                    }
                } else {
                    // Prefer shorter histories with geometric bias, as in
                    // Seznec's reference code.
                    let r = self.next_rand();
                    let pick = if candidates.len() > 1 && r & 1 == 0 {
                        1
                    } else {
                        0
                    };
                    let j = candidates[pick.min(candidates.len() - 1)];
                    let idx = self.index(pc, folds, j);
                    let tag = self.tag(pc, folds, j);
                    self.tables[j][idx] = TageEntry {
                        tag,
                        ctr: if taken { 0 } else { -1 },
                        u: 0,
                    };
                }
            }
        }

        // Periodic usefulness aging.
        self.tick = self.tick.wrapping_add(1);
        if self.tick.is_multiple_of(1 << 18) {
            for t in &mut self.tables {
                for e in t.iter_mut() {
                    e.u >>= 1;
                }
            }
        }
    }

    /// Geometric history lengths of the tagged components.
    pub fn history_lengths(&self) -> &[u32] {
        &self.hist_lens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::GlobalHistory;

    fn setup(cfg: TageConfig) -> (Tage, FoldPlan) {
        let mut plan = FoldPlan::new();
        let tage = Tage::new(cfg, &mut plan);
        (tage, plan)
    }

    /// Train/predict over a synthetic branch whose direction is a pure
    /// function of the last `n` history bits; TAGE must learn it.
    fn accuracy_on_history_function(hist_bits: u32, iters: usize) -> f64 {
        let (mut tage, plan) = setup(TageConfig::kb18());
        let mut hist = GlobalHistory::new();
        let mut folds = plan.initial();
        let pc = Addr::new(0x1000);
        let mut correct = 0usize;
        let mut lfsr = 0x1357_9bdfu64;
        for i in 0..iters {
            // Outcome = parity of the last `hist_bits` bits.
            let taken = (hist.recent(hist_bits).count_ones() & 1) == 1;
            let pred = tage.predict(pc, &folds);
            if pred.taken == taken && i > iters / 2 {
                correct += 1;
            }
            tage.update(pc, &folds, taken, pred);
            // Also feed some noise branches so histories move.
            lfsr = lfsr.wrapping_mul(6364136223846793005).wrapping_add(7);
            let noise = lfsr >> 63 == 1;
            plan.push(&mut folds, &hist, taken as u64, 1);
            hist.push_bits(taken as u64, 1);
            plan.push(&mut folds, &hist, noise as u64, 1);
            hist.push_bits(noise as u64, 1);
        }
        correct as f64 / (iters - iters / 2) as f64
    }

    #[test]
    fn learns_history_correlated_branch() {
        let acc = accuracy_on_history_function(4, 20_000);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_long_period_loop() {
        // A 40-iteration loop back-edge: TAGE needs a >=40-bit history
        // component to catch the single not-taken per period, which is
        // beyond a 15-bit Gshare but well within TAGE's 260-bit reach.
        let (mut tage, plan) = setup(TageConfig::kb18());
        let mut hist = GlobalHistory::new();
        let mut folds = plan.initial();
        let pc = Addr::new(0x1000);
        let trip = 40usize;
        let iters = 40_000usize;
        let mut correct = 0usize;
        for i in 0..iters {
            let taken = (i % trip) != trip - 1;
            let pred = tage.predict(pc, &folds);
            if pred.taken == taken && i > iters / 2 {
                correct += 1;
            }
            tage.update(pc, &folds, taken, pred);
            plan.push(&mut folds, &hist, taken as u64, 1);
            hist.push_bits(taken as u64, 1);
        }
        let acc = correct as f64 / (iters - iters / 2) as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn always_taken_branch_saturates() {
        let (mut tage, plan) = setup(TageConfig::kb9());
        let folds = plan.initial();
        let pc = Addr::new(0x2000);
        for _ in 0..64 {
            let pred = tage.predict(pc, &folds);
            tage.update(pc, &folds, true, pred);
        }
        assert!(tage.predict(pc, &folds).taken);
    }

    #[test]
    fn history_lengths_are_geometric_and_bounded() {
        let cfg = TageConfig::kb18();
        let lens: Vec<u32> = (0..cfg.num_tables).map(|i| cfg.history_length(i)).collect();
        assert_eq!(lens[0], cfg.min_hist);
        assert_eq!(*lens.last().unwrap(), cfg.max_hist);
        for w in lens.windows(2) {
            assert!(w[0] < w[1], "not increasing: {lens:?}");
        }
    }

    #[test]
    fn size_presets_scale() {
        let s9 = TageConfig::kb9().size_bytes();
        let s18 = TageConfig::kb18().size_bytes();
        let s36 = TageConfig::kb36().size_bytes();
        assert!(s9 < s18 && s18 < s36);
        // ~2x steps.
        assert!((s18 as f64 / s9 as f64) > 1.7);
        assert!((s36 as f64 / s18 as f64) > 1.7);
        // The "18KB" class predictor is within [12, 24] KB.
        assert!((12 * 1024..=24 * 1024).contains(&s18), "{s18}");
    }

    #[test]
    fn different_histories_can_give_different_predictions() {
        let (mut tage, plan) = setup(TageConfig::kb18());
        let pc = Addr::new(0x3000);
        // Train: history ending in 1 -> taken; ending in 0 -> not taken.
        let mut h1 = GlobalHistory::new();
        h1.push_bits(1, 1);
        let f1 = plan.recompute(&h1);
        let h0 = GlobalHistory::new();
        let f0 = plan.recompute(&h0);
        for _ in 0..200 {
            let p1 = tage.predict(pc, &f1);
            tage.update(pc, &f1, true, p1);
            let p0 = tage.predict(pc, &f0);
            tage.update(pc, &f0, false, p0);
        }
        assert!(tage.predict(pc, &f1).taken);
        assert!(!tage.predict(pc, &f0).taken);
    }

    #[test]
    fn deterministic_across_instances() {
        let run = || {
            let (mut tage, plan) = setup(TageConfig::kb9());
            let mut hist = GlobalHistory::new();
            let mut folds = plan.initial();
            let mut outcome_bits = 0u64;
            for i in 0..2000u64 {
                let pc = Addr::new(0x1000 + (i % 37) * 4);
                let taken = (i * 2654435761) % 5 < 2;
                let pred = tage.predict(pc, &folds);
                outcome_bits = outcome_bits.wrapping_mul(3).wrapping_add(pred.taken as u64);
                tage.update(pc, &folds, taken, pred);
                plan.push(&mut folds, &hist, taken as u64, 1);
                hist.push_bits(taken as u64, 1);
            }
            outcome_bits
        };
        assert_eq!(run(), run());
    }
}
