//! A loop predictor (paper §II-A: "Loop predictors also exist to
//! identify loops with their loop iteration counts"), in the style of
//! the loop component of Seznec's TAGE-L.
//!
//! Each entry tracks a conditional branch's iteration count; once the
//! same trip count is confirmed several times, the predictor overrides
//! the direction predictor with perfect exit timing — something global
//! history can only do when the trip count fits in the history window.

use fdip_types::Addr;

/// Loop-predictor geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LoopPredictorConfig {
    /// log2 table entries.
    pub entries_log2: u32,
    /// Confirmations of the same trip count required before the
    /// prediction is used.
    pub confidence_threshold: u8,
    /// Maximum trackable trip count.
    pub max_trip: u16,
}

impl Default for LoopPredictorConfig {
    fn default() -> Self {
        LoopPredictorConfig {
            entries_log2: 7,
            confidence_threshold: 3,
            max_trip: 1024,
        }
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct LoopEntry {
    tag: u16,
    /// Learned iteration count (taken `trip - 1` times, then not taken).
    trip: u16,
    /// Speculative iteration counter (prediction side).
    spec_iter: u16,
    /// Architectural iteration counter (training side).
    arch_iter: u16,
    /// Same-trip confirmations.
    confidence: u8,
    valid: bool,
}

/// Result of a loop-predictor lookup.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LoopPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Entry is confident enough to override the direction predictor.
    pub confident: bool,
}

/// The loop predictor.
///
/// Prediction-side state (`spec_iter`) is speculative; the simulator
/// calls [`LoopPredictor::flush_speculation`] on pipeline flushes, which
/// resynchronises it with the architectural counters.
///
/// # Examples
///
/// ```
/// use fdip_bpred::{LoopPredictor, LoopPredictorConfig};
/// use fdip_types::Addr;
///
/// let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
/// let pc = Addr::new(0x100);
/// // Train a 5-iteration loop (taken 4x, then not-taken) a few times.
/// for _ in 0..5 {
///     for i in 0..5 {
///         lp.update(pc, i < 4);
///     }
/// }
/// assert!(lp.predict(pc).is_some_and(|p| p.confident));
/// ```
#[derive(Clone, Debug)]
pub struct LoopPredictor {
    config: LoopPredictorConfig,
    entries: Vec<LoopEntry>,
}

impl LoopPredictor {
    /// Creates an empty loop predictor.
    pub fn new(config: LoopPredictorConfig) -> Self {
        LoopPredictor {
            config,
            entries: vec![LoopEntry::default(); 1 << config.entries_log2],
        }
    }

    fn index(&self, pc: Addr) -> usize {
        let h = pc.raw() >> 2;
        ((h ^ (h >> self.config.entries_log2 as u64)) as usize)
            & ((1 << self.config.entries_log2) - 1)
    }

    fn tag(&self, pc: Addr) -> u16 {
        ((pc.raw() >> (2 + self.config.entries_log2 as u64)) & 0xffff) as u16
    }

    /// Speculative prediction for the conditional branch at `pc`;
    /// `None` when the branch is not being tracked. Advances the
    /// speculative iteration counter when confident.
    pub fn predict(&mut self, pc: Addr) -> Option<LoopPrediction> {
        let i = self.index(pc);
        let tag = self.tag(pc);
        let threshold = self.config.confidence_threshold;
        let e = &mut self.entries[i];
        if !e.valid || e.tag != tag {
            return None;
        }
        let confident = e.confidence >= threshold;
        let taken = e.spec_iter + 1 < e.trip;
        if confident {
            e.spec_iter = if taken { e.spec_iter + 1 } else { 0 };
        }
        Some(LoopPrediction { taken, confident })
    }

    /// Trains with the resolved outcome of the conditional at `pc`.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        let tag = self.tag(pc);
        let max_trip = self.config.max_trip;
        let e = &mut self.entries[i];
        if !e.valid || e.tag != tag {
            // Allocate only on a not-taken outcome (a loop exit), so the
            // counter phase starts aligned.
            if !taken {
                *e = LoopEntry {
                    tag,
                    trip: 0,
                    spec_iter: 0,
                    arch_iter: 0,
                    confidence: 0,
                    valid: true,
                };
            }
            return;
        }
        if taken {
            e.arch_iter = e.arch_iter.saturating_add(1);
            if e.arch_iter > max_trip {
                // Not a (trackable) loop.
                e.valid = false;
            }
            return;
        }
        // Loop exit: iterations completed = arch_iter + 1.
        let trip = e.arch_iter + 1;
        if e.trip == trip {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.trip = trip;
            e.confidence = 0;
        }
        e.arch_iter = 0;
        e.spec_iter = 0;
    }

    /// Resynchronises speculative counters after a pipeline flush.
    pub fn flush_speculation(&mut self) {
        for e in &mut self.entries {
            e.spec_iter = e.arch_iter;
        }
    }

    /// Storage in bytes (tag 16 + trip 10 + 2×iter 10 + conf 3 + valid
    /// ≈ 50 bits per entry).
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * 50 / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_loop(lp: &mut LoopPredictor, pc: Addr, trip: usize, rounds: usize) {
        for _ in 0..rounds {
            for i in 0..trip {
                lp.update(pc, i + 1 < trip);
            }
        }
    }

    #[test]
    fn learns_fixed_trip_count() {
        let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
        let pc = Addr::new(0x400);
        train_loop(&mut lp, pc, 7, 5);
        // Replay one full loop: 6 taken predictions then 1 not-taken.
        for i in 0..7 {
            let p = lp.predict(pc).expect("tracked");
            assert!(p.confident, "iteration {i}");
            assert_eq!(p.taken, i + 1 < 7, "iteration {i}");
        }
    }

    #[test]
    fn untracked_branch_returns_none() {
        let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
        assert!(lp.predict(Addr::new(0x999)).is_none());
    }

    #[test]
    fn changing_trip_count_resets_confidence() {
        let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
        let pc = Addr::new(0x400);
        train_loop(&mut lp, pc, 5, 6);
        assert!(lp.predict(pc).unwrap().confident);
        lp.flush_speculation();
        // Switch to a different trip count: confidence must drop.
        train_loop(&mut lp, pc, 9, 1);
        lp.flush_speculation();
        assert!(!lp.predict(pc).unwrap().confident);
        // Re-confirm the new count.
        train_loop(&mut lp, pc, 9, 4);
        lp.flush_speculation();
        assert!(lp.predict(pc).unwrap().confident);
    }

    #[test]
    fn giant_loops_are_abandoned() {
        let cfg = LoopPredictorConfig {
            max_trip: 16,
            ..LoopPredictorConfig::default()
        };
        let mut lp = LoopPredictor::new(cfg);
        let pc = Addr::new(0x400);
        // Allocate, then exceed max_trip takens.
        lp.update(pc, false);
        for _ in 0..40 {
            lp.update(pc, true);
        }
        assert!(lp.predict(pc).is_none());
    }

    #[test]
    fn flush_resynchronises_speculation() {
        let mut lp = LoopPredictor::new(LoopPredictorConfig::default());
        let pc = Addr::new(0x400);
        train_loop(&mut lp, pc, 4, 6);
        // Speculate half a loop, then flush: replay must restart clean.
        lp.predict(pc);
        lp.predict(pc);
        lp.flush_speculation();
        for i in 0..4 {
            let p = lp.predict(pc).expect("tracked");
            assert_eq!(p.taken, i + 1 < 4, "iteration {i}");
        }
    }

    #[test]
    fn size_is_small() {
        let lp = LoopPredictor::new(LoopPredictorConfig::default());
        assert!(lp.size_bytes() < 2 * 1024);
    }
}
