//! Incrementally-maintained folded histories.
//!
//! TAGE and ITTAGE index their tables with the global history folded down
//! to the table's index/tag width. Folding hundreds of bits from scratch
//! on every prediction is too slow, so — as in real designs — folded
//! values are maintained *incrementally*: each history push rotates the
//! folded value and patches in the entering and leaving bits.
//!
//! A [`FoldPlan`] is the immutable recipe (which `(length, width)` pairs
//! exist); a [`FoldedHistories`] is the current speculative value of every
//! fold. `FoldedHistories` is `Copy`, so the simulator checkpoints it
//! together with the raw [`GlobalHistory`].
//!
//! `FoldPlan::recompute` derives the folds from scratch and is used by
//! property tests to prove the incremental update equivalent.

use crate::history::GlobalHistory;

/// Maximum number of fold slots a plan may hold (TAGE uses up to
/// 3×16, ITTAGE 2×8).
pub const MAX_FOLDS: usize = 64;

/// One fold recipe: the most recent `len` history bits folded to
/// `out` bits.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FoldSpec {
    /// History length in bits (1..=HISTORY_BITS).
    pub len: u32,
    /// Output width in bits (1..=31).
    pub out: u32,
}

/// Maximum history-shift width (`k`) a push supports. Direction pushes
/// shift by 1 bit, target-hash pushes by 2; the per-spec leave-bit
/// constants are precomputed for both widths.
const MAX_PUSH_K: usize = 2;

/// Precomputed per-spec constants so the hot [`FoldPlan::push`] loop is
/// branchless and division-free: the `% out` destination shift of every
/// bit that leaves a fold's window is resolved at registration time.
#[derive(Copy, Clone, Debug)]
struct FoldPre {
    out: u32,
    mask: u32,
    /// History position of leaving bit `j` for a push of width `k`:
    /// `leave_pos[k-1][j] = len - k + j`.
    leave_pos: [[u32; MAX_PUSH_K]; MAX_PUSH_K],
    /// Matching destination shift inside the fold: `(len - k + j) % out`.
    leave_dst: [[u32; MAX_PUSH_K]; MAX_PUSH_K],
    /// Injection window: `min(len, 64)` low bits of the pushed value.
    inj_mask: u64,
}

/// The set of folds a frontend maintains (immutable after setup).
#[derive(Clone, Debug, Default)]
pub struct FoldPlan {
    specs: Vec<FoldSpec>,
    pre: Vec<FoldPre>,
}

/// Current values of every fold in a [`FoldPlan`].
///
/// Plain `Copy` data for cheap speculative checkpointing.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FoldedHistories {
    vals: [u32; MAX_FOLDS],
    n: usize,
}

impl Default for FoldedHistories {
    fn default() -> Self {
        FoldedHistories {
            vals: [0; MAX_FOLDS],
            n: 0,
        }
    }
}

impl FoldedHistories {
    /// Value of fold slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn get(&self, slot: usize) -> u32 {
        assert!(slot < self.n, "fold slot {slot} out of range {}", self.n);
        self.vals[slot]
    }
}

impl FoldPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FoldPlan::default()
    }

    /// Registers a fold and returns its slot index.
    ///
    /// # Panics
    ///
    /// Panics if the plan is full or the spec is out of range.
    pub fn register(&mut self, len: u32, out: u32) -> usize {
        assert!(self.specs.len() < MAX_FOLDS, "fold plan full");
        assert!(len >= 1 && (len as usize) <= crate::history::HISTORY_BITS);
        assert!((1..=31).contains(&out));
        self.specs.push(FoldSpec { len, out });
        let mut leave_pos = [[0u32; MAX_PUSH_K]; MAX_PUSH_K];
        let mut leave_dst = [[0u32; MAX_PUSH_K]; MAX_PUSH_K];
        for k in 1..=MAX_PUSH_K as u32 {
            for j in 0..k {
                // Pushing k bits means history positions len-k..len-1
                // leave the window (saturated: a width-k push on a
                // shorter fold is never issued).
                let pos = len.saturating_sub(k) + j;
                leave_pos[(k - 1) as usize][j as usize] = pos;
                leave_dst[(k - 1) as usize][j as usize] = pos % out;
            }
        }
        self.pre.push(FoldPre {
            out,
            mask: (1u32 << out) - 1,
            leave_pos,
            leave_dst,
            inj_mask: if len < 64 {
                (1u64 << len) - 1
            } else {
                u64::MAX
            },
        });
        self.specs.len() - 1
    }

    /// Number of registered folds.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` if no folds are registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Initial (all-zero-history) fold values.
    pub fn initial(&self) -> FoldedHistories {
        FoldedHistories {
            vals: [0; MAX_FOLDS],
            n: self.specs.len(),
        }
    }

    /// Applies one history push to every fold.
    ///
    /// Must be called with the history value *before* the corresponding
    /// [`GlobalHistory::push_bits`] call, with the same `inject`/`k`.
    ///
    /// Semantics of a push (matching `GlobalHistory::push_bits`): the
    /// history shifts left by `k` bits and `inject` is XOR-ed into the low
    /// bits (inject may be wider than `k`).
    pub fn push(&self, folds: &mut FoldedHistories, before: &GlobalHistory, inject: u64, k: u32) {
        debug_assert!((1..=MAX_PUSH_K as u32).contains(&k));
        match k {
            1 => self.push_k::<1>(folds, before, inject),
            _ => self.push_k::<2>(folds, before, inject),
        }
    }

    /// Width-monomorphized push body: with `K` fixed the second
    /// leave-bit patch and the rotate compile down to their minimal
    /// forms.
    fn push_k<const K: u32>(
        &self,
        folds: &mut FoldedHistories,
        before: &GlobalHistory,
        inject: u64,
    ) {
        debug_assert_eq!(folds.n, self.specs.len());
        let ki = (K - 1) as usize;
        for (slot, pre) in self.pre.iter().enumerate() {
            let mut v = folds.vals[slot];
            // Remove the bits that will leave the window: positions
            // len-K .. len-1 move to >= len after the shift. Positions
            // and `% out` destinations are precomputed per spec, and the
            // XOR is branchless (bit is 0 or 1).
            v ^= (before.bit(pre.leave_pos[ki][0]) as u32) << pre.leave_dst[ki][0];
            if K == 2 {
                v ^= (before.bit(pre.leave_pos[ki][1]) as u32) << pre.leave_dst[ki][1];
            }
            // Rotate left by K within `out` bits (history positions all
            // grow by K).
            v = ((v << K) | (v >> (pre.out - K))) & pre.mask;
            // XOR in the injected value, itself chunk-folded to `out`
            // bits (it lands at history positions 0..width). Bits of the
            // injection beyond this fold's window length are older than
            // the window and never contribute. The simulator's pushes
            // inject at most 16 bits, so the loop runs 1–2 iterations.
            let mut inj = inject & pre.inj_mask;
            while inj != 0 {
                v ^= (inj as u32) & pre.mask;
                inj >>= pre.out;
            }
            folds.vals[slot] = v;
        }
    }

    /// Recomputes every fold from scratch (reference implementation for
    /// tests and for rebuilding state).
    pub fn recompute(&self, hist: &GlobalHistory) -> FoldedHistories {
        let mut f = self.initial();
        for (slot, spec) in self.specs.iter().enumerate() {
            f.vals[slot] = hist.fold(spec.len, spec.out) as u32;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_types::Addr;

    fn plan() -> FoldPlan {
        let mut p = FoldPlan::new();
        for (len, out) in [
            (4, 9),
            (10, 9),
            (37, 11),
            (64, 11),
            (130, 12),
            (260, 10),
            (9, 9),
        ] {
            p.register(len, out);
        }
        p
    }

    #[test]
    fn register_returns_slots_in_order() {
        let mut p = FoldPlan::new();
        assert_eq!(p.register(10, 9), 0);
        assert_eq!(p.register(20, 9), 1);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn initial_matches_recompute_of_empty() {
        let p = plan();
        let h = GlobalHistory::new();
        assert_eq!(p.initial(), p.recompute(&h));
    }

    #[test]
    fn incremental_direction_pushes_match_recompute() {
        let p = plan();
        let mut h = GlobalHistory::new();
        let mut f = p.initial();
        let mut x = 0x1234_5678_9abc_def0u64;
        for i in 0..600 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bit = (x >> 62) & 1;
            p.push(&mut f, &h, bit, 1);
            h.push_bits(bit, 1);
            if i % 37 == 0 {
                assert_eq!(f, p.recompute(&h), "diverged at push {i}");
            }
        }
        assert_eq!(f, p.recompute(&h));
    }

    #[test]
    fn incremental_target_pushes_match_recompute() {
        let p = plan();
        let mut h = GlobalHistory::new();
        let mut f = p.initial();
        for i in 0u64..500 {
            let hash =
                GlobalHistory::target_hash(Addr::new(0x1000 + i * 4), Addr::new(0x9000 + i * 52));
            p.push(&mut f, &h, hash, 2);
            h.push_bits(hash, 2);
            if i % 29 == 0 {
                assert_eq!(f, p.recompute(&h), "diverged at push {i}");
            }
        }
        assert_eq!(f, p.recompute(&h));
    }

    #[test]
    fn mixed_push_widths_match_recompute() {
        let p = plan();
        let mut h = GlobalHistory::new();
        let mut f = p.initial();
        for i in 0u64..400 {
            let (inject, k) = if i % 3 == 0 {
                (1u64, 1)
            } else {
                (0xbeef ^ i, 2)
            };
            p.push(&mut f, &h, inject, k);
            h.push_bits(inject, k);
        }
        assert_eq!(f, p.recompute(&h));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let p = FoldPlan::new();
        let f = p.initial();
        let _ = f.get(0);
    }
}
