//! A two-level BTB hierarchy (paper §II-A: "similar to the multi-level
//! cache hierarchy, the multi-level BTB hierarchy can be implemented
//! [25]–[28]").
//!
//! A small L1 BTB answers in a single cycle; the large L2 BTB (the
//! paper's main structure) backs it with its multi-cycle latency.
//! Lookups promote L2 hits into the L1 (with L1 victims demoted to L2,
//! exclusive-style), so hot branches migrate to the fast level — the
//! organisation recent commercial cores disclose.

use crate::btb::{Btb, BtbConfig, BtbEntry};
use fdip_types::{Addr, BranchKind};

/// Two-level BTB geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TwoLevelBtbConfig {
    /// Small, fast first level.
    pub l1: BtbConfig,
    /// Large second level (the paper's 8K-entry class structure).
    pub l2: BtbConfig,
    /// L1 access latency in cycles.
    pub l1_latency: u64,
    /// L2 access latency in cycles.
    pub l2_latency: u64,
}

impl Default for TwoLevelBtbConfig {
    fn default() -> Self {
        TwoLevelBtbConfig {
            l1: BtbConfig {
                entries: 1024,
                assoc: 4,
            },
            l2: BtbConfig::default(),
            l1_latency: 1,
            l2_latency: 2,
        }
    }
}

/// Which level served a lookup.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BtbLevel {
    /// Served by the fast first level.
    L1,
    /// Served by the large second level (promoted on the way).
    L2,
}

/// Two-level hit/promotion counters.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct TwoLevelStats {
    /// Lookups that hit the L1.
    pub l1_hits: u64,
    /// Lookups that missed L1 but hit L2 (promotions).
    pub l2_hits: u64,
    /// Lookups that missed both levels.
    pub misses: u64,
}

/// The two-level BTB.
///
/// # Examples
///
/// ```
/// use fdip_bpred::{BtbLevel, TwoLevelBtb, TwoLevelBtbConfig};
/// use fdip_types::{Addr, BranchKind};
///
/// let mut btb = TwoLevelBtb::new(TwoLevelBtbConfig::default());
/// let pc = Addr::new(0x1000);
/// btb.insert(pc, BranchKind::DirectJump, Addr::new(0x2000));
/// // First lookup after insertion hits the L1 (inserts fill the L1).
/// let (entry, level, lat) = btb.lookup(pc).expect("hit");
/// assert_eq!(level, BtbLevel::L1);
/// assert_eq!(lat, 1);
/// assert_eq!(entry.target, Addr::new(0x2000));
/// ```
#[derive(Clone, Debug)]
pub struct TwoLevelBtb {
    config: TwoLevelBtbConfig,
    l1: Btb,
    l2: Btb,
    stats: TwoLevelStats,
}

impl TwoLevelBtb {
    /// Creates an empty two-level BTB.
    pub fn new(config: TwoLevelBtbConfig) -> Self {
        TwoLevelBtb {
            config,
            l1: Btb::new(config.l1),
            l2: Btb::new(config.l2),
            stats: TwoLevelStats::default(),
        }
    }

    /// Geometry in use.
    pub fn config(&self) -> TwoLevelBtbConfig {
        self.config
    }

    /// Hit/promotion counters.
    pub fn stats(&self) -> TwoLevelStats {
        self.stats
    }

    /// Looks a branch up; on an L2 hit the entry is promoted into the
    /// L1. Returns the entry, the serving level, and the access latency.
    pub fn lookup(&mut self, pc: Addr) -> Option<(BtbEntry, BtbLevel, u64)> {
        if let Some(e) = self.l1.lookup(pc) {
            self.stats.l1_hits += 1;
            return Some((e, BtbLevel::L1, self.config.l1_latency));
        }
        if let Some(e) = self.l2.lookup(pc) {
            self.stats.l2_hits += 1;
            self.l1.insert(e.pc, e.kind, e.target);
            return Some((e, BtbLevel::L2, self.config.l2_latency));
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts or updates a branch (fills both levels; the L1 holds the
    /// hot working set by promotion and recency).
    pub fn insert(&mut self, pc: Addr, kind: BranchKind, target: Addr) {
        self.l1.insert(pc, kind, target);
        self.l2.insert(pc, kind, target);
    }

    /// Total valid entries across both levels.
    pub fn occupancy(&self) -> usize {
        self.l1.occupancy() + self.l2.occupancy()
    }

    /// Estimated storage (paper's 7 bytes per branch entry).
    pub fn estimated_bytes(&self) -> usize {
        self.config.l1.estimated_bytes() + self.config.l2.estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb() -> TwoLevelBtb {
        TwoLevelBtb::new(TwoLevelBtbConfig::default())
    }

    #[test]
    fn miss_both_levels_when_cold() {
        let mut b = btb();
        assert!(b.lookup(Addr::new(0x1000)).is_none());
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut b = btb();
        // Fill far more branches than the 1K-entry L1 holds, so early
        // ones fall out of L1 but stay in the 8K-entry L2.
        for i in 0..4096u64 {
            b.insert(
                Addr::new(0x1_0000 + i * 8),
                BranchKind::CondDirect,
                Addr::new(0x2000),
            );
        }
        let victim = Addr::new(0x1_0000);
        let (_, level, lat) = b.lookup(victim).expect("still in L2");
        assert_eq!(level, BtbLevel::L2);
        assert_eq!(lat, 2);
        // Promoted: the next lookup is an L1 hit.
        let (_, level, lat) = b.lookup(victim).expect("promoted");
        assert_eq!(level, BtbLevel::L1);
        assert_eq!(lat, 1);
    }

    #[test]
    fn hot_branches_stay_in_l1() {
        let mut b = btb();
        let hot = Addr::new(0x5000);
        b.insert(hot, BranchKind::DirectJump, Addr::new(0x6000));
        for _ in 0..100 {
            let (_, level, _) = b.lookup(hot).expect("hit");
            assert_eq!(level, BtbLevel::L1);
        }
        assert_eq!(b.stats().l1_hits, 100);
    }

    #[test]
    fn capacity_exceeds_single_level() {
        let mut b = btb();
        for i in 0..8192u64 {
            b.insert(
                Addr::new(0x1_0000 + i * 8),
                BranchKind::CondDirect,
                Addr::new(0x2000),
            );
        }
        // The union holds (at least close to) the L2 capacity.
        assert!(b.occupancy() > 8000, "{}", b.occupancy());
    }

    #[test]
    fn estimated_bytes_sums_levels() {
        let b = btb();
        assert_eq!(b.estimated_bytes(), (1024 + 8192) * 7);
    }
}
