//! An ITTAGE-style indirect branch target predictor (Seznec, CBP-3),
//! reduced to four tagged components plus a PC-indexed base table.
//!
//! The paper configures ITTAGE with the same 260-bit taken-only target
//! history as TAGE (§V). Like [`crate::Tage`], folded histories live in
//! the shared [`FoldPlan`]; the simulator passes the speculative
//! [`FoldedHistories`] to every lookup.

use crate::fold::{FoldPlan, FoldedHistories};
use fdip_types::Addr;

/// ITTAGE geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct IttageConfig {
    /// log2 entries per tagged component.
    pub entries_log2: u32,
    /// log2 entries of the PC-indexed base table.
    pub base_log2: u32,
    /// Tag width.
    pub tag_bits: u32,
    /// History lengths of the tagged components (short → long).
    pub hist_lens: [u32; 4],
}

impl Default for IttageConfig {
    fn default() -> Self {
        IttageConfig {
            entries_log2: 9,
            base_log2: 11,
            tag_bits: 12,
            hist_lens: [12, 40, 120, 260],
        }
    }
}

impl IttageConfig {
    /// Storage in bytes: tagged entries hold a 48-bit target + tag +
    /// 2-bit confidence + 2-bit usefulness; base entries a 48-bit target.
    pub fn size_bytes(&self) -> usize {
        let tagged_bits = 4 * (1usize << self.entries_log2) * (48 + self.tag_bits as usize + 2 + 2);
        let base_bits = (1usize << self.base_log2) * 48;
        (tagged_bits + base_bits) / 8
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct IttEntry {
    tag: u16,
    target: Addr,
    /// 2-bit confidence; target replaced when it decays to zero.
    conf: u8,
    u: u8,
}

/// Prediction metadata handed back at update time.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct IttagePrediction {
    /// Predicted target ([`Addr::NULL`] when nothing useful is stored).
    pub target: Addr,
    /// Providing component (None = base table).
    pub provider: Option<u8>,
}

/// The ITTAGE predictor.
///
/// # Examples
///
/// ```
/// use fdip_bpred::{FoldPlan, Ittage, IttageConfig};
/// use fdip_types::Addr;
///
/// let mut plan = FoldPlan::new();
/// let mut itt = Ittage::new(IttageConfig::default(), &mut plan);
/// let folds = plan.initial();
/// let pc = Addr::new(0x1000);
/// let pred = itt.predict(pc, &folds);
/// itt.update(pc, &folds, Addr::new(0x2000), pred);
/// ```
#[derive(Clone, Debug)]
pub struct Ittage {
    config: IttageConfig,
    base: Vec<Addr>,
    tables: Vec<Vec<IttEntry>>,
    fold_base: usize,
    lfsr: u64,
}

impl Ittage {
    /// Builds the predictor and registers its folds on `plan`.
    pub fn new(config: IttageConfig, plan: &mut FoldPlan) -> Self {
        let fold_base = plan.len();
        for &len in &config.hist_lens {
            plan.register(len, config.entries_log2);
            plan.register(len, config.tag_bits);
        }
        Ittage {
            config,
            base: vec![Addr::NULL; 1 << config.base_log2],
            tables: vec![vec![IttEntry::default(); 1 << config.entries_log2]; 4],
            fold_base,
            lfsr: 0xbead_cafe_1234_5678,
        }
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.config.size_bytes()
    }

    fn base_index(&self, pc: Addr) -> usize {
        ((pc.raw() >> 2) as usize) & ((1 << self.config.base_log2) - 1)
    }

    fn index(&self, pc: Addr, folds: &FoldedHistories, i: usize) -> usize {
        let h = pc.raw() >> 2;
        let f = folds.get(self.fold_base + 2 * i) as u64;
        ((h ^ (h >> 7) ^ f ^ ((i as u64) << 2)) as usize) & ((1 << self.config.entries_log2) - 1)
    }

    fn tag(&self, pc: Addr, folds: &FoldedHistories, i: usize) -> u16 {
        let h = pc.raw() >> 2;
        let f = folds.get(self.fold_base + 2 * i + 1) as u64;
        ((h ^ (f << 1) ^ (h >> 11)) as u16) & ((1u16 << self.config.tag_bits) - 1)
    }

    /// Predicts the target of the indirect branch at `pc`.
    pub fn predict(&self, pc: Addr, folds: &FoldedHistories) -> IttagePrediction {
        for i in (0..4).rev() {
            let e = &self.tables[i][self.index(pc, folds, i)];
            if e.tag == self.tag(pc, folds, i) && !e.target.is_null() {
                return IttagePrediction {
                    target: e.target,
                    provider: Some(i as u8),
                };
            }
        }
        IttagePrediction {
            target: self.base[self.base_index(pc)],
            provider: None,
        }
    }

    /// Trains with the resolved target. `folds` are the checkpointed
    /// folded histories from prediction time; `pred` the value returned
    /// by [`Ittage::predict`].
    pub fn update(
        &mut self,
        pc: Addr,
        folds: &FoldedHistories,
        actual: Addr,
        pred: IttagePrediction,
    ) {
        let mispredicted = pred.target != actual;
        // Base table always tracks the latest target.
        let bi = self.base_index(pc);
        self.base[bi] = actual;

        if let Some(p) = pred.provider {
            let p = p as usize;
            let idx = self.index(pc, folds, p);
            let tag = self.tag(pc, folds, p);
            let e = &mut self.tables[p][idx];
            if e.tag == tag {
                if e.target == actual {
                    e.conf = (e.conf + 1).min(3);
                    e.u = (e.u + 1).min(3);
                } else if e.conf > 0 {
                    e.conf -= 1;
                } else {
                    e.target = actual;
                    e.u = 0;
                }
            }
        }

        if mispredicted {
            // Allocate in a longer-history component with a free slot.
            let start = pred.provider.map_or(0, |p| p as usize + 1);
            let mut allocated = false;
            for j in start..4 {
                let idx = self.index(pc, folds, j);
                if self.tables[j][idx].u == 0 {
                    self.tables[j][idx] = IttEntry {
                        tag: self.tag(pc, folds, j),
                        target: actual,
                        conf: 0,
                        u: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Age a victim pseudo-randomly.
                self.lfsr ^= self.lfsr << 13;
                self.lfsr ^= self.lfsr >> 7;
                self.lfsr ^= self.lfsr << 17;
                let j = start + (self.lfsr as usize % (4 - start).max(1));
                if j < 4 {
                    let idx = self.index(pc, folds, j);
                    let e = &mut self.tables[j][idx];
                    e.u = e.u.saturating_sub(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::GlobalHistory;

    fn setup() -> (Ittage, FoldPlan) {
        let mut plan = FoldPlan::new();
        let itt = Ittage::new(IttageConfig::default(), &mut plan);
        (itt, plan)
    }

    #[test]
    fn monomorphic_site_is_learned() {
        let (mut itt, plan) = setup();
        let folds = plan.initial();
        let pc = Addr::new(0x1000);
        let t = Addr::new(0x8000);
        for _ in 0..8 {
            let pred = itt.predict(pc, &folds);
            itt.update(pc, &folds, t, pred);
        }
        assert_eq!(itt.predict(pc, &folds).target, t);
    }

    #[test]
    fn history_correlated_targets_are_separated() {
        let (mut itt, plan) = setup();
        let pc = Addr::new(0x2000);
        let mut h1 = GlobalHistory::new();
        h1.push_target(Addr::new(0x500), Addr::new(0x600));
        let f1 = plan.recompute(&h1);
        let f0 = plan.initial();
        let (ta, tb) = (Addr::new(0x9000), Addr::new(0xa000));
        for _ in 0..64 {
            let p1 = itt.predict(pc, &f1);
            itt.update(pc, &f1, ta, p1);
            let p0 = itt.predict(pc, &f0);
            itt.update(pc, &f0, tb, p0);
        }
        assert_eq!(itt.predict(pc, &f1).target, ta);
        assert_eq!(itt.predict(pc, &f0).target, tb);
    }

    #[test]
    fn cold_lookup_returns_null() {
        let (itt, plan) = setup();
        assert!(itt
            .predict(Addr::new(0x1234), &plan.initial())
            .target
            .is_null());
    }

    #[test]
    fn base_table_tracks_last_target() {
        let (mut itt, plan) = setup();
        let folds = plan.initial();
        let pc = Addr::new(0x3000);
        let pred = itt.predict(pc, &folds);
        itt.update(pc, &folds, Addr::new(0x7000), pred);
        // Even with no tagged hit, the base table serves the last target.
        assert_eq!(itt.predict(pc, &folds).target, Addr::new(0x7000));
    }

    #[test]
    fn size_is_reported() {
        let (itt, _) = setup();
        assert!(itt.size_bytes() > 10 * 1024);
        assert!(itt.size_bytes() < 64 * 1024);
    }
}
