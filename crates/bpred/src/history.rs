//! The global history register.
//!
//! The paper contrasts two ways of building the history that indexes the
//! direction and indirect predictors (§II-A, §III-A):
//!
//! * **Direction history** (Eq. 1): shift in one bit per *detected* branch
//!   — the academic default, fragile under FDP because BTB-miss not-taken
//!   branches silently drop bits.
//! * **Taken-only branch target history** (Eq. 2–3): only taken branches
//!   update the history, XOR-ing a hash of `(branch pc, target)` into the
//!   shifted register — the commercial choice the paper advocates.
//!
//! [`GlobalHistory`] supports both via [`push_direction`] and
//! [`push_target`]: a fixed-width bit buffer that is `Copy`, so the
//! simulator checkpoints it per speculative block and restores it on
//! pipeline flushes.
//!
//! [`push_direction`]: GlobalHistory::push_direction
//! [`push_target`]: GlobalHistory::push_target

use fdip_types::Addr;

/// Width of the history buffer in bits. Covers the paper's 260-bit
/// TAGE/ITTAGE history and the 280-bit idealized direction history.
pub const HISTORY_BITS: usize = 512;

const WORDS: usize = HISTORY_BITS / 64;

/// Bits shifted per taken branch under target history. Each taken branch
/// contributes a multi-bit hash, so target history carries more
/// information per (taken) branch than direction history does per branch.
const TARGET_SHIFT: u32 = 2;

/// Width of the target hash XOR-ed into the low bits of the history.
const TARGET_HASH_BITS: u32 = 16;

/// A fixed-width global history register.
///
/// Bit 0 of word 0 is the most recent history bit. The buffer is plain
/// `Copy` data (64 bytes), making speculative checkpoint/restore a simple
/// assignment.
///
/// # Examples
///
/// ```
/// use fdip_bpred::GlobalHistory;
/// use fdip_types::Addr;
///
/// let mut h = GlobalHistory::new();
/// let checkpoint = h;                  // snapshot before speculation
/// h.push_direction(true);
/// h.push_target(Addr::new(0x1000), Addr::new(0x2000));
/// assert_ne!(h, checkpoint);
/// h = checkpoint;                      // flush: restore
/// assert_eq!(h, GlobalHistory::new());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct GlobalHistory {
    words: [u64; WORDS],
}

impl GlobalHistory {
    /// Creates an empty (all-zero) history.
    pub fn new() -> Self {
        GlobalHistory::default()
    }

    /// Shifts the register left by `n` bits and XORs `value` into the low
    /// bits (the generic primitive behind both update styles).
    pub fn push_bits(&mut self, value: u64, n: u32) {
        debug_assert!((1..64).contains(&n));
        let mut carry = 0u64;
        for w in self.words.iter_mut() {
            let new_carry = *w >> (64 - n);
            *w = (*w << n) | carry;
            carry = new_carry;
        }
        self.words[0] ^= value;
    }

    /// Direction-history update (paper Eq. 1): one bit per branch.
    pub fn push_direction(&mut self, taken: bool) {
        self.push_bits(taken as u64, 1);
    }

    /// Taken-only target-history update (paper Eq. 2–3): shift by two
    /// bits and XOR a hash of the branch address and target.
    pub fn push_target(&mut self, pc: Addr, target: Addr) {
        let hash = Self::target_hash(pc, target);
        self.push_bits(hash, TARGET_SHIFT);
    }

    /// The target hash of Eq. 2: mixes instruction address and target.
    pub fn target_hash(pc: Addr, target: Addr) -> u64 {
        let h = (pc.raw() >> 2) ^ (target.raw() >> 3).rotate_left(7);
        // Thin to the hash width by folding 16-bit chunks.
        let folded = h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48);
        folded & ((1 << TARGET_HASH_BITS) - 1)
    }

    /// Folds the most recent `len` history bits into an `out_bits`-wide
    /// value by XOR-ing consecutive `out_bits`-sized chunks (the classic
    /// folded-history computation, done on demand).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `len > HISTORY_BITS` or `out_bits` is 0 or > 63.
    pub fn fold(&self, len: u32, out_bits: u32) -> u64 {
        debug_assert!(len as usize <= HISTORY_BITS);
        debug_assert!((1..64).contains(&out_bits));
        let mask = (1u64 << out_bits) - 1;
        let mut acc = 0u64;
        let mut taken = 0u32; // bits consumed so far
        let mut chunk = 0u64; // bits being assembled for the current chunk
        let mut chunk_fill = 0u32;
        'outer: for (wi, &w) in self.words.iter().enumerate() {
            let mut avail = (len - taken).min(64);
            let mut word = if avail == 64 {
                w
            } else {
                w & ((1u64 << avail) - 1)
            };
            let _ = wi;
            while avail > 0 {
                let take = (out_bits - chunk_fill).min(avail);
                chunk |= (word & ((1u64 << take) - 1)) << chunk_fill;
                word >>= take;
                avail -= take;
                taken += take;
                chunk_fill += take;
                if chunk_fill == out_bits {
                    acc ^= chunk;
                    chunk = 0;
                    chunk_fill = 0;
                }
                if taken == len {
                    break 'outer;
                }
            }
        }
        (acc ^ chunk) & mask
    }

    /// Returns the most recent `n` bits (n <= 64) as a value, most recent
    /// bit in position 0. Used by Gshare.
    pub fn recent(&self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        if n == 64 {
            self.words[0]
        } else {
            self.words[0] & ((1u64 << n) - 1)
        }
    }

    /// Reads history bit `pos` (0 = most recent).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `pos >= HISTORY_BITS`.
    pub fn bit(&self, pos: u32) -> bool {
        debug_assert!((pos as usize) < HISTORY_BITS);
        (self.words[(pos / 64) as usize] >> (pos % 64)) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_direction_shifts_in_one_bit() {
        let mut h = GlobalHistory::new();
        h.push_direction(true);
        assert_eq!(h.recent(4), 0b0001);
        h.push_direction(false);
        assert_eq!(h.recent(4), 0b0010);
        h.push_direction(true);
        assert_eq!(h.recent(4), 0b0101);
    }

    #[test]
    fn push_bits_carries_across_words() {
        let mut h = GlobalHistory::new();
        h.push_bits(1, 1);
        // Shift the single bit across the first word boundary.
        for _ in 0..64 {
            h.push_bits(0, 1);
        }
        assert_eq!(h.words[0], 0);
        assert_eq!(h.words[1], 1);
    }

    #[test]
    fn push_target_differs_by_target() {
        let mut a = GlobalHistory::new();
        let mut b = GlobalHistory::new();
        a.push_target(Addr::new(0x1000), Addr::new(0x2000));
        b.push_target(Addr::new(0x1000), Addr::new(0x3000));
        assert_ne!(a, b);
    }

    #[test]
    fn target_hash_fits_width() {
        for (pc, t) in [(0x1000u64, 0x2000u64), (0xdead_beef, 0x7fff_ffff_f000)] {
            let h = GlobalHistory::target_hash(Addr::new(pc), Addr::new(t));
            assert!(h < (1 << TARGET_HASH_BITS));
        }
    }

    #[test]
    fn fold_zero_history_is_zero() {
        let h = GlobalHistory::new();
        assert_eq!(h.fold(260, 11), 0);
    }

    #[test]
    fn fold_depends_only_on_recent_len_bits() {
        let mut a = GlobalHistory::new();
        let mut b = GlobalHistory::new();
        // Different ancient history...
        a.push_direction(true);
        for _ in 0..100 {
            a.push_direction(false);
            b.push_direction(false);
        }
        // ...is invisible to a 50-bit fold but visible to a 150-bit fold.
        assert_eq!(a.fold(50, 11), b.fold(50, 11));
        assert_ne!(a.fold(150, 11), b.fold(150, 11));
    }

    #[test]
    fn fold_short_history_matches_recent() {
        let mut h = GlobalHistory::new();
        for bit in [true, false, true, true, false, true, false, false, true] {
            h.push_direction(bit);
        }
        // Folding 9 bits into 11 is the identity on those bits.
        assert_eq!(h.fold(9, 11), h.recent(9));
    }

    #[test]
    fn fold_is_chunked_xor() {
        let mut h = GlobalHistory::new();
        for _ in 0..4 {
            h.push_direction(true); // history ...1111
        }
        // 4 bits folded into 2-bit chunks: 0b11 ^ 0b11 = 0.
        assert_eq!(h.fold(4, 2), 0);
        h.push_direction(false); // history 01111
                                 // 5 bits = chunks [11, 11, 0]; the leftover 0 bit adds nothing.
        assert_eq!(h.fold(5, 2), 0b11 ^ 0b11);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut h = GlobalHistory::new();
        for i in 0..300 {
            h.push_direction(i % 3 == 0);
        }
        let cp = h;
        for i in 0..50 {
            h.push_target(Addr::new(0x1000 + i * 4), Addr::new(0x9000 + i * 64));
        }
        assert_ne!(h, cp);
        h = cp;
        assert_eq!(h, cp);
    }

    #[test]
    fn recent_widths() {
        let mut h = GlobalHistory::new();
        for _ in 0..70 {
            h.push_direction(true);
        }
        assert_eq!(h.recent(8), 0xff);
        assert_eq!(h.recent(64), u64::MAX);
    }
}
