//! Direction-predictor front door: bimodal and Gshare baselines, plus the
//! [`DirectionPredictor`] enum the simulator dispatches through (TAGE,
//! Gshare, bimodal, or a perfect oracle — the Fig. 12 sweep).

use crate::fold::FoldedHistories;
use crate::history::GlobalHistory;
use crate::tage::{Tage, TagePrediction};
use fdip_types::Addr;

/// A PC-indexed table of 2-bit saturating counters.
///
/// # Examples
///
/// ```
/// use fdip_bpred::Bimodal;
/// use fdip_types::Addr;
///
/// let mut b = Bimodal::new(12);
/// let pc = Addr::new(0x400);
/// for _ in 0..4 { b.update(pc, true); }
/// assert!(b.predict(pc));
/// ```
#[derive(Clone, Debug)]
pub struct Bimodal {
    counters: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^log2_entries` counters.
    pub fn new(log2_entries: u32) -> Self {
        Bimodal {
            counters: vec![2; 1 << log2_entries],
            mask: (1 << log2_entries) - 1,
        }
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc.raw() >> 2) as usize) & self.mask
    }

    /// Predicted direction of the branch at `pc`.
    pub fn predict(&self, pc: Addr) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains with the resolved outcome.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        *c = (*c as i8 + if taken { 1 } else { -1 }).clamp(0, 3) as u8;
    }

    /// Storage in bytes (2 bits per counter).
    pub fn size_bytes(&self) -> usize {
        self.counters.len() / 4
    }
}

/// Gshare geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct GshareConfig {
    /// log2 of the counter-table size.
    pub table_log2: u32,
    /// History bits XOR-ed into the index.
    pub hist_bits: u32,
}

impl Default for GshareConfig {
    /// The paper's Fig. 12 point: 8KB (32K 2-bit counters), 15-bit
    /// idealized direction history.
    fn default() -> Self {
        GshareConfig {
            table_log2: 15,
            hist_bits: 15,
        }
    }
}

/// McFarling Gshare: PC XOR global-direction-history indexed 2-bit
/// counters.
#[derive(Clone, Debug)]
pub struct Gshare {
    config: GshareConfig,
    counters: Vec<u8>,
}

impl Gshare {
    /// Creates a Gshare predictor.
    pub fn new(config: GshareConfig) -> Self {
        Gshare {
            config,
            counters: vec![2; 1 << config.table_log2],
        }
    }

    fn index(&self, pc: Addr, hist: &GlobalHistory) -> usize {
        let h = hist.recent(self.config.hist_bits);
        let x = (pc.raw() >> 2) ^ h ^ (h << 3);
        (x as usize) & ((1 << self.config.table_log2) - 1)
    }

    /// Predicted direction given the (direction) history.
    pub fn predict(&self, pc: Addr, hist: &GlobalHistory) -> bool {
        self.counters[self.index(pc, hist)] >= 2
    }

    /// Trains with the resolved outcome and the history the branch was
    /// predicted with.
    pub fn update(&mut self, pc: Addr, hist: &GlobalHistory, taken: bool) {
        let i = self.index(pc, hist);
        let c = &mut self.counters[i];
        *c = (*c as i8 + if taken { 1 } else { -1 }).clamp(0, 3) as u8;
    }

    /// Storage in bytes (2 bits per counter).
    pub fn size_bytes(&self) -> usize {
        self.counters.len() / 4
    }
}

/// The conditional direction predictor the frontend is configured with
/// (paper Fig. 12 sweeps all of these).
#[derive(Clone, Debug)]
pub enum DirectionPredictor {
    /// TAGE (the baseline).
    Tage(Tage),
    /// Gshare with idealized direction history.
    Gshare(Gshare),
    /// Bimodal (used in unit tests and as a simple baseline).
    Bimodal(Bimodal),
    /// Perfect direction oracle: always right on the committed path.
    Perfect,
}

impl DirectionPredictor {
    /// Predicts the direction of a conditional branch at `pc`.
    ///
    /// * `folds` — speculative folded histories (used by TAGE).
    /// * `dir_hist` — speculative idealized direction history (used by
    ///   Gshare).
    /// * `oracle` — the committed-path outcome when the frontend is on
    ///   the correct path (used by `Perfect`; `None` on the wrong path).
    ///
    /// Returns the prediction plus the TAGE metadata needed at update.
    pub fn predict(
        &self,
        pc: Addr,
        folds: &FoldedHistories,
        dir_hist: &GlobalHistory,
        oracle: Option<bool>,
    ) -> TagePrediction {
        match self {
            DirectionPredictor::Tage(t) => t.predict(pc, folds),
            DirectionPredictor::Gshare(g) => TagePrediction {
                taken: g.predict(pc, dir_hist),
                ..TagePrediction::default()
            },
            DirectionPredictor::Bimodal(b) => TagePrediction {
                taken: b.predict(pc),
                ..TagePrediction::default()
            },
            DirectionPredictor::Perfect => TagePrediction {
                taken: oracle.unwrap_or(false),
                ..TagePrediction::default()
            },
        }
    }

    /// Trains with the resolved outcome; `folds`/`dir_hist` are the
    /// speculative values the branch was predicted with (checkpointed by
    /// the simulator), `pred` the value returned by
    /// [`DirectionPredictor::predict`].
    pub fn update(
        &mut self,
        pc: Addr,
        folds: &FoldedHistories,
        dir_hist: &GlobalHistory,
        taken: bool,
        pred: TagePrediction,
    ) {
        match self {
            DirectionPredictor::Tage(t) => t.update(pc, folds, taken, pred),
            DirectionPredictor::Gshare(g) => g.update(pc, dir_hist, taken),
            DirectionPredictor::Bimodal(b) => b.update(pc, taken),
            DirectionPredictor::Perfect => {}
        }
    }

    /// Storage in bytes (0 for the oracle).
    pub fn size_bytes(&self) -> usize {
        match self {
            DirectionPredictor::Tage(t) => t.size_bytes(),
            DirectionPredictor::Gshare(g) => g.size_bytes(),
            DirectionPredictor::Bimodal(b) => b.size_bytes(),
            DirectionPredictor::Perfect => 0,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            DirectionPredictor::Tage(t) => {
                format!("TAGE-{}KB", (t.size_bytes() + 512) / 1024)
            }
            DirectionPredictor::Gshare(g) => {
                format!("Gshare-{}KB", (g.size_bytes() + 512) / 1024)
            }
            DirectionPredictor::Bimodal(b) => {
                format!("Bimodal-{}KB", (b.size_bytes() + 512) / 1024)
            }
            DirectionPredictor::Perfect => "PerfectDir".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::FoldPlan;
    use crate::tage::TageConfig;

    #[test]
    fn bimodal_learns_bias() {
        let mut b = Bimodal::new(10);
        let pc = Addr::new(0x1000);
        for _ in 0..10 {
            b.update(pc, false);
        }
        assert!(!b.predict(pc));
        for _ in 0..10 {
            b.update(pc, true);
        }
        assert!(b.predict(pc));
    }

    #[test]
    fn bimodal_size() {
        assert_eq!(Bimodal::new(12).size_bytes(), 1024);
    }

    #[test]
    fn gshare_default_is_8kb() {
        let g = Gshare::new(GshareConfig::default());
        assert_eq!(g.size_bytes(), 8 * 1024);
    }

    #[test]
    fn gshare_learns_history_correlation() {
        let mut g = Gshare::new(GshareConfig::default());
        let pc = Addr::new(0x1000);
        let mut h1 = GlobalHistory::new();
        h1.push_direction(true);
        let h0 = GlobalHistory::new();
        for _ in 0..20 {
            g.update(pc, &h1, true);
            g.update(pc, &h0, false);
        }
        assert!(g.predict(pc, &h1));
        assert!(!g.predict(pc, &h0));
    }

    #[test]
    fn perfect_follows_oracle() {
        let p = DirectionPredictor::Perfect;
        let folds = FoldPlan::new().initial();
        let h = GlobalHistory::new();
        let pc = Addr::new(0x1000);
        assert!(p.predict(pc, &folds, &h, Some(true)).taken);
        assert!(!p.predict(pc, &folds, &h, Some(false)).taken);
        // Off the committed path there is no oracle: predict not-taken.
        assert!(!p.predict(pc, &folds, &h, None).taken);
    }

    #[test]
    fn enum_dispatch_trains_tage() {
        let mut plan = FoldPlan::new();
        let mut d = DirectionPredictor::Tage(Tage::new(TageConfig::kb9(), &mut plan));
        let folds = plan.initial();
        let h = GlobalHistory::new();
        let pc = Addr::new(0x1000);
        for _ in 0..64 {
            let pred = d.predict(pc, &folds, &h, None);
            d.update(pc, &folds, &h, true, pred);
        }
        assert!(d.predict(pc, &folds, &h, None).taken);
    }

    #[test]
    fn labels_mention_size_class() {
        let g = DirectionPredictor::Gshare(Gshare::new(GshareConfig::default()));
        assert_eq!(g.label(), "Gshare-8KB");
        assert_eq!(DirectionPredictor::Perfect.label(), "PerfectDir");
        let mut plan = FoldPlan::new();
        let t = DirectionPredictor::Tage(Tage::new(TageConfig::kb18(), &mut plan));
        assert!(t.label().starts_with("TAGE-"));
    }
}
