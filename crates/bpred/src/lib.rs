#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Branch-prediction substrate for the FDIP reproduction.
//!
//! Implements every prediction structure the paper's frontend uses (§II-A,
//! §V):
//!
//! * [`GlobalHistory`] — the global history register as a wide bit buffer
//!   with chunked folding, supporting both **taken-only branch target
//!   history** (paper Eq. 2–3) and classic per-branch **direction history**
//!   (Eq. 1). Cheap to snapshot, so the simulator checkpoints it per
//!   speculative block.
//! * [`Tage`] — a TAGE conditional direction predictor (geometric history
//!   lengths up to 260 bits), scalable between the paper's 9/18/36KB
//!   points; [`Gshare`] and [`Bimodal`] baselines.
//! * [`Btb`] — a set-associative branch target buffer indexed at 16-byte
//!   block granularity (§IV-B), 1K–32K entries.
//! * [`Ittage`] — an ITTAGE-style indirect target predictor.
//! * [`Ras`] — a return address stack with snapshot/restore.
//! * [`HistoryPolicy`] — the six history-management policies of the
//!   paper's Table V (THR, Ideal, GHR0–GHR3).
//!
//! The predictors are *passive*: they take the (speculative) history they
//! should use as an argument, and the simulator owns speculation,
//! checkpointing, and repair. This keeps every structure independently
//! testable.

mod btb;
mod btb2l;
mod direction;
mod fold;
mod history;
mod ittage;
mod loop_pred;
mod policy;
mod ras;
mod tage;

pub use btb::{Btb, BtbConfig, BtbEntry, BtbStats};
pub use btb2l::{BtbLevel, TwoLevelBtb, TwoLevelBtbConfig, TwoLevelStats};
pub use direction::{Bimodal, DirectionPredictor, Gshare, GshareConfig};
pub use fold::{FoldPlan, FoldSpec, FoldedHistories, MAX_FOLDS};
pub use history::{GlobalHistory, HISTORY_BITS};
pub use ittage::{Ittage, IttageConfig, IttagePrediction};
pub use loop_pred::{LoopPrediction, LoopPredictor, LoopPredictorConfig};
pub use policy::HistoryPolicy;
pub use ras::{Ras, RAS_DEPTH};
pub use tage::{Tage, TageConfig, TagePrediction};
