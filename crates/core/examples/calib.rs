use fdip_prefetch::PrefetcherKind;
use fdip_program::workload;
use fdip_sim::{run_workload, CoreConfig};

fn main() {
    let (w, m) = (50_000u64, 200_000u64);
    for wl in workload::suite() {
        let p = wl.build();
        let base = run_workload(&CoreConfig::no_fdp(), &p, w, m);
        let fdp = run_workload(&CoreConfig::fdp(), &p, w, m);
        let perf = run_workload(
            &CoreConfig::no_fdp().with_prefetcher(PrefetcherKind::Perfect),
            &p,
            w,
            m,
        );
        println!(
            "{:10} base_ipc {:.3} fdp_ipc {:.3} (+{:5.1}%) perfI_noFDP +{:5.1}% | base L1I mpki {:5.1} mpki_br {:4.1} fdp_br {:4.1}",
            wl.name, base.ipc(), fdp.ipc(),
            100.0 * (fdp.ipc() / base.ipc() - 1.0),
            100.0 * (perf.ipc() / base.ipc() - 1.0),
            base.l1i_mpki(), base.branch_mpki(), fdp.branch_mpki()
        );
    }
}
