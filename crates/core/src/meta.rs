//! Flat static-instruction metadata for the simulator hot path.
//!
//! The predict, fetch, pre-decode/PFC, and prefetch stages all need the
//! same few static facts about an instruction slot — is it a branch, of
//! which kind, with which embedded target, in which cache line, and
//! would an idealized BTB ever hold it. Deriving those through
//! `program.image().instr_at(pc)` re-does the address-to-slot mapping
//! and re-matches the `InstrKind` enum on every touch, several times per
//! predicted slot per cycle.
//!
//! [`StaticMeta`] computes everything once per [`Program`] into a
//! structure of flat arrays indexed by image slot: a dense one-byte kind
//! tag, a property-bit byte, the statically-embedded target, and the
//! slot's cache-line number. The perfect-BTB visibility rule (§VI-A:
//! real BTBs only ever allocate branches that are taken at least once,
//! so never-taken conditionals stay undetectable) is folded into the
//! property bits, so configurations with `perfect_btb` derive their
//! lookup lazily from here instead of re-walking the behaviour models.

use fdip_program::{BranchBehavior, Program};
use fdip_types::{Addr, BranchKind, InstrKind, OpClass, CACHE_LINE_BYTES, INSTR_BYTES};

/// Dense kind tag: non-branch operation classes first, branch kinds
/// from [`TAG_COND_DIRECT`] upward (so `tag >= TAG_COND_DIRECT` is the
/// is-branch test).
pub const TAG_ALU: u8 = 0;
/// Integer multiply / long-latency ALU operation.
pub const TAG_MUL: u8 = 1;
/// Floating-point operation.
pub const TAG_FP: u8 = 2;
/// Memory load.
pub const TAG_LOAD: u8 = 3;
/// Memory store.
pub const TAG_STORE: u8 = 4;
/// Conditional PC-relative branch (first branch tag).
pub const TAG_COND_DIRECT: u8 = 5;
/// Unconditional PC-relative jump.
pub const TAG_DIRECT_JUMP: u8 = 6;
/// Unconditional register-indirect jump.
pub const TAG_INDIRECT_JUMP: u8 = 7;
/// PC-relative call.
pub const TAG_DIRECT_CALL: u8 = 8;
/// Register-indirect call.
pub const TAG_INDIRECT_CALL: u8 = 9;
/// Function return.
pub const TAG_RETURN: u8 = 10;

/// Property bit: the slot is a branch.
pub const F_BRANCH: u8 = 1 << 0;
/// Property bit: unconditional branch.
pub const F_UNCOND: u8 = 1 << 1;
/// Property bit: call (pushes the RAS).
pub const F_CALL: u8 = 1 << 2;
/// Property bit: return (pops the RAS).
pub const F_RETURN: u8 = 1 << 3;
/// Property bit: PC-relative (target embedded in the instruction word).
pub const F_DIRECT: u8 = 1 << 4;
/// Property bit: register-indirect (target unknown until execute).
pub const F_INDIRECT: u8 = 1 << 5;
/// Property bit: pre-decode can recover the target for PFC (§III-B).
pub const F_PFC_TARGET: u8 = 1 << 6;
/// Property bit: an idealized ("perfect") BTB would hold this branch —
/// it is taken at least once in practice (§VI-A bias rule).
pub const F_BTB_VISIBLE: u8 = 1 << 7;

/// Returns `true` if `tag` denotes any kind of branch.
#[inline]
pub const fn tag_is_branch(tag: u8) -> bool {
    tag >= TAG_COND_DIRECT
}

/// Branch kind denoted by `tag`, if any.
#[inline]
pub const fn tag_branch_kind(tag: u8) -> Option<BranchKind> {
    match tag {
        TAG_COND_DIRECT => Some(BranchKind::CondDirect),
        TAG_DIRECT_JUMP => Some(BranchKind::DirectJump),
        TAG_INDIRECT_JUMP => Some(BranchKind::IndirectJump),
        TAG_DIRECT_CALL => Some(BranchKind::DirectCall),
        TAG_INDIRECT_CALL => Some(BranchKind::IndirectCall),
        TAG_RETURN => Some(BranchKind::Return),
        _ => None,
    }
}

/// The dense tag of a decoded [`InstrKind`].
#[inline]
pub const fn tag_of(kind: InstrKind) -> u8 {
    match kind {
        InstrKind::Op(OpClass::Alu) => TAG_ALU,
        InstrKind::Op(OpClass::Mul) => TAG_MUL,
        InstrKind::Op(OpClass::Fp) => TAG_FP,
        InstrKind::Op(OpClass::Load) => TAG_LOAD,
        InstrKind::Op(OpClass::Store) => TAG_STORE,
        InstrKind::Branch { kind, .. } => match kind {
            BranchKind::CondDirect => TAG_COND_DIRECT,
            BranchKind::DirectJump => TAG_DIRECT_JUMP,
            BranchKind::IndirectJump => TAG_INDIRECT_JUMP,
            BranchKind::DirectCall => TAG_DIRECT_CALL,
            BranchKind::IndirectCall => TAG_INDIRECT_CALL,
            BranchKind::Return => TAG_RETURN,
        },
    }
}

/// Structure-of-arrays static metadata, one entry per image slot.
///
/// Built once per program by [`StaticMeta::new`]; every accessor that
/// takes a PC does one subtract-shift-compare to find the slot, so the
/// hot path never re-enters `fdip_program`.
#[derive(Clone, Debug)]
pub struct StaticMeta {
    /// Raw base address of slot 0.
    base: u64,
    /// Dense kind tag per slot.
    tags: Vec<u8>,
    /// Property bits per slot.
    flags: Vec<u8>,
    /// Embedded branch target per slot ([`Addr::NULL`] for non-branches,
    /// indirect branches, and returns).
    targets: Vec<Addr>,
    /// Cache-line number per slot.
    lines: Vec<u64>,
}

impl StaticMeta {
    /// Decodes the whole image (and the behaviour models backing the
    /// perfect-BTB visibility bit) into flat arrays.
    pub fn new(program: &Program) -> Self {
        let image = program.image();
        let n = image.len();
        let mut tags = Vec::with_capacity(n);
        let mut flags = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        let mut lines = Vec::with_capacity(n);
        for i in 0..n {
            let addr = image.addr_of(i);
            let kind = image.instr_at(addr).kind;
            tags.push(tag_of(kind));
            targets.push(match kind {
                InstrKind::Branch { target, .. } => target,
                InstrKind::Op(_) => Addr::NULL,
            });
            lines.push(addr.line_number());
            let mut f = 0u8;
            if let InstrKind::Branch { kind: bk, .. } = kind {
                f |= F_BRANCH;
                if bk.is_unconditional() {
                    f |= F_UNCOND;
                }
                if bk.is_call() {
                    f |= F_CALL;
                }
                if bk.is_return() {
                    f |= F_RETURN;
                }
                if bk.is_direct() {
                    f |= F_DIRECT;
                }
                if bk.is_indirect() {
                    f |= F_INDIRECT;
                }
                if bk.pfc_target_available() {
                    f |= F_PFC_TARGET;
                }
                let visible = if bk.is_unconditional() {
                    true
                } else {
                    match program.behavior_at(addr) {
                        Some(BranchBehavior::Bias { p_taken }) => *p_taken >= 0.02,
                        _ => true,
                    }
                };
                if visible {
                    f |= F_BTB_VISIBLE;
                }
            }
            flags.push(f);
        }
        StaticMeta {
            base: image.base().raw(),
            tags,
            flags,
            targets,
            lines,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Returns `true` when the image is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Slot index holding `pc`, if mapped.
    #[inline]
    pub fn slot_of(&self, pc: Addr) -> Option<usize> {
        // A pc below base wraps to an enormous offset, failing the
        // length check, so one compare covers both bounds.
        let idx = (pc.raw().wrapping_sub(self.base) / INSTR_BYTES) as usize;
        (idx < self.tags.len()).then_some(idx)
    }

    /// Address of slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn addr_of(&self, idx: usize) -> Addr {
        assert!(idx < self.tags.len(), "slot index out of bounds");
        Addr::new(self.base + idx as u64 * INSTR_BYTES)
    }

    /// Dense kind tag of slot `idx`.
    #[inline]
    pub fn tag(&self, idx: usize) -> u8 {
        self.tags[idx]
    }

    /// Property bits of slot `idx`.
    #[inline]
    pub fn flags(&self, idx: usize) -> u8 {
        self.flags[idx]
    }

    /// Embedded target of slot `idx` (NULL when none is encoded).
    #[inline]
    pub fn target(&self, idx: usize) -> Addr {
        self.targets[idx]
    }

    /// Cache-line number of slot `idx`.
    #[inline]
    pub fn line(&self, idx: usize) -> u64 {
        self.lines[idx]
    }

    /// Dense kind tag at `pc` ([`TAG_ALU`], i.e. NOP, when unmapped —
    /// matching the image's sequential wrong-path semantics).
    #[inline]
    pub fn tag_at(&self, pc: Addr) -> u8 {
        self.slot_of(pc).map_or(TAG_ALU, |i| self.tags[i])
    }

    /// Property bits at `pc` (`0` when unmapped).
    #[inline]
    pub fn flags_at(&self, pc: Addr) -> u8 {
        self.slot_of(pc).map_or(0, |i| self.flags[i])
    }

    /// Branch kind at `pc`, if the slot is a mapped branch.
    #[inline]
    pub fn branch_kind_at(&self, pc: Addr) -> Option<BranchKind> {
        tag_branch_kind(self.tag_at(pc))
    }

    /// Statically-embedded target at `pc` (direct branches only) — the
    /// flat equivalent of `instr_at(pc).kind.static_target()`.
    #[inline]
    pub fn static_target_at(&self, pc: Addr) -> Option<Addr> {
        let i = self.slot_of(pc)?;
        (self.flags[i] & F_DIRECT != 0).then(|| self.targets[i])
    }

    /// The mapped slot range that falls inside cache line `line`.
    #[inline]
    pub fn slots_of_line(&self, line: u64) -> std::ops::Range<usize> {
        let line_base = line * CACHE_LINE_BYTES;
        let line_end = line_base + CACHE_LINE_BYTES;
        let lo = line_base.saturating_sub(self.base) / INSTR_BYTES;
        let hi = line_end.saturating_sub(self.base) / INSTR_BYTES;
        let n = self.tags.len() as u64;
        (lo.min(n) as usize)..(hi.min(n) as usize)
    }

    /// Builds the perfect-BTB lookup as a packed bitset (one bit per
    /// slot), for configurations with an idealized BTB. Non-perfect-BTB
    /// configurations never call this, so they allocate nothing — the
    /// visibility rule lives in the always-present [`F_BTB_VISIBLE`]
    /// flag bit.
    pub fn perfect_btb_bits(&self) -> Vec<u64> {
        let mut bits = vec![0u64; self.flags.len().div_ceil(64)];
        for (i, &f) in self.flags.iter().enumerate() {
            if f & F_BTB_VISIBLE != 0 {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_program::workload::{Workload, WorkloadFamily};

    fn meta_and_program() -> (StaticMeta, Program) {
        let p = Workload::family_default("meta-test", WorkloadFamily::Server, 11).build();
        (StaticMeta::new(&p), p)
    }

    #[test]
    fn tags_and_targets_match_the_image() {
        let (m, p) = meta_and_program();
        let image = p.image();
        assert_eq!(m.len(), image.len());
        assert!(!m.is_empty());
        for i in 0..m.len() {
            let addr = image.addr_of(i);
            let kind = image.instr_at(addr).kind;
            assert_eq!(m.tag(i), tag_of(kind), "slot {i}");
            assert_eq!(m.tag_at(addr), tag_of(kind), "slot {i}");
            assert_eq!(m.addr_of(i), addr);
            assert_eq!(m.line(i), addr.line_number());
            assert_eq!(tag_branch_kind(m.tag(i)), kind.branch_kind(), "slot {i}");
            assert_eq!(m.static_target_at(addr), kind.static_target(), "slot {i}");
            if let InstrKind::Branch { target, .. } = kind {
                assert_eq!(m.target(i), target, "slot {i}");
            }
        }
    }

    #[test]
    fn flags_encode_the_branch_taxonomy() {
        let (m, p) = meta_and_program();
        for i in 0..m.len() {
            let kind = p.image().instr_at(m.addr_of(i)).kind;
            let f = m.flags(i);
            match kind.branch_kind() {
                None => assert_eq!(f, 0, "slot {i}"),
                Some(bk) => {
                    assert_ne!(f & F_BRANCH, 0, "slot {i}");
                    assert_eq!(f & F_UNCOND != 0, bk.is_unconditional(), "slot {i}");
                    assert_eq!(f & F_CALL != 0, bk.is_call(), "slot {i}");
                    assert_eq!(f & F_RETURN != 0, bk.is_return(), "slot {i}");
                    assert_eq!(f & F_DIRECT != 0, bk.is_direct(), "slot {i}");
                    assert_eq!(f & F_INDIRECT != 0, bk.is_indirect(), "slot {i}");
                    assert_eq!(f & F_PFC_TARGET != 0, bk.pfc_target_available(), "slot {i}");
                }
            }
        }
    }

    #[test]
    fn unmapped_pcs_read_as_nops() {
        let (m, p) = meta_and_program();
        let below = Addr::new(p.image().base().raw().saturating_sub(64));
        let above = p.image().base() + p.image().footprint_bytes() + 64;
        for pc in [below, above, Addr::NULL] {
            assert_eq!(m.slot_of(pc), None, "{pc}");
            assert_eq!(m.tag_at(pc), TAG_ALU, "{pc}");
            assert_eq!(m.flags_at(pc), 0, "{pc}");
            assert_eq!(m.static_target_at(pc), None, "{pc}");
            assert_eq!(m.branch_kind_at(pc), None, "{pc}");
        }
    }

    #[test]
    fn slots_of_line_covers_exactly_the_line() {
        let (m, _p) = meta_and_program();
        for line in [m.line(0), m.line(m.len() / 2), m.line(m.len() - 1)] {
            let r = m.slots_of_line(line);
            assert!(!r.is_empty(), "line {line}");
            for i in r.clone() {
                assert_eq!(m.line(i), line, "slot {i}");
            }
            if r.start > 0 {
                assert_ne!(m.line(r.start - 1), line);
            }
            if r.end < m.len() {
                assert_ne!(m.line(r.end), line);
            }
        }
        // A line entirely outside the image maps to no slots.
        assert!(m.slots_of_line(m.line(m.len() - 1) + 10).is_empty());
    }

    #[test]
    fn perfect_btb_bits_follow_the_visibility_flag() {
        let (m, _p) = meta_and_program();
        let bits = m.perfect_btb_bits();
        assert_eq!(bits.len(), m.len().div_ceil(64));
        let mut visible = 0usize;
        for i in 0..m.len() {
            let bit = bits[i / 64] >> (i % 64) & 1 == 1;
            assert_eq!(bit, m.flags(i) & F_BTB_VISIBLE != 0, "slot {i}");
            visible += bit as usize;
        }
        // Unconditional branches are always visible, so some bits are set.
        assert!(visible > 0);
        // Non-branches are never visible.
        for i in 0..m.len() {
            if !tag_is_branch(m.tag(i)) {
                assert_eq!(m.flags(i) & F_BTB_VISIBLE, 0, "slot {i}");
            }
        }
    }

    #[test]
    fn tag_round_trips_through_branch_kind() {
        use fdip_types::BranchKind::*;
        for bk in [
            CondDirect,
            DirectJump,
            IndirectJump,
            DirectCall,
            IndirectCall,
            Return,
        ] {
            let tag = tag_of(InstrKind::Branch {
                kind: bk,
                target: Addr::NULL,
            });
            assert!(tag_is_branch(tag));
            assert_eq!(tag_branch_kind(tag), Some(bk));
        }
        for tag in [TAG_ALU, TAG_MUL, TAG_FP, TAG_LOAD, TAG_STORE] {
            assert!(!tag_is_branch(tag));
            assert_eq!(tag_branch_kind(tag), None);
        }
    }
}
