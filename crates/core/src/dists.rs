//! Distribution telemetry collected alongside [`SimStats`](crate::stats::SimStats).
//!
//! The scalar counters answer "how much"; these histograms answer "how it
//! was shaped" — whether the FTQ actually ran deep enough to hide fill
//! latency (§IV-A sizing), how much lead time the fetch-directed fill
//! probes bought (§VI-G timeliness), and whether the decode queue stayed
//! fed (§VI-D starvation). They are recorded every cycle, so the types
//! come from `fdip-telemetry` where recording is O(1) and allocation-free
//! once warm.

use fdip_telemetry::{Histogram, Json, ToJson};

/// How often a per-interval IPC sample is taken, in cycles.
///
/// 4096 cycles is short enough to expose phase behaviour within the
/// 200K-instruction measured regions and long enough that a sample is not
/// dominated by a single miss burst.
pub const IPC_SAMPLE_INTERVAL: u64 = 4096;

/// Per-interval distributions for one simulation run.
///
/// Unlike [`SimStats`](crate::stats::SimStats) this is not `Copy` (the
/// histograms own their bucket vectors), and warm-up is excluded by
/// [`clearing`](SimDists::clear) at the measurement boundary rather than
/// by snapshot subtraction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimDists {
    /// FTQ occupancy in entries, sampled once per cycle.
    pub ftq_occupancy: Histogram,
    /// Prefetch lead time in cycles: for every FTQ entry that initiated
    /// an I-cache fill probe, the distance between the probe and the
    /// entry first being demanded at the FTQ head. This is the prefetch
    /// distance the decoupled frontend achieved — entries whose lead
    /// exceeds the miss latency are the "covered" misses of §VI-G.
    pub prefetch_lead_time: Histogram,
    /// Decode-queue fill in instructions, sampled once per cycle.
    /// Mass below `decode_width` is time the backend could starve.
    pub decode_queue_fill: Histogram,
    /// IPC of each completed [`IPC_SAMPLE_INTERVAL`]-cycle window, in
    /// chronological order.
    pub sampled_ipc: Vec<f64>,
    /// Instructions retired when the current sample window opened.
    pub(crate) sample_anchor_retired: u64,
    /// Cycle at which the current sample window opened.
    pub(crate) sample_anchor_cycle: u64,
}

impl SimDists {
    /// Creates empty distributions.
    pub fn new() -> SimDists {
        SimDists::default()
    }

    /// Discards everything recorded so far (the warm-up boundary).
    pub fn clear(&mut self, now_cycle: u64, now_retired: u64) {
        self.ftq_occupancy.clear();
        self.prefetch_lead_time.clear();
        self.decode_queue_fill.clear();
        self.sampled_ipc.clear();
        self.sample_anchor_cycle = now_cycle;
        self.sample_anchor_retired = now_retired;
    }

    /// Reconstructs the distributions from a [`ToJson`] document.
    ///
    /// The inverse of [`SimDists::to_json`] for everything the document
    /// carries: the three histograms and the IPC sample series round-trip
    /// exactly (histogram floats use shortest-round-trip formatting, so
    /// re-serializing the result is byte-identical). The private sample
    /// anchors are run-time bookkeeping that never reaches the document;
    /// they come back as zero, which only matters if sampling were
    /// resumed on a parsed value — it never is. Returns `None` on a
    /// missing or mistyped field.
    pub fn from_json(v: &Json) -> Option<SimDists> {
        let sampled_ipc = v
            .get("sampled_ipc")?
            .as_arr()?
            .iter()
            .map(Json::as_f64)
            .collect::<Option<Vec<f64>>>()?;
        Some(SimDists {
            ftq_occupancy: Histogram::from_json(v.get("ftq_occupancy")?)?,
            prefetch_lead_time: Histogram::from_json(v.get("prefetch_lead_time")?)?,
            decode_queue_fill: Histogram::from_json(v.get("decode_queue_fill")?)?,
            sampled_ipc,
            sample_anchor_retired: 0,
            sample_anchor_cycle: 0,
        })
    }

    /// Closes the current IPC sample window if it is due.
    pub(crate) fn maybe_sample_ipc(&mut self, now_cycle: u64, now_retired: u64) {
        let elapsed = now_cycle - self.sample_anchor_cycle;
        if elapsed >= IPC_SAMPLE_INTERVAL {
            let retired = now_retired - self.sample_anchor_retired;
            self.sampled_ipc.push(retired as f64 / elapsed as f64);
            self.sample_anchor_cycle = now_cycle;
            self.sample_anchor_retired = now_retired;
        }
    }
}

impl ToJson for SimDists {
    /// Serializes as `{ftq_occupancy, prefetch_lead_time,
    /// decode_queue_fill, sampled_ipc}` with each histogram in the
    /// standard `fdip-telemetry` histogram form.
    fn to_json(&self) -> Json {
        Json::obj()
            .with("ftq_occupancy", self.ftq_occupancy.to_json())
            .with("prefetch_lead_time", self.prefetch_lead_time.to_json())
            .with("decode_queue_fill", self.decode_queue_fill.to_json())
            .with("sampled_ipc", self.sampled_ipc.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_sampling_closes_windows_on_the_interval() {
        let mut d = SimDists::new();
        // Not yet due.
        d.maybe_sample_ipc(IPC_SAMPLE_INTERVAL - 1, 1000);
        assert!(d.sampled_ipc.is_empty());
        // Due exactly at the boundary: 2 IPC over the window.
        d.maybe_sample_ipc(IPC_SAMPLE_INTERVAL, 2 * IPC_SAMPLE_INTERVAL);
        assert_eq!(d.sampled_ipc.len(), 1);
        assert!((d.sampled_ipc[0] - 2.0).abs() < 1e-12);
        // Anchors moved: the next window starts fresh.
        assert_eq!(d.sample_anchor_cycle, IPC_SAMPLE_INTERVAL);
    }

    #[test]
    fn clear_resets_data_and_anchors() {
        let mut d = SimDists::new();
        d.ftq_occupancy.record(5);
        d.maybe_sample_ipc(IPC_SAMPLE_INTERVAL, 100);
        d.clear(10_000, 7_000);
        assert_eq!(d.ftq_occupancy.count(), 0);
        assert!(d.sampled_ipc.is_empty());
        assert_eq!(d.sample_anchor_cycle, 10_000);
        assert_eq!(d.sample_anchor_retired, 7_000);
    }

    #[test]
    fn from_json_round_trips_byte_identically() {
        let mut d = SimDists::new();
        d.ftq_occupancy.record(3);
        d.ftq_occupancy.record(17);
        d.prefetch_lead_time.record(40);
        d.decode_queue_fill.record(0);
        d.sampled_ipc.push(1.5);
        d.sampled_ipc.push(0.333333333333333_f64);
        let text = d.to_json().to_string();
        let parsed = SimDists::from_json(&Json::parse(&text).unwrap()).unwrap();
        // The serialized forms agree byte-for-byte (anchors are runtime
        // bookkeeping outside the document, so struct equality modulo
        // anchors is checked via re-serialization).
        assert_eq!(parsed.to_json().to_string(), text);
        assert_eq!(parsed.sampled_ipc, d.sampled_ipc);
        assert_eq!(parsed.ftq_occupancy, d.ftq_occupancy);
        // Missing a section → rejected.
        let j = d.to_json().with("sampled_ipc", Json::Null);
        assert!(SimDists::from_json(&j).is_none());
    }

    #[test]
    fn json_has_all_four_sections() {
        let mut d = SimDists::new();
        d.ftq_occupancy.record(3);
        d.prefetch_lead_time.record(40);
        d.decode_queue_fill.record(0);
        d.sampled_ipc.push(1.5);
        let j = d.to_json();
        for key in [
            "ftq_occupancy",
            "prefetch_lead_time",
            "decode_queue_fill",
            "sampled_ipc",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            j.get("sampled_ipc")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }
}
