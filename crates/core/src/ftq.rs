//! The Fetch Target Queue (§IV-A) — the one structure FDP adds.
//!
//! Each entry covers (part of) a 32-byte aligned instruction block, so
//! all of its instructions fall in one I-cache line. The entry layout
//! follows the paper's Table III exactly; [`ftq_overhead_bytes`] computes
//! the 195-byte total for the 24-entry baseline from the field widths.

use crate::hist::HistState;
use fdip_bpred::{IttagePrediction, TagePrediction};
use fdip_types::{Addr, BranchKind, Cycle};
use std::collections::VecDeque;

/// Field widths of one FTQ entry in bits (Table III).
pub const FTQ_FIELD_BITS: [(&str, u32); 6] = [
    ("Start address", 48),
    ("Block predicted taken", 1),
    ("Block termination offset", 3),
    ("I-cache way", 3),
    ("State", 2),
    ("Direction hint", 8),
];

/// Hardware overhead of an `entries`-deep FTQ in bytes (Table III: 195
/// bytes for 24 entries).
pub fn ftq_overhead_bytes(entries: usize) -> usize {
    let bits_per_entry: u32 = FTQ_FIELD_BITS.iter().map(|&(_, b)| b).sum();
    entries * bits_per_entry as usize / 8
}

/// Per-branch speculation record attached to an FTQ entry slot.
///
/// Created at prediction time for every slot the code image identifies as
/// an actual branch (detected by the BTB or not), so that execute-time
/// resolution, PFC, and history fixup all have a checkpoint to restore.
#[derive(Clone, Debug)]
pub struct SlotBranch {
    /// Slot offset within the 32-byte block (0..8).
    pub offset: usize,
    /// Actual branch kind (from pre-decode / the code image).
    pub kind: BranchKind,
    /// History/RAS state *before* this branch's speculative effects.
    pub ckpt: HistState,
    /// TAGE metadata from prediction time.
    pub tage_pred: TagePrediction,
    /// ITTAGE metadata from prediction time (indirect branches).
    pub itt_pred: IttagePrediction,
    /// The frontend's assumed direction for this branch.
    pub predicted_taken: bool,
    /// The frontend's assumed target (when `predicted_taken`).
    pub predicted_target: Addr,
    /// Was the branch detected (BTB hit / perfect BTB) at prediction?
    pub detected: bool,
}

/// Fill-pipeline state of an FTQ entry (paper's 2-bit State field,
/// collapsed onto the ready-time model).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FillState {
    /// Prediction completed; waiting for I-TLB/I-cache tag lookup.
    Waiting,
    /// Tag lookup done; line ready (or in flight until `ready_at`).
    Requested {
        /// Cycle at which the I-cache line is available.
        ready_at: Cycle,
        /// The tag probe missed (a fill was initiated).
        missed: bool,
        /// The entry was already the FTQ head when the request was
        /// initiated (=> a miss is *fully exposed*, §VI-G).
        was_head: bool,
        /// Cycle at which the fill probe was initiated (for the
        /// prefetch lead-time distribution).
        requested_at: Cycle,
    },
}

/// One FTQ entry.
#[derive(Clone, Debug)]
pub struct FtqEntry {
    /// Address of the first instruction covered.
    pub start: Addr,
    /// Inclusive slot offset of the last instruction covered.
    pub end_offset: usize,
    /// Entry ends with a predicted-taken branch.
    pub predicted_taken: bool,
    /// Predicted address of the next block (taken target or sequential).
    pub next_block: Addr,
    /// Per-slot direction hints (bit per block slot; PFC's extra field).
    pub hints: u8,
    /// Committed-path sequence number of the first covered slot, if the
    /// prediction pipeline was on the correct path.
    pub first_seq: Option<u64>,
    /// Number of leading slots (from `start`) that matched the committed
    /// path at prediction time.
    pub matched: usize,
    /// Speculation records for the actual branches in this entry. Each
    /// record is boxed once at prediction time and travels by pointer
    /// through fetch, dispatch, and resolution without being re-copied
    /// (the checkpoint inside is several hundred bytes).
    pub branches: Vec<Box<SlotBranch>>,
    /// Fill-pipeline state.
    pub fill: FillState,
    /// Next slot offset to fetch (starts at `start.ftq_offset()`).
    pub fetched_upto: usize,
    /// First cycle this entry was the FTQ head (for exposure
    /// classification).
    pub head_since: Option<Cycle>,
}

impl FtqEntry {
    /// Creates an entry covering `start ..= block(start) + end_offset`.
    pub fn new(start: Addr, end_offset: usize) -> Self {
        debug_assert!(start.ftq_offset() <= end_offset && end_offset < 8);
        FtqEntry {
            start,
            end_offset,
            predicted_taken: false,
            next_block: start.ftq_block() + fdip_types::FTQ_BLOCK_BYTES,
            hints: 0,
            first_seq: None,
            matched: 0,
            branches: Vec::new(),
            fill: FillState::Waiting,
            fetched_upto: start.ftq_offset(),
            head_since: None,
        }
    }

    /// First slot offset covered.
    pub fn start_offset(&self) -> usize {
        self.start.ftq_offset()
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.end_offset - self.start_offset() + 1
    }

    /// Always `false`: an entry covers at least its starting slot.
    /// (Provided alongside [`FtqEntry::len`] for convention's sake.)
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` when the entry covers no unfetched instructions.
    pub fn is_drained(&self) -> bool {
        self.fetched_upto > self.end_offset
    }

    /// Address of the instruction in slot `offset`.
    pub fn addr_of_offset(&self, offset: usize) -> Addr {
        self.start.ftq_block() + (offset as u64) * fdip_types::INSTR_BYTES
    }

    /// Committed-path sequence number of slot `offset`, if that slot was
    /// on the correct path at prediction time.
    pub fn seq_of_offset(&self, offset: usize) -> Option<u64> {
        let first = self.first_seq?;
        let idx = offset.checked_sub(self.start_offset())?;
        (idx < self.matched).then(|| first + idx as u64)
    }

    /// The I-cache line this entry's instructions live in.
    pub fn line(&self) -> u64 {
        self.start.line_number()
    }
}

/// The fetch target queue.
///
/// # Examples
///
/// ```
/// use fdip_sim::ftq::{Ftq, FtqEntry, ftq_overhead_bytes};
/// use fdip_types::Addr;
///
/// assert_eq!(ftq_overhead_bytes(24), 195); // Table III
/// let mut ftq = Ftq::new(4);
/// ftq.push(FtqEntry::new(Addr::new(0x1000), 7));
/// assert_eq!(ftq.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Ftq {
    entries: VecDeque<FtqEntry>,
    capacity: usize,
}

impl Ftq {
    /// Creates an empty FTQ with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FTQ needs at least one entry");
        Ftq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupancy in entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if the FTQ is full (callers gate on [`Ftq::free`]).
    pub fn push(&mut self, entry: FtqEntry) {
        assert!(self.entries.len() < self.capacity, "FTQ overflow");
        self.entries.push_back(entry);
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&FtqEntry> {
        self.entries.front()
    }

    /// The oldest entry, mutably.
    pub fn head_mut(&mut self) -> Option<&mut FtqEntry> {
        self.entries.front_mut()
    }

    /// Entry by queue position (0 = head).
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut FtqEntry> {
        self.entries.get_mut(idx)
    }

    /// Iterates entries from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &FtqEntry> {
        self.entries.iter()
    }

    /// Iterates entries mutably from head to tail.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut FtqEntry> {
        self.entries.iter_mut()
    }

    /// Pops the (drained) head entry.
    pub fn pop_head(&mut self) -> Option<FtqEntry> {
        self.entries.pop_front()
    }

    /// Removes every entry (execute-time flush).
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Removes all entries younger than queue position `idx` (PFC
    /// restream: keep `0..=idx`, drop the rest).
    pub fn flush_younger_than(&mut self, idx: usize) {
        self.entries.truncate(idx + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_overhead_is_195_bytes_at_24_entries() {
        assert_eq!(ftq_overhead_bytes(24), 195);
    }

    #[test]
    fn conventional_fdp_delta_is_24_bytes() {
        // The direction-hint field (8 bits/entry) is the only addition
        // over conventional FDP: 24 bytes for 24 entries.
        let hint_bits: u32 = FTQ_FIELD_BITS
            .iter()
            .find(|&&(n, _)| n == "Direction hint")
            .map(|&(_, b)| b)
            .unwrap();
        assert_eq!(24 * hint_bits as usize / 8, 24);
    }

    #[test]
    fn entry_geometry() {
        // Entry starting mid-block at offset 2, ending at 6.
        let e = FtqEntry::new(Addr::new(0x1008), 6);
        assert_eq!(e.start_offset(), 2);
        assert_eq!(e.len(), 5);
        assert_eq!(e.addr_of_offset(2), Addr::new(0x1008));
        assert_eq!(e.addr_of_offset(6), Addr::new(0x1018));
        assert_eq!(e.line(), Addr::new(0x1008).line_number());
    }

    #[test]
    fn seq_of_offset_respects_matched_prefix() {
        let mut e = FtqEntry::new(Addr::new(0x1008), 6);
        e.first_seq = Some(100);
        e.matched = 3; // offsets 2,3,4 matched
        assert_eq!(e.seq_of_offset(2), Some(100));
        assert_eq!(e.seq_of_offset(4), Some(102));
        assert_eq!(e.seq_of_offset(5), None);
        assert_eq!(e.seq_of_offset(1), None);
    }

    #[test]
    fn drained_tracking() {
        let mut e = FtqEntry::new(Addr::new(0x1000), 1);
        assert!(!e.is_drained());
        e.fetched_upto = 2;
        assert!(e.is_drained());
    }

    #[test]
    fn queue_push_pop_flush() {
        let mut q = Ftq::new(3);
        for i in 0..3u64 {
            q.push(FtqEntry::new(Addr::new(0x1000 + i * 32), 7));
        }
        assert_eq!(q.free(), 0);
        assert_eq!(q.head().unwrap().start, Addr::new(0x1000));
        q.flush_younger_than(0);
        assert_eq!(q.len(), 1);
        q.flush_all();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "FTQ overflow")]
    fn overflow_panics() {
        let mut q = Ftq::new(1);
        q.push(FtqEntry::new(Addr::new(0x1000), 7));
        q.push(FtqEntry::new(Addr::new(0x1020), 7));
    }
}
