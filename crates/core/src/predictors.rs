//! The frontend's predictor bundle: direction predictor, ITTAGE, BTB,
//! and the shared fold plan, constructed from a [`CoreConfig`].

use crate::config::{CoreConfig, DirectionConfig};
use fdip_bpred::{
    Btb, DirectionPredictor, FoldPlan, Gshare, Ittage, LoopPredictor, LoopPredictorConfig, Tage,
};

/// All prediction structures the frontend owns.
#[derive(Clone, Debug)]
pub struct Predictors {
    /// Shared fold plan (TAGE and ITTAGE register their folds here).
    pub plan: FoldPlan,
    /// Conditional direction predictor.
    pub dir: DirectionPredictor,
    /// Indirect target predictor.
    pub ittage: Ittage,
    /// Branch target buffer.
    pub btb: Btb,
    /// Optional loop predictor (§II-A).
    pub loop_pred: Option<LoopPredictor>,
}

impl Predictors {
    /// Builds the predictor set for a configuration.
    pub fn new(cfg: &CoreConfig) -> Self {
        let mut plan = FoldPlan::new();
        let dir = match cfg.direction {
            DirectionConfig::Tage(t) => DirectionPredictor::Tage(Tage::new(t, &mut plan)),
            DirectionConfig::Gshare(g) => DirectionPredictor::Gshare(Gshare::new(g)),
            DirectionConfig::Perfect => DirectionPredictor::Perfect,
        };
        let ittage = Ittage::new(cfg.ittage, &mut plan);
        let btb = Btb::new(cfg.btb);
        let loop_pred = cfg
            .loop_predictor
            .then(|| LoopPredictor::new(LoopPredictorConfig::default()));
        Predictors {
            plan,
            dir,
            ittage,
            btb,
            loop_pred,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_bpred::{GshareConfig, TageConfig};

    #[test]
    fn tage_and_ittage_share_the_plan() {
        let p = Predictors::new(&CoreConfig::default());
        // 3 folds per TAGE table + 2 per ITTAGE table.
        let tage_tables = TageConfig::kb18().num_tables;
        assert_eq!(p.plan.len(), 3 * tage_tables + 2 * 4);
    }

    #[test]
    fn gshare_config_skips_tage_folds() {
        let cfg = CoreConfig {
            direction: crate::config::DirectionConfig::Gshare(GshareConfig::default()),
            ..CoreConfig::default()
        };
        let p = Predictors::new(&cfg);
        assert_eq!(p.plan.len(), 2 * 4); // ITTAGE only
        assert!(matches!(p.dir, DirectionPredictor::Gshare(_)));
    }

    #[test]
    fn btb_matches_config() {
        let cfg = CoreConfig::default().with_btb_entries(2048);
        let p = Predictors::new(&cfg);
        assert_eq!(p.btb.config().entries, 2048);
    }
}
