#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fdip-sim` — the paper's contribution: a cycle-level decoupled-frontend
//! core simulator with Fetch-Directed Prefetching, taken-only branch
//! target history, and post-fetch correction.
//!
//! The frontend contains separate branch-prediction and instruction-fetch
//! pipelines connected by the [FTQ](ftq::Ftq) (§IV). The prediction
//! pipeline probes up to 12 instruction slots per cycle against TAGE and
//! a 16B-indexed BTB, terminates blocks at the first predicted-taken
//! branch, and inserts 32-byte-block entries with per-instruction
//! direction hints into the FTQ. The fetch pipeline probes I-cache tags
//! for the two oldest unprobed entries (starting fills early — this *is*
//! the fetch-directed prefetch), fetches the head entry into the decode
//! queue, and pre-decodes fetched instructions to drive **post-fetch
//! correction** (§III-B) and the direction-history fixup policies of
//! Table V.
//!
//! # Examples
//!
//! ```no_run
//! use fdip_program::workload::{Workload, WorkloadFamily};
//! use fdip_sim::{run_workload, CoreConfig};
//!
//! let wl = Workload::family_default("spec_a", WorkloadFamily::Spec, 301);
//! let program = wl.build();
//! let fdp = run_workload(&CoreConfig::fdp(), &program, 50_000, 200_000);
//! let base = run_workload(&CoreConfig::no_fdp(), &program, 50_000, 200_000);
//! println!("FDP speedup: {:.1}%", 100.0 * (fdp.ipc() / base.ipc() - 1.0));
//! ```

pub mod backend;
pub mod check;
pub mod config;
pub mod dists;
pub mod ftq;
pub mod hist;
pub mod meta;
pub mod oracle;
pub mod predictors;
pub mod probe;
pub mod sim;
pub mod stats;

pub use check::{
    check_outcome_ledger, check_stall_partition, run_workload_checked, CheckedRun,
    InvariantViolation, OutcomeLedger,
};
pub use config::{BackendConfig, CoreConfig, DirectionConfig};
pub use dists::SimDists;
pub use ftq::{ftq_overhead_bytes, FillState, Ftq, FtqEntry, SlotBranch};
pub use hist::HistState;
pub use meta::StaticMeta;
pub use probe::ProbeTable;
pub use sim::{
    run_workload, run_workload_detailed, run_workload_job, run_workload_traced, Simulator,
};
pub use stats::{SimStats, StallCycles, StallReason, STALL_REASON_NAMES};
