//! Bounded open-addressed probe table: the prefetch re-issue (churn)
//! filter.
//!
//! Aggressive prefetchers can flood the small L1I with repeated fills of
//! the same line; FNL+MMA filters candidates issued within a recency
//! window (paper §VI-D footnote). The previous implementation kept a
//! `HashMap<line, cycle>` that grew without bound between periodic
//! purges; this table is a fixed-size, power-of-two, open-addressed
//! array with bounded linear probing. When a probe window is full, the
//! entry with the **oldest issue cycle** in the window is evicted —
//! exactly the entry the recency filter cares least about.
//!
//! Memory is capped at construction: `capacity` slots of 16 bytes, no
//! rehashing, no heap traffic after `new`.

use fdip_types::Cycle;

/// Sentinel key marking an empty slot (line numbers are byte addresses
/// divided by 64, so they can never reach it).
const EMPTY: u64 = u64::MAX;

/// Slots examined per probe before evicting within the window.
const PROBE_DEPTH: usize = 8;

/// Fixed-size open-addressed recency filter mapping line -> last issue
/// cycle.
#[derive(Clone, Debug)]
pub struct ProbeTable {
    keys: Vec<u64>,
    stamps: Vec<Cycle>,
    mask: usize,
    shift: u32,
    len: usize,
}

impl ProbeTable {
    /// Creates a table with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two or is smaller than the
    /// probe window.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= PROBE_DEPTH,
            "probe table capacity must be a power of two >= {PROBE_DEPTH}, got {capacity}"
        );
        ProbeTable {
            keys: vec![EMPTY; capacity],
            stamps: vec![0; capacity],
            mask: capacity - 1,
            shift: 64 - capacity.trailing_zeros(),
            len: 0,
        }
    }

    /// Slot capacity (the memory bound).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Occupied slots (always <= capacity).
    pub fn occupancy(&self) -> usize {
        self.len
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        // Fibonacci multiplicative hash: top bits of key * golden ratio.
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> self.shift) as usize
    }

    /// Filters one candidate: returns `true` when `line` was issued
    /// within the last `window` cycles and must be suppressed. Otherwise
    /// records `now` as the line's issue cycle (inserting, refreshing a
    /// stale entry, or evicting the oldest entry in a full probe window)
    /// and returns `false`.
    pub fn filter(&mut self, line: u64, now: Cycle, window: Cycle) -> bool {
        debug_assert_ne!(line, EMPTY);
        let home = self.home(line);
        let mut free: Option<usize> = None;
        let mut oldest = home;
        let mut oldest_stamp = Cycle::MAX;
        for step in 0..PROBE_DEPTH {
            let i = (home + step) & self.mask;
            let k = self.keys[i];
            if k == line {
                if now < self.stamps[i].saturating_add(window) {
                    return true;
                }
                self.stamps[i] = now;
                return false;
            }
            if k == EMPTY {
                if free.is_none() {
                    free = Some(i);
                }
                // Later slots cannot hold `line` either: insertion never
                // probes past the first empty slot.
                break;
            }
            if self.stamps[i] < oldest_stamp {
                oldest_stamp = self.stamps[i];
                oldest = i;
            }
        }
        let i = match free {
            Some(i) => {
                self.len += 1;
                i
            }
            None => oldest,
        };
        self.keys[i] = line;
        self.stamps[i] = now;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_lines_pass_and_are_recorded() {
        let mut t = ProbeTable::new(64);
        assert!(!t.filter(10, 100, 768));
        assert_eq!(t.occupancy(), 1);
        assert!(!t.filter(11, 100, 768));
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn churn_filter_semantics_table() {
        // (first issue cycle, re-request cycle, window, suppressed?)
        let cases: &[(Cycle, Cycle, Cycle, bool)] = &[
            (100, 100, 768, true),    // same cycle: suppressed
            (100, 500, 768, true),    // within the window: suppressed
            (100, 867, 768, true),    // last suppressed cycle of the window
            (100, 868, 768, false),   // first cycle outside: re-issued
            (100, 5_000, 768, false), // long after: re-issued
            (100, 101, 1, false),     // one-cycle window: immediately stale
            (100, 100, 1, true),      // ... but same-cycle still suppressed
        ];
        for &(first, again, window, suppressed) in cases {
            let mut t = ProbeTable::new(64);
            assert!(!t.filter(42, first, window), "first issue always passes");
            assert_eq!(
                t.filter(42, again, window),
                suppressed,
                "first={first} again={again} window={window}"
            );
        }
    }

    #[test]
    fn reissue_refreshes_the_stamp() {
        let mut t = ProbeTable::new(64);
        assert!(!t.filter(7, 0, 100));
        assert!(!t.filter(7, 200, 100)); // stale: re-issued, stamp -> 200
        assert!(t.filter(7, 250, 100)); // within the refreshed window
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn suppression_does_not_extend_the_window() {
        let mut t = ProbeTable::new(64);
        assert!(!t.filter(7, 0, 100));
        assert!(t.filter(7, 50, 100)); // suppressed; stamp must stay 0
        assert!(!t.filter(7, 100, 100)); // window measured from cycle 0
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut t = ProbeTable::new(8);
        for line in 0..10_000u64 {
            t.filter(line, line, 768);
            assert!(t.occupancy() <= t.capacity(), "line {line}");
        }
        assert_eq!(t.occupancy(), t.capacity());
    }

    #[test]
    fn eviction_prefers_the_oldest_issue_cycle() {
        // Capacity == probe depth, so every probe sees the whole table
        // and eviction choice is exact.
        let mut t = ProbeTable::new(8);
        for line in 0..8u64 {
            assert!(!t.filter(line, 10 + line, Cycle::MAX));
        }
        assert_eq!(t.occupancy(), 8);
        // Table full: inserting a 9th line evicts the oldest stamp
        // (line 0 at cycle 10) and nothing else.
        assert!(!t.filter(99, 50, Cycle::MAX));
        assert_eq!(t.occupancy(), 8);
        assert!(!t.filter(0, 51, Cycle::MAX), "line 0 was evicted");
        for line in 1..8u64 {
            // The survivors are still within the (infinite) window. Line
            // 1 became the new oldest and was evicted by re-inserting
            // line 0 above; the rest must survive.
            if line == 1 {
                continue;
            }
            assert!(t.filter(line, 52, Cycle::MAX), "line {line} survived");
        }
    }

    #[test]
    fn distinct_lines_do_not_alias() {
        let mut t = ProbeTable::new(1024);
        for line in 0..500u64 {
            assert!(!t.filter(line * 3, 1, 768));
        }
        for line in 0..500u64 {
            assert!(t.filter(line * 3, 2, 768), "line {}", line * 3);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = ProbeTable::new(100);
    }
}
