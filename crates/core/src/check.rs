//! Non-panicking invariant checks over simulation results.
//!
//! `run_detailed` *asserts* the stall-partition invariant — right for
//! normal runs, where a violation is a simulator bug worth a crash. The
//! fuzz harness needs the opposite: run thousands of generated programs,
//! **collect** violations as data, shrink the offending program, and
//! keep going. This module provides that path: pure checkers over
//! [`SimStats`] / [`OutcomeLedger`] values (so a harness can also
//! re-check deliberately perturbed stats to prove its detection
//! pipeline), plus [`run_workload_checked`], a drop-in for
//! [`run_workload_detailed`](crate::run_workload_detailed) that returns
//! violations instead of panicking.
//!
//! Checked invariants:
//!
//! * **Stall partition** — every cycle lands in exactly one stall
//!   bucket: `sum(stall buckets) == cycles`, over both the measured
//!   interval and the full run.
//! * **Outcome ledger** — every prefetch request is either resolved
//!   (timely / late / useless / dropped) or still in flight:
//!   `resolved + unresolved == requests`, for the FDP and dedicated-
//!   prefetcher sources independently.

use crate::config::CoreConfig;
use crate::dists::SimDists;
use crate::sim::Simulator;
use crate::stats::SimStats;
use std::fmt;

use fdip_program::Program;

/// One violated invariant, as data: which invariant, and the numbers
/// that broke it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InvariantViolation {
    /// Stable invariant identifier (`stall_partition` /
    /// `outcome_ledger`).
    pub invariant: &'static str,
    /// Human-readable mismatch description with the offending values.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Prefetch-request bookkeeping for one fill source: lifetime requests,
/// requests with a classified outcome, and requests still in flight.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct OutcomeLedger {
    /// Prefetch requests issued.
    pub requests: u64,
    /// Requests with a final outcome (timely / late / useless / dropped).
    pub resolved: u64,
    /// Requests still awaiting their first demand touch or eviction.
    pub unresolved: u64,
}

/// Checks `sum(stall buckets) == cycles` over `stats`; `context` names
/// the interval in the violation detail (e.g. `"measured"`, `"full"`).
pub fn check_stall_partition(context: &str, stats: &SimStats) -> Option<InvariantViolation> {
    let sum = stats.stall.sum();
    (sum != stats.cycles).then(|| InvariantViolation {
        invariant: "stall_partition",
        detail: format!(
            "{context}: stall buckets sum to {sum} but {} cycles elapsed",
            stats.cycles
        ),
    })
}

/// Checks `resolved + unresolved == requests` for one prefetch source
/// (`source` is `"fdp"` or `"pf"`).
pub fn check_outcome_ledger(source: &str, ledger: OutcomeLedger) -> Option<InvariantViolation> {
    let accounted = ledger.resolved + ledger.unresolved;
    (accounted != ledger.requests).then(|| InvariantViolation {
        invariant: "outcome_ledger",
        detail: format!(
            "{source}: {} resolved + {} unresolved != {} requests",
            ledger.resolved, ledger.unresolved, ledger.requests
        ),
    })
}

/// Result of a checked run: measured-interval stats and telemetry, plus
/// every invariant violation observed (empty on a healthy run).
#[derive(Clone, Debug)]
pub struct CheckedRun {
    /// Measurement-interval statistics (as from `run_workload_detailed`).
    pub stats: SimStats,
    /// Measurement-interval distribution telemetry.
    pub dists: SimDists,
    /// Violated invariants, in check order.
    pub violations: Vec<InvariantViolation>,
}

/// Like [`run_workload_detailed`](crate::run_workload_detailed) —
/// identical seed, so identical stats — but invariant violations come
/// back as data instead of a panic.
pub fn run_workload_checked(
    cfg: &CoreConfig,
    program: &Program,
    warmup: u64,
    measure: u64,
) -> CheckedRun {
    let mut sim = Simulator::new(cfg.clone(), program, 0xf0cced);
    let (stats, dists) = sim.run_detailed_unchecked(warmup, measure);
    let mut violations = Vec::new();
    violations.extend(check_stall_partition("measured", &stats));
    let full = sim.collect();
    violations.extend(check_stall_partition("full", &full));
    for (source, ledger) in sim.outcome_ledgers() {
        violations.extend(check_outcome_ledger(source, ledger));
    }
    CheckedRun {
        stats,
        dists,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload_detailed;
    use crate::stats::StallReason;
    use fdip_program::workload::{Workload, WorkloadFamily};

    fn tiny() -> Program {
        Workload::family_default("spec_a", WorkloadFamily::Spec, 301).build()
    }

    #[test]
    fn healthy_run_has_no_violations_and_matches_detailed() {
        let p = tiny();
        let cfg = CoreConfig::fdp();
        let checked = run_workload_checked(&cfg, &p, 2_000, 10_000);
        assert!(checked.violations.is_empty(), "{:?}", checked.violations);
        let (stats, dists) = run_workload_detailed(&cfg, &p, 2_000, 10_000);
        assert_eq!(checked.stats, stats);
        assert_eq!(
            checked.dists, dists,
            "checked and detailed runs must be the same run"
        );
    }

    #[test]
    fn perturbed_stall_bucket_is_detected() {
        let p = tiny();
        let mut checked = run_workload_checked(&CoreConfig::fdp(), &p, 2_000, 10_000);
        checked.stats.stall.charge(StallReason::Backend);
        let v = check_stall_partition("measured", &checked.stats).expect("leak detected");
        assert_eq!(v.invariant, "stall_partition");
        assert!(v.detail.contains("measured"), "{}", v.detail);
    }

    #[test]
    fn perturbed_ledger_is_detected() {
        let broken = OutcomeLedger {
            requests: 10,
            resolved: 6,
            unresolved: 3,
        };
        let v = check_outcome_ledger("fdp", broken).expect("drop detected");
        assert_eq!(v.invariant, "outcome_ledger");
        assert!(v.detail.contains("fdp"), "{}", v.detail);
        assert!(check_outcome_ledger(
            "fdp",
            OutcomeLedger {
                requests: 10,
                resolved: 6,
                unresolved: 4,
            }
        )
        .is_none());
    }

    #[test]
    fn violation_displays_invariant_name() {
        let v = InvariantViolation {
            invariant: "stall_partition",
            detail: "x".into(),
        };
        assert!(v.to_string().contains("stall_partition"));
    }
}
