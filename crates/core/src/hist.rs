//! Speculative predictor-history state and its checkpointing.
//!
//! Everything the prediction pipeline mutates speculatively lives in one
//! `Copy` bundle: the policy history (target or direction bits, paper
//! Eq. 1–3) with its incrementally-folded views, the idealized direction
//! history (for the `Ideal` policy and Gshare), and the RAS. The frontend
//! snapshots the bundle before every actual branch and restores a
//! snapshot on every flush (execute-time misprediction, PFC restream, or
//! GHR fixup).

use fdip_bpred::{FoldPlan, FoldedHistories, GlobalHistory, HistoryPolicy, Ras};
use fdip_types::Addr;

/// The speculative history bundle (64-byte GHR ×2 + folds + RAS; plain
/// `Copy` so checkpoint/restore is assignment).
#[derive(Copy, Clone, Debug)]
pub struct HistState {
    /// Policy history: taken-only target hashes under THR, direction
    /// bits otherwise. Indexes TAGE/ITTAGE through `folds`.
    pub ghr: GlobalHistory,
    /// Incrementally-maintained folds of `ghr`.
    pub folds: FoldedHistories,
    /// Idealized direction history (oracle branch detection): feeds
    /// Gshare, and *is* the policy history under `HistoryPolicy::Ideal`.
    pub ideal_dir: GlobalHistory,
    /// Speculative return address stack.
    pub ras: Ras,
}

impl HistState {
    /// Initial (empty) state for a given fold plan.
    pub fn new(plan: &FoldPlan) -> Self {
        HistState {
            ghr: GlobalHistory::new(),
            folds: plan.initial(),
            ideal_dir: GlobalHistory::new(),
            ras: Ras::new(),
        }
    }

    /// Pushes one direction bit into the policy history (and folds).
    pub fn push_policy_direction(&mut self, plan: &FoldPlan, taken: bool) {
        plan.push(&mut self.folds, &self.ghr, taken as u64, 1);
        self.ghr.push_bits(taken as u64, 1);
    }

    /// Pushes a taken-branch target hash into the policy history (paper
    /// Eq. 2–3).
    pub fn push_policy_target(&mut self, plan: &FoldPlan, pc: Addr, target: Addr) {
        let hash = GlobalHistory::target_hash(pc, target);
        plan.push(&mut self.folds, &self.ghr, hash, 2);
        self.ghr.push_bits(hash, 2);
    }

    /// Pushes one bit into the idealized direction history.
    pub fn push_ideal_dir(&mut self, taken: bool) {
        self.ideal_dir.push_bits(taken as u64, 1);
    }

    /// Records a *detected, predicted* branch outcome under `policy`.
    ///
    /// * THR: only taken branches contribute, via their target hash.
    /// * Direction policies: every detected branch contributes its
    ///   predicted direction bit.
    ///
    /// The idealized direction history is always maintained by the
    /// caller via [`HistState::push_ideal_dir`] (it depends on oracle
    /// detection, not on this call).
    pub fn record_branch(
        &mut self,
        plan: &FoldPlan,
        policy: HistoryPolicy,
        pc: Addr,
        taken: bool,
        target: Addr,
    ) {
        if policy.uses_target_history() {
            if taken {
                self.push_policy_target(plan, pc, target);
            }
        } else {
            self.push_policy_direction(plan, taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FoldPlan {
        let mut p = FoldPlan::new();
        p.register(16, 9);
        p.register(64, 11);
        p
    }

    #[test]
    fn thr_ignores_not_taken() {
        let plan = plan();
        let mut h = HistState::new(&plan);
        let before = h;
        h.record_branch(
            &plan,
            HistoryPolicy::Thr,
            Addr::new(0x100),
            false,
            Addr::NULL,
        );
        assert_eq!(h.ghr, before.ghr);
        assert_eq!(h.folds, before.folds);
        h.record_branch(
            &plan,
            HistoryPolicy::Thr,
            Addr::new(0x100),
            true,
            Addr::new(0x900),
        );
        assert_ne!(h.ghr, before.ghr);
    }

    #[test]
    fn direction_policy_records_both_directions() {
        let plan = plan();
        for policy in [
            HistoryPolicy::Ghr0,
            HistoryPolicy::Ghr1,
            HistoryPolicy::Ghr2,
            HistoryPolicy::Ghr3,
            HistoryPolicy::Ideal,
        ] {
            // Seed a 1-bit so a subsequent 0-bit shift is observable.
            let mut a = HistState::new(&plan);
            a.push_policy_direction(&plan, true);
            let mut b = a;
            a.record_branch(&plan, policy, Addr::new(0x100), false, Addr::NULL);
            b.record_branch(&plan, policy, Addr::new(0x100), true, Addr::new(0x900));
            // Not-taken still shifts the history (unlike THR)...
            assert_ne!(a.ghr.recent(4), b.ghr.recent(4), "{policy}");
            // ...and both directions are recorded distinctly.
            assert_eq!(a.ghr.recent(2), 0b10, "{policy}");
            assert_eq!(b.ghr.recent(2), 0b11, "{policy}");
        }
    }

    #[test]
    fn folds_track_ghr_through_records() {
        let plan = plan();
        let mut h = HistState::new(&plan);
        for i in 0..200u64 {
            if i % 3 == 0 {
                h.record_branch(
                    &plan,
                    HistoryPolicy::Thr,
                    Addr::new(0x1000 + i * 4),
                    true,
                    Addr::new(0x9000 + i * 32),
                );
            } else {
                h.record_branch(
                    &plan,
                    HistoryPolicy::Ghr0,
                    Addr::new(0x200),
                    i % 2 == 0,
                    Addr::NULL,
                );
            }
        }
        assert_eq!(h.folds, plan.recompute(&h.ghr));
    }

    #[test]
    fn checkpoint_restore_is_assignment() {
        let plan = plan();
        let mut h = HistState::new(&plan);
        h.ras.push(Addr::new(0x44));
        let ckpt = h;
        h.push_policy_direction(&plan, true);
        h.push_ideal_dir(true);
        h.ras.push(Addr::new(0x88));
        let restored = ckpt;
        assert_eq!(restored.ghr, GlobalHistory::new());
        assert_eq!(restored.ras.top(), Some(Addr::new(0x44)));
    }

    #[test]
    fn ideal_dir_is_independent_of_policy_history() {
        let plan = plan();
        let mut h = HistState::new(&plan);
        h.push_ideal_dir(true);
        assert_eq!(h.ghr, GlobalHistory::new());
        assert_ne!(h.ideal_dir, GlobalHistory::new());
    }
}
