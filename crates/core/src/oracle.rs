//! The committed-path oracle: a sliding window over the execution
//! engine's dynamic instruction stream, addressed by sequence number.
//!
//! The frontend consults it to tag predicted slots as on/off the correct
//! path, execute-time resolution reads actual branch outcomes from it,
//! and the retire stage releases consumed entries.
//!
//! The window is a power-of-two ring buffer: the slot of sequence `s` is
//! always `s & mask`, so lookups are one mask away from the backing
//! array, release is O(1) bookkeeping, and the buffer only grows
//! (doubling) on the rare occasion in-flight work exceeds its capacity.

use fdip_program::ExecutionEngine;
use fdip_types::{Addr, DynInstr, InstrKind};

/// Filler for never-read ring slots.
const DUMMY: DynInstr = DynInstr {
    pc: Addr::NULL,
    kind: InstrKind::Op(fdip_types::OpClass::Alu),
    taken: false,
    next_pc: Addr::NULL,
};

/// Sliding window over the committed instruction stream.
///
/// # Examples
///
/// ```
/// use fdip_program::{ExecutionEngine, ProgramBuilder, ProgramParams};
/// use fdip_sim::oracle::Oracle;
///
/// let program = ProgramBuilder::new(ProgramParams::default()).build("p");
/// let mut oracle = Oracle::new(ExecutionEngine::new(&program, 1));
/// let first = *oracle.get(0);
/// assert_eq!(first.pc, program.entry());
/// let fourth = *oracle.get(4);
/// assert_eq!(oracle.get(5).pc, fourth.next_pc);
/// ```
#[derive(Debug)]
pub struct Oracle<'p> {
    engine: ExecutionEngine<'p>,
    /// Ring storage; capacity is a power of two.
    buf: Vec<DynInstr>,
    mask: u64,
    /// Sequence number of the oldest retained instruction.
    base: u64,
    /// Retained instructions: sequences `base .. base + len`.
    len: u64,
}

impl<'p> Oracle<'p> {
    /// Wraps an execution engine positioned at its entry point.
    pub fn new(engine: ExecutionEngine<'p>) -> Self {
        let cap = 4096usize;
        Oracle {
            engine,
            buf: vec![DUMMY; cap],
            mask: cap as u64 - 1,
            base: 0,
            len: 0,
        }
    }

    /// Doubles the ring, re-homing every retained instruction to its
    /// slot under the new mask.
    #[cold]
    fn grow(&mut self) {
        let new_cap = self.buf.len() * 2;
        let new_mask = new_cap as u64 - 1;
        let mut new_buf = vec![DUMMY; new_cap];
        for seq in self.base..self.base + self.len {
            new_buf[(seq & new_mask) as usize] = self.buf[(seq & self.mask) as usize];
        }
        self.buf = new_buf;
        self.mask = new_mask;
    }

    /// The committed instruction with sequence number `seq`, generating
    /// the stream as needed.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was already released.
    #[inline]
    pub fn get(&mut self, seq: u64) -> &DynInstr {
        assert!(seq >= self.base, "sequence {seq} already released");
        if self.base + self.len <= seq {
            self.generate_to(seq);
        }
        &self.buf[(seq & self.mask) as usize]
    }

    /// Runs the engine until `seq` is in the window. Out of line so the
    /// common already-generated case inlines to a compare and a load.
    #[inline(never)]
    fn generate_to(&mut self, seq: u64) {
        while self.base + self.len <= seq {
            if self.len > self.mask {
                self.grow();
            }
            let i = ((self.base + self.len) & self.mask) as usize;
            self.buf[i] = self.engine.step();
            self.len += 1;
        }
    }

    /// Releases all instructions with sequence numbers below `seq`
    /// (called as instructions retire).
    #[inline]
    pub fn release_below(&mut self, seq: u64) {
        if seq > self.base {
            let n = (seq - self.base).min(self.len);
            self.base += n;
            self.len -= n;
        }
    }

    /// Current window size (bounded by in-flight work).
    pub fn window_len(&self) -> usize {
        self.len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_program::{ProgramBuilder, ProgramParams};

    fn params() -> ProgramParams {
        ProgramParams {
            seed: 3,
            num_funcs: 16,
            ..ProgramParams::default()
        }
    }

    #[test]
    fn stream_is_contiguous_and_stable() {
        let p = ProgramBuilder::new(params()).build("p");
        let mut o = Oracle::new(ExecutionEngine::new(&p, 7));
        let d10 = *o.get(10);
        let d11 = *o.get(11);
        assert_eq!(d10.next_pc, d11.pc);
        // Re-reading gives the same instruction.
        assert_eq!(*o.get(10), d10);
    }

    #[test]
    fn release_advances_base() {
        let p = ProgramBuilder::new(params()).build("p");
        let mut o = Oracle::new(ExecutionEngine::new(&p, 7));
        o.get(100);
        assert_eq!(o.window_len(), 101);
        o.release_below(50);
        assert_eq!(o.window_len(), 51);
        // Still addressable above the release point.
        o.get(50);
        o.get(100);
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn reading_released_seq_panics() {
        let p = ProgramBuilder::new(params()).build("p");
        let mut o = Oracle::new(ExecutionEngine::new(&p, 7));
        o.get(10);
        o.release_below(5);
        o.get(3);
    }

    #[test]
    fn window_grows_past_initial_capacity_without_losing_entries() {
        let p = ProgramBuilder::new(params()).build("p");
        let mut o = Oracle::new(ExecutionEngine::new(&p, 7));
        // Hold everything (no release) well past the 4096 initial ring.
        let last = 10_000u64;
        let d0 = *o.get(0);
        o.get(last);
        assert_eq!(o.window_len() as u64, last + 1);
        // Old and new entries both intact, stream still contiguous.
        assert_eq!(*o.get(0), d0);
        for seq in [1u64, 4095, 4096, 4097, 9_999] {
            let next_pc = o.get(seq).next_pc;
            assert_eq!(next_pc, o.get(seq + 1).pc, "seq {seq}");
        }
    }

    #[test]
    fn release_beyond_generated_is_clamped() {
        let p = ProgramBuilder::new(params()).build("p");
        let mut o = Oracle::new(ExecutionEngine::new(&p, 7));
        o.get(10);
        o.release_below(1_000);
        // Only the 11 generated instructions could be released.
        assert_eq!(o.window_len(), 0);
        // The stream continues from where generation stopped.
        o.get(11);
        assert_eq!(o.window_len(), 1);
    }
}
