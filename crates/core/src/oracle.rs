//! The committed-path oracle: a sliding window over the execution
//! engine's dynamic instruction stream, addressed by sequence number.
//!
//! The frontend consults it to tag predicted slots as on/off the correct
//! path, execute-time resolution reads actual branch outcomes from it,
//! and the retire stage releases consumed entries.

use fdip_program::ExecutionEngine;
use fdip_types::DynInstr;
use std::collections::VecDeque;

/// Sliding window over the committed instruction stream.
///
/// # Examples
///
/// ```
/// use fdip_program::{ExecutionEngine, ProgramBuilder, ProgramParams};
/// use fdip_sim::oracle::Oracle;
///
/// let program = ProgramBuilder::new(ProgramParams::default()).build("p");
/// let mut oracle = Oracle::new(ExecutionEngine::new(&program, 1));
/// let first = *oracle.get(0);
/// assert_eq!(first.pc, program.entry());
/// let fourth = *oracle.get(4);
/// assert_eq!(oracle.get(5).pc, fourth.next_pc);
/// ```
#[derive(Debug)]
pub struct Oracle<'p> {
    engine: ExecutionEngine<'p>,
    window: VecDeque<DynInstr>,
    /// Sequence number of `window[0]`.
    base: u64,
}

impl<'p> Oracle<'p> {
    /// Wraps an execution engine positioned at its entry point.
    pub fn new(engine: ExecutionEngine<'p>) -> Self {
        Oracle {
            engine,
            window: VecDeque::with_capacity(4096),
            base: 0,
        }
    }

    /// The committed instruction with sequence number `seq`, generating
    /// the stream as needed.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was already released.
    pub fn get(&mut self, seq: u64) -> &DynInstr {
        assert!(seq >= self.base, "sequence {seq} already released");
        while self.base + self.window.len() as u64 <= seq {
            let d = self.engine.step();
            self.window.push_back(d);
        }
        &self.window[(seq - self.base) as usize]
    }

    /// Releases all instructions with sequence numbers below `seq`
    /// (called as instructions retire).
    pub fn release_below(&mut self, seq: u64) {
        while self.base < seq && !self.window.is_empty() {
            self.window.pop_front();
            self.base += 1;
        }
    }

    /// Current window size (bounded by in-flight work).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_program::{ProgramBuilder, ProgramParams};

    fn params() -> ProgramParams {
        ProgramParams {
            seed: 3,
            num_funcs: 16,
            ..ProgramParams::default()
        }
    }

    #[test]
    fn stream_is_contiguous_and_stable() {
        let p = ProgramBuilder::new(params()).build("p");
        let mut o = Oracle::new(ExecutionEngine::new(&p, 7));
        let d10 = *o.get(10);
        let d11 = *o.get(11);
        assert_eq!(d10.next_pc, d11.pc);
        // Re-reading gives the same instruction.
        assert_eq!(*o.get(10), d10);
    }

    #[test]
    fn release_advances_base() {
        let p = ProgramBuilder::new(params()).build("p");
        let mut o = Oracle::new(ExecutionEngine::new(&p, 7));
        o.get(100);
        assert_eq!(o.window_len(), 101);
        o.release_below(50);
        assert_eq!(o.window_len(), 51);
        // Still addressable above the release point.
        o.get(50);
        o.get(100);
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn reading_released_seq_panics() {
        let p = ProgramBuilder::new(params()).build("p");
        let mut o = Oracle::new(ExecutionEngine::new(&p, 7));
        o.get(10);
        o.release_below(5);
        o.get(3);
    }
}
