//! The cycle-level core simulator: decoupled frontend (branch-prediction
//! pipeline → FTQ → instruction-fetch pipeline with PFC) plus a
//! simplified out-of-order backend.
//!
//! Per-cycle stage order (reverse pipeline, so state flows one stage per
//! cycle): resolve → retire → dispatch → fetch → predict → prefetch.
//!
//! The frontend runs on its *predicted* path. Because the synthetic
//! program provides a full code image, wrong-path fetch, pre-decode, and
//! PFC all operate on real instruction bytes; an oracle window over the
//! committed stream tags on-path work and supplies resolution outcomes
//! (see `DESIGN.md` §4).

use crate::backend::{DataAddressGen, FetchedInstr, RobEntry, UnresolvedBranch};
use crate::config::CoreConfig;
use crate::dists::SimDists;
use crate::ftq::{FillState, Ftq, FtqEntry, SlotBranch};
use crate::hist::HistState;
use crate::meta::{self, StaticMeta};
use crate::oracle::Oracle;
use crate::predictors::Predictors;
use crate::probe::ProbeTable;
use crate::stats::{SimStats, StallReason};
use fdip_bpred::{IttagePrediction, TagePrediction};
use fdip_mem::{FillSrc, Hierarchy};
use fdip_prefetch::Prefetcher;
use fdip_program::{ExecutionEngine, Program};
use fdip_trace::{TraceEventKind, Tracer};
use fdip_types::{Addr, BranchKind, Cycle};
use std::collections::VecDeque;

/// Slots in the prefetch re-issue (churn) filter — its hard memory cap.
const REISSUE_FILTER_SLOTS: usize = 4096;

/// Cycles a prefetched line stays suppressed in the re-issue filter.
const REISSUE_WINDOW: Cycle = 768;

/// The assembled core simulator for one workload.
pub struct Simulator<'p> {
    cfg: CoreConfig,
    oracle: Oracle<'p>,
    preds: Predictors,
    mem: Hierarchy,
    prefetcher: Prefetcher,
    ftq: Ftq,
    dq: VecDeque<FetchedInstr>,
    rob: VecDeque<RobEntry>,
    unresolved: VecDeque<UnresolvedBranch>,
    /// Speculative history at the prediction frontier.
    hist: HistState,
    pred_pc: Addr,
    pred_on_path: bool,
    pred_seq: u64,
    pred_stall_until: Cycle,
    /// Bucket a `pred_stall_until` window charges to once its BTB-latency
    /// prefix elapses ([`StallReason::Redirect`] or
    /// [`StallReason::PfcRestream`]).
    stall_src: StallReason,
    /// End of the BTB-latency prefix of the current redirect window;
    /// cycles before this charge to [`StallReason::PredLatency`].
    stall_btb_until: Cycle,
    /// Bucket charged last cycle (edge detector for the tracer's
    /// `StallTransition` events).
    last_stall: StallReason,
    trace: Tracer,
    retire_seq: u64,
    now: Cycle,
    next_id: u64,
    data_gen: DataAddressGen,
    /// Flat static-instruction metadata (the hot-path view of the code
    /// image and behaviour models).
    meta: StaticMeta,
    /// Per image slot, one bit: does an idealized ("perfect") BTB hold
    /// this branch? Real BTBs only ever allocate branches that are taken
    /// at least once, so never-taken conditionals stay undetectable even
    /// under a perfect BTB (§VI-A). Derived lazily from [`StaticMeta`];
    /// empty (no allocation) unless `cfg.perfect_btb`.
    perfect_btb_bits: Vec<u64>,
    pf_queue: VecDeque<u64>,
    pf_scratch: Vec<u64>,
    /// Recently-issued prefetch lines -> issue cycle (churn filter).
    /// Only prefetchers with a re-issue filter allocate one.
    pf_recent: Option<ProbeTable>,
    stats: SimStats,
    dists: SimDists,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator positioned at the program entry.
    ///
    /// The LLC is pre-warmed with the code image, modelling the paper's
    /// 50M-instruction warm-up after which the instruction footprint is
    /// LLC-resident (DESIGN.md §2).
    pub fn new(cfg: CoreConfig, program: &'p Program, seed: u64) -> Self {
        let preds = Predictors::new(&cfg);
        let hist = HistState::new(&preds.plan);
        let backend = cfg.backend;
        let mut mem = Hierarchy::new(cfg.mem);
        let base_line = program.image().base().line_number();
        let end_line = (program.image().base() + program.image().footprint_bytes()).line_number();
        mem.prewarm_llc_instr(base_line..=end_line);
        let meta = StaticMeta::new(program);
        let mut preds = preds;
        // Functional warm-up: replay the committed stream architecturally
        // and train the BTB, as ChampSim's long warm-up does.
        if cfg.func_warmup > 0 {
            let mut engine = ExecutionEngine::new(program, seed);
            for _ in 0..cfg.func_warmup {
                let d = engine.step();
                if let Some(kind) = d.kind.branch_kind() {
                    if d.taken {
                        preds.btb.insert(d.pc, kind, d.next_pc);
                    } else if cfg.policy.allocate_not_taken() {
                        if let Some(t) = meta.static_target_at(d.pc) {
                            preds.btb.insert(d.pc, kind, t);
                        }
                    }
                }
            }
        }
        let perfect_btb_bits = if cfg.perfect_btb {
            meta.perfect_btb_bits()
        } else {
            Vec::new()
        };
        let prefetcher = cfg.prefetcher.build();
        let pf_recent = prefetcher
            .has_reissue_filter()
            .then(|| ProbeTable::new(REISSUE_FILTER_SLOTS));
        Simulator {
            oracle: Oracle::new(ExecutionEngine::new(program, seed)),
            mem,
            prefetcher,
            ftq: Ftq::new(cfg.ftq_entries),
            dq: VecDeque::with_capacity(backend.decode_queue),
            rob: VecDeque::with_capacity(backend.rob_size),
            unresolved: VecDeque::new(),
            hist,
            pred_pc: program.entry(),
            pred_on_path: true,
            pred_seq: 0,
            pred_stall_until: 0,
            stall_src: StallReason::Redirect,
            stall_btb_until: 0,
            last_stall: StallReason::Committing,
            trace: Tracer::disabled(),
            retire_seq: 0,
            now: 0,
            next_id: 0,
            data_gen: DataAddressGen::new(
                program.image().len(),
                backend.data_hot_bytes,
                backend.data_total_bytes,
                backend.data_hot_pct,
            ),
            pf_queue: VecDeque::new(),
            pf_scratch: Vec::new(),
            pf_recent,
            stats: SimStats::default(),
            dists: SimDists::new(),
            meta,
            perfect_btb_bits,
            preds,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Words allocated for the perfect-BTB lookup bitset — `0` unless
    /// the configuration enables `perfect_btb` (the lookup is derived
    /// lazily from [`StaticMeta`], so ordinary configurations pay
    /// nothing for it).
    pub fn perfect_btb_table_words(&self) -> usize {
        self.perfect_btb_bits.capacity()
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Runs until `warmup + measure` instructions have retired and
    /// returns the statistics of the measurement interval only.
    ///
    /// # Panics
    ///
    /// Panics if the core deadlocks (a liveness bug) — no forward
    /// progress over a very large cycle budget.
    pub fn run(&mut self, warmup: u64, measure: u64) -> SimStats {
        self.run_detailed(warmup, measure).0
    }

    /// Like [`Simulator::run`], but also returns the distribution
    /// telemetry (histograms and sampled IPC) of the measurement
    /// interval. Warm-up is excluded by clearing the distributions at
    /// the measurement boundary.
    pub fn run_detailed(&mut self, warmup: u64, measure: u64) -> (SimStats, SimDists) {
        let (delta, dists) = self.run_detailed_unchecked(warmup, measure);
        // Cycle-accounting invariant: every measured cycle lands in
        // exactly one stall bucket.
        assert_eq!(
            delta.stall.sum(),
            delta.cycles,
            "stall buckets must partition the measured cycles"
        );
        (delta, dists)
    }

    /// [`Simulator::run_detailed`] without the stall-partition assertion
    /// — the checked-run path (`fdip_sim::check`) turns violations into
    /// data instead of a panic.
    pub fn run_detailed_unchecked(&mut self, warmup: u64, measure: u64) -> (SimStats, SimDists) {
        self.run_until_retired(warmup);
        let snap = self.collect();
        self.dists.clear(self.now, self.stats.retired);
        self.trace.clear();
        self.run_until_retired(warmup + measure);
        (self.collect().delta(&snap), self.dists.clone())
    }

    /// The prefetch-request ledgers of the L1i, one per prefetch fill
    /// source: lifetime `requests`, `resolved` outcomes, and in-flight
    /// `unresolved` lines. A healthy simulator keeps
    /// `resolved + unresolved == requests` for both sources at all
    /// times.
    pub fn outcome_ledgers(&self) -> [(&'static str, crate::check::OutcomeLedger); 2] {
        let l1i = self.mem.l1i_stats();
        let ledger =
            |outcomes: fdip_mem::PrefetchOutcomes, src: FillSrc| crate::check::OutcomeLedger {
                requests: outcomes.requests,
                resolved: outcomes.resolved(),
                unresolved: self.mem.l1i_unresolved_prefetches(src),
            };
        [
            ("fdp", ledger(l1i.outcomes_fdp, FillSrc::Fdp)),
            ("pf", ledger(l1i.outcomes_pf, FillSrc::Pf)),
        ]
    }

    /// Enables the event tracer with a ring buffer of `capacity` events
    /// (the measurement boundary clears it, so an exported trace covers
    /// the tail of the measurement interval only).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Tracer::with_capacity(capacity);
    }

    /// The event tracer (disabled and empty unless
    /// [`Simulator::enable_trace`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.trace
    }

    /// Takes the tracer out of the simulator, leaving a disabled one.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::replace(&mut self.trace, Tracer::disabled())
    }

    /// The distribution telemetry recorded so far.
    pub fn dists(&self) -> &SimDists {
        &self.dists
    }

    fn run_until_retired(&mut self, target: u64) {
        let mut guard = 0u64;
        while self.stats.retired < target {
            let before = self.stats.retired;
            self.step();
            if self.stats.retired == before {
                guard += 1;
                assert!(
                    guard < 2_000_000,
                    "no retirement for 2M cycles at cycle {} (retired {}, FTQ {}, DQ {}, ROB {})",
                    self.now,
                    self.stats.retired,
                    self.ftq.len(),
                    self.dq.len(),
                    self.rob.len()
                );
            } else {
                guard = 0;
            }
        }
    }

    /// Snapshot of all counters (including cache/BTB state).
    pub fn collect(&self) -> SimStats {
        let mut s = self.stats;
        s.l1i = self.mem.l1i_stats();
        s.l1d = self.mem.l1d_stats();
        s.l2 = self.mem.l2_stats();
        s.traffic = self.mem.traffic();
        s.btb = self.preds.btb.stats();
        s
    }

    /// Advances the core by one cycle.
    pub fn step(&mut self) {
        let retired_before = self.stats.retired;
        self.resolve_branches();
        self.retire();
        self.dispatch();
        self.fetch_stage();
        self.predict_stage();
        self.issue_prefetches();
        // Cycle accounting: the two common cases (work retired, or the
        // backend holding a full decode group) are decided from state
        // already at hand; only genuinely starved cycles walk the
        // frontend-stall priority tree.
        let starved = self.dq.len() < self.cfg.decode_width;
        let reason = if self.stats.retired > retired_before {
            StallReason::Committing
        } else if !starved {
            StallReason::Backend
        } else {
            self.classify_frontend_stall()
        };
        self.stats.stall.charge(reason);
        if self.trace.enabled() && reason != self.last_stall {
            self.trace.record(
                self.now,
                TraceEventKind::StallTransition,
                reason.index() as u64,
                self.last_stall.index() as u64,
            );
            self.last_stall = reason;
        }
        if starved {
            self.stats.starvation_cycles += 1;
        }
        self.stats.ftq_occupancy_sum += self.ftq.len() as u64;
        self.dists.ftq_occupancy.record(self.ftq.len() as u64);
        self.dists.decode_queue_fill.record(self.dq.len() as u64);
        self.stats.cycles += 1;
        self.now += 1;
        self.dists.maybe_sample_ipc(self.now, self.stats.retired);
    }

    /// Charges a starved, non-retiring cycle to one frontend
    /// [`StallReason`] bucket (`step` decides `Committing`/`Backend`
    /// before calling this — work done beats every stall, and a decode
    /// queue with a full decode group means the frontend kept up).
    ///
    /// Priority tree: an active redirect window splits into its
    /// BTB-latency prefix and the penalty's source; otherwise the FTQ
    /// head tells the story (no head → prediction starved the queue; a
    /// fill still in flight is an exposed miss only if it actually
    /// missed or was stretched by an in-flight merge beyond the hit
    /// latency).
    fn classify_frontend_stall(&self) -> StallReason {
        if self.now < self.pred_stall_until {
            if self.now < self.stall_btb_until {
                return StallReason::PredLatency;
            }
            return self.stall_src;
        }
        match self.ftq.head() {
            None => StallReason::FtqEmpty,
            Some(e) => match e.fill {
                FillState::Waiting => StallReason::PredLatency,
                FillState::Requested {
                    ready_at,
                    missed,
                    requested_at,
                    ..
                } => {
                    if ready_at <= self.now {
                        StallReason::FetchBw
                    } else if missed || ready_at > requested_at + self.cfg.mem.l1i.hit_latency {
                        StallReason::IcacheMiss
                    } else {
                        StallReason::PredLatency
                    }
                }
            },
        }
    }

    // ----------------------------------------------------------------
    // Resolution & flush
    // ----------------------------------------------------------------

    fn resolve_branches(&mut self) {
        while self
            .unresolved
            .front()
            .is_some_and(|front| front.resolve_at <= self.now)
        {
            let Some(u) = self.unresolved.pop_front() else {
                break;
            };
            let actual = *self.oracle.get(u.seq);
            let predicted_next = if u.rec.predicted_taken {
                u.rec.predicted_target
            } else {
                u.pc.next_instr()
            };
            let mispredicted = predicted_next != actual.next_pc;
            self.train(&u, actual.taken, actual.next_pc);
            if mispredicted {
                self.stats.mispredicts += 1;
                self.categorize_mispredict(&u, actual.taken);
                self.stats.flushes += 1;
                self.flush_after(&u, actual.taken, actual.next_pc);
            }
        }
    }

    fn categorize_mispredict(&mut self, u: &UnresolvedBranch, actual_taken: bool) {
        if !u.rec.detected && actual_taken && !u.rec.predicted_taken {
            self.stats.misp_undetected += 1;
        } else if u.kind.is_conditional() && u.rec.predicted_taken != actual_taken {
            self.stats.misp_cond_dir += 1;
        } else if u.kind.is_indirect() {
            self.stats.misp_indirect += 1;
        } else if u.kind.is_return() {
            self.stats.misp_return += 1;
        } else {
            self.stats.misp_cond_dir += 1;
        }
    }

    fn train(&mut self, u: &UnresolvedBranch, actual_taken: bool, actual_next: Addr) {
        if u.kind.is_conditional() {
            if let Some(lp) = self.preds.loop_pred.as_mut() {
                lp.update(u.pc, actual_taken);
            }
            self.preds.dir.update(
                u.pc,
                &u.rec.ckpt.folds,
                &u.rec.ckpt.ideal_dir,
                actual_taken,
                u.rec.tage_pred,
            );
        }
        if u.kind.is_indirect() {
            self.preds
                .ittage
                .update(u.pc, &u.rec.ckpt.folds, actual_next, u.rec.itt_pred);
        }
        // BTB allocation policy (Table V column).
        if actual_taken {
            self.preds.btb.insert(u.pc, u.kind, actual_next);
        } else if self.cfg.policy.allocate_not_taken() {
            if let Some(t) = self.meta.static_target_at(u.pc) {
                self.preds.btb.insert(u.pc, u.kind, t);
            }
        }
    }

    /// Execute-time flush: squash everything younger than `u`, repair
    /// history from its checkpoint, redirect prediction.
    fn flush_after(&mut self, u: &UnresolvedBranch, actual_taken: bool, actual_next: Addr) {
        let id = u.id;
        self.rob.retain(|e| e.id <= id);
        self.unresolved.retain(|b| b.id <= id);
        self.dq.clear();
        self.ftq.flush_all();

        let mut h = u.rec.ckpt;
        h.record_branch(
            &self.preds.plan,
            self.cfg.policy,
            u.pc,
            actual_taken,
            actual_next,
        );
        h.push_ideal_dir(actual_taken);
        if actual_taken && u.kind.is_call() {
            h.ras.push(u.pc.next_instr());
        }
        if actual_taken && u.kind.is_return() {
            h.ras.pop();
        }
        self.hist = h;

        self.pred_pc = actual_next;
        self.pred_on_path = true;
        self.pred_seq = u.seq + 1;
        self.pred_stall_until = self.now + self.cfg.btb_latency + self.cfg.redirect_penalty;
        self.stall_btb_until = self.now + self.cfg.btb_latency;
        self.stall_src = StallReason::Redirect;
        self.trace.record(
            self.now,
            TraceEventKind::Flush,
            u.pc.raw(),
            actual_next.raw(),
        );
        if let Some(lp) = self.preds.loop_pred.as_mut() {
            lp.flush_speculation();
        }
    }

    // ----------------------------------------------------------------
    // Retire & dispatch
    // ----------------------------------------------------------------

    fn retire(&mut self) {
        let mut n = 0;
        while n < self.cfg.backend.retire_width {
            let Some(head) = self.rob.front() else { break };
            if head.complete_at > self.now {
                break;
            }
            let Some(e) = self.rob.pop_front() else { break };
            let Some(seq) = e.seq else {
                debug_assert!(false, "wrong-path instruction reached retire");
                break;
            };
            self.stats.retired += 1;
            if e.is_branch {
                self.stats.retired_branches += 1;
                if e.is_cond {
                    self.stats.retired_cond += 1;
                }
            }
            self.retire_seq = seq + 1;
            n += 1;
        }
        self.oracle.release_below(self.retire_seq);
    }

    fn exec_latency(&mut self, fi: &FetchedInstr) -> u64 {
        match fi.tag {
            meta::TAG_MUL => 3,
            meta::TAG_FP => 4,
            meta::TAG_LOAD => {
                if fi.seq.is_some() {
                    if let Some(idx) = self.meta.slot_of(fi.pc) {
                        let line = self.data_gen.next_line(idx);
                        let ready = self.mem.access_data_line(line, self.now);
                        return (ready - self.now).max(1);
                    }
                }
                1
            }
            _ => 1,
        }
    }

    fn dispatch(&mut self) {
        let mut n = 0;
        while n < self.cfg.backend.dispatch_width && self.rob.len() < self.cfg.backend.rob_size {
            let Some(fi) = self.dq.pop_front() else { break };
            let lat = self.exec_latency(&fi);
            let complete_at = self.now + self.cfg.backend.frontend_depth + lat;
            let is_branch = meta::tag_is_branch(fi.tag);
            let is_cond = fi.tag == meta::TAG_COND_DIRECT;
            if let (Some(seq), Some(rec)) = (fi.seq, fi.branch) {
                self.unresolved.push_back(UnresolvedBranch {
                    id: fi.id,
                    resolve_at: self.now + self.cfg.backend.frontend_depth + 1,
                    pc: fi.pc,
                    seq,
                    kind: rec.kind,
                    rec,
                });
            }
            self.rob.push_back(RobEntry {
                id: fi.id,
                seq: fi.seq,
                is_branch,
                is_cond,
                complete_at,
            });
            n += 1;
        }
    }

    // ----------------------------------------------------------------
    // Instruction fetch pipeline (fills, fetch, PFC)
    // ----------------------------------------------------------------

    fn fetch_stage(&mut self) {
        self.fill_stage();
        self.consume_head();
    }

    /// I-TLB/I-cache tag lookups for the two oldest unprobed entries;
    /// misses start fills immediately, decoupled from the decode queue
    /// (§IV-C).
    fn fill_stage(&mut self) {
        // At most two entries per cycle: a fixed pair keeps this
        // per-cycle stage allocation-free.
        let mut picked = [usize::MAX; 2];
        let mut n = 0;
        for (idx, e) in self.ftq.iter().enumerate() {
            if e.fill == FillState::Waiting {
                picked[n] = idx;
                n += 1;
                if n == 2 {
                    break;
                }
            }
        }
        for idx in picked.into_iter().take(n) {
            let Some((line, was_head)) = self.ftq.get_mut(idx).map(|e| (e.line(), idx == 0)) else {
                continue;
            };
            if self.cfg.prefetcher.is_perfect() {
                self.mem.prefetch_instr_line_instant(line, self.now);
            }
            let present = self.mem.instr_line_present(line);
            let ready_at = self
                .mem
                .fetch_instr_line_decoupled(line, self.now, !was_head);
            if self.trace.enabled() {
                if let Some((src, late)) = self.mem.take_last_instr_use() {
                    let b = (src == FillSrc::Pf) as u64 | (late as u64) << 1;
                    self.trace
                        .record(self.now, TraceEventKind::PrefetchUse, line, b);
                }
            }
            let missed = !present;
            self.prefetcher
                .on_access(line, present, self.now, &mut self.pf_scratch);
            self.stats.prefetch_candidates += self.pf_scratch.len() as u64;
            for l in self.pf_scratch.drain(..) {
                self.pf_queue.push_back(l);
            }
            if missed && self.cfg.prefetcher.wants_btb_prefetch() {
                self.btb_prefetch_line(line);
            }
            let Some(e) = self.ftq.get_mut(idx) else {
                continue;
            };
            e.fill = FillState::Requested {
                ready_at,
                missed,
                was_head,
                requested_at: self.now,
            };
        }
    }

    /// BTB prefetching (§VI-E): pre-decode a filled line and install all
    /// PC-relative branches, blindly.
    fn btb_prefetch_line(&mut self, line: u64) {
        for i in self.meta.slots_of_line(line) {
            if self.meta.flags(i) & meta::F_DIRECT != 0 {
                let Some(kind) = meta::tag_branch_kind(self.meta.tag(i)) else {
                    continue;
                };
                self.preds
                    .btb
                    .insert(self.meta.addr_of(i), kind, self.meta.target(i));
            }
        }
    }

    fn classify_exposure(&mut self, e: &FtqEntry) {
        if let FillState::Requested {
            ready_at,
            missed,
            was_head,
            requested_at,
        } = e.fill
        {
            // Lead time the decoupled frontend achieved for this entry:
            // fill probe → first demand at the FTQ head. Entries probed
            // only once they were already head get a lead of zero.
            let demanded_at = e.head_since.unwrap_or(requested_at);
            self.dists
                .prefetch_lead_time
                .record(demanded_at.saturating_sub(requested_at));
            if !missed {
                return;
            }
            if was_head {
                self.stats.miss_full += 1;
            } else if e.head_since.is_some_and(|h| ready_at > h) {
                self.stats.miss_partial += 1;
            } else {
                self.stats.miss_covered += 1;
            }
        }
    }

    /// Fetches up to `fetch_width` instructions from the FTQ head into
    /// the decode queue, running pre-decode (PFC / history fixup).
    fn consume_head(&mut self) {
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width && self.dq.len() < self.cfg.backend.decode_queue {
            let now = self.now;
            let Some(head) = self.ftq.head_mut() else {
                break;
            };
            if head.head_since.is_none() {
                head.head_since = Some(now);
            }
            let FillState::Requested { ready_at, .. } = head.fill else {
                break;
            };
            if ready_at > now {
                break;
            }
            if head.is_drained() {
                if let Some(e) = self.ftq.pop_head() {
                    self.classify_exposure(&e);
                }
                continue;
            }
            let slot = head.fetched_upto;
            let pc = head.addr_of_offset(slot);
            let seq = head.seq_of_offset(slot);
            let is_term = head.predicted_taken && slot == head.end_offset;
            let hint = (head.hints >> slot) & 1 == 1;
            let rec = if head.branches.first().map(|b| b.offset) == Some(slot) {
                Some(head.branches.remove(0))
            } else {
                None
            };
            head.fetched_upto += 1;
            let drained = head.is_drained();

            let tag = self.meta.tag_at(pc);
            let id = self.next_id;
            self.next_id += 1;

            if let Some(mut r) = rec {
                if !is_term {
                    if let Some((taken, target, case1)) = self.pfc_decision(&r, pc, hint) {
                        // Restream: fix history, flush, push the branch
                        // with its corrected prediction.
                        if case1 {
                            self.stats.pfc_case1 += 1;
                        } else if taken {
                            self.stats.pfc_case2 += 1;
                        }
                        if taken {
                            self.stats.pfc_restreams += 1;
                        } else {
                            self.stats.fixup_flushes += 1;
                        }
                        r.predicted_taken = taken;
                        r.predicted_target = target;
                        self.restream(&r, pc, seq, taken, target);
                        self.dq.push_back(FetchedInstr {
                            id,
                            pc,
                            tag,
                            seq,
                            branch: Some(r),
                        });
                        // The rest of the head entry and everything
                        // younger is flushed.
                        if let Some(e) = self.ftq.pop_head() {
                            self.classify_exposure(&e);
                        }
                        self.ftq.flush_all();
                        break;
                    }
                }
                // Branch-triggered prefetching (D-JOLT) hooks the
                // fetched branch stream (correct-path tagged only, so
                // wrong-path noise cannot scramble the signatures), with
                // the frontend's target view.
                let on_path = seq.is_some();
                let pf_target = if r.predicted_taken {
                    r.predicted_target
                } else {
                    self.meta.static_target_at(pc).unwrap_or(Addr::NULL)
                };
                if on_path {
                    let before = self.pf_scratch.len();
                    self.prefetcher
                        .on_branch(pc, r.kind, pf_target, &mut self.pf_scratch);
                    self.stats.prefetch_candidates += (self.pf_scratch.len() - before) as u64;
                    while let Some(l) = self.pf_scratch.pop() {
                        self.pf_queue.push_back(l);
                    }
                }
                self.dq.push_back(FetchedInstr {
                    id,
                    pc,
                    tag,
                    seq,
                    branch: Some(r),
                });
            } else {
                self.dq.push_back(FetchedInstr {
                    id,
                    pc,
                    tag,
                    seq,
                    branch: None,
                });
            }
            if drained {
                if let Some(e) = self.ftq.pop_head() {
                    self.classify_exposure(&e);
                }
            }
            fetched += 1;
        }
    }

    /// Pre-decode decision for a non-terminator actual branch: returns
    /// `Some((taken, target, is_case1))` when the stream must be
    /// re-steered (PFC cases of Fig. 5) or the history repaired (GHR2/3
    /// fixup, with `taken = false` and a sequential restream).
    fn pfc_decision(&self, r: &SlotBranch, pc: Addr, hint: bool) -> Option<(bool, Addr, bool)> {
        let image_target = self.meta.static_target_at(pc);
        if self.cfg.pfc {
            if r.kind.is_unconditional() && r.kind.pfc_target_available() {
                // Case 1: an unconditional branch before the block end —
                // wrong direction prediction (hint 0) or BTB miss.
                let target = if r.kind.is_return() {
                    r.ckpt.ras.top()
                } else {
                    image_target
                };
                if let Some(t) = target {
                    return Some((true, t, true));
                }
            }
            if r.kind.is_conditional() && hint && !r.detected {
                // Case 2: hinted-taken PC-relative conditional that
                // missed in the BTB.
                if let Some(t) = image_target {
                    return Some((true, t, false));
                }
            }
        }
        if self.cfg.policy.fixup_not_taken() && !r.detected {
            // Direction-history repair: push the predicted direction bit
            // this branch should have contributed and restream
            // sequentially (costs a frontend flush, §III-A).
            return Some((false, pc.next_instr(), false));
        }
        None
    }

    /// Re-steers the prediction pipeline from pre-decode (PFC or fixup).
    fn restream(&mut self, r: &SlotBranch, pc: Addr, seq: Option<u64>, taken: bool, target: Addr) {
        let mut h = r.ckpt;
        if taken || !self.cfg.policy.uses_target_history() {
            h.record_branch(&self.preds.plan, self.cfg.policy, pc, taken, target);
        }
        h.push_ideal_dir(taken);
        if taken && r.kind.is_call() {
            h.ras.push(pc.next_instr());
        }
        if taken && r.kind.is_return() {
            h.ras.pop();
        }
        self.hist = h;
        if let Some(lp) = self.preds.loop_pred.as_mut() {
            lp.flush_speculation();
        }
        let next = if taken { target } else { pc.next_instr() };
        self.pred_pc = next;
        self.pred_stall_until = self.now + self.cfg.btb_latency + self.cfg.pfc_redirect_penalty;
        self.stall_btb_until = self.now + self.cfg.btb_latency;
        self.stall_src = StallReason::PfcRestream;
        self.trace
            .record(self.now, TraceEventKind::Restream, pc.raw(), taken as u64);
        match seq {
            Some(s) => {
                let actual = *self.oracle.get(s);
                if actual.next_pc == next {
                    self.pred_on_path = true;
                    self.pred_seq = s + 1;
                } else {
                    self.pred_on_path = false;
                    if taken {
                        self.stats.pfc_harmful += 1;
                    }
                }
            }
            None => self.pred_on_path = false,
        }
    }

    // ----------------------------------------------------------------
    // Branch prediction pipeline
    // ----------------------------------------------------------------

    /// One prediction cycle: probe up to `pred_bw` sequential slots,
    /// terminate at the first predicted-taken branch (unless B18m), and
    /// insert the covered 32-byte blocks into the FTQ.
    fn predict_stage(&mut self) {
        if self.now < self.pred_stall_until {
            return;
        }
        // Small FTQs (the no-FDP 2-entry configuration) still predict:
        // gate on having at least one free entry, and stop opening new
        // blocks when space runs out.
        let mut budget = self.ftq.free().min(self.cfg.max_blocks_per_predict());
        if budget == 0 {
            return;
        }
        let mut slots = self.cfg.pred_bw;
        let mut cursor = self.pred_pc;
        let mut open: Option<FtqEntry> = None;

        while slots > 0 {
            let pc = cursor;
            let offset = pc.ftq_offset();
            if open.is_none() {
                if budget == 0 {
                    break;
                }
                budget -= 1;
                open = Some(FtqEntry::new(pc, offset));
            }

            // --- Correct-path tagging.
            let mut slot_seq = None;
            if self.pred_on_path {
                let exp = self.oracle.get(self.pred_seq);
                if exp.pc == pc {
                    slot_seq = Some(self.pred_seq);
                } else {
                    self.pred_on_path = false;
                }
            }
            {
                let Some(e) = open.as_mut() else { break };
                if slot_seq.is_some() && e.matched == offset - e.start_offset() {
                    if e.first_seq.is_none() {
                        e.first_seq = slot_seq;
                    }
                    e.matched += 1;
                }
            }

            let slot_idx = self.meta.slot_of(pc);
            let tag = slot_idx.map_or(meta::TAG_ALU, |i| self.meta.tag(i));
            let actual_branch = meta::tag_branch_kind(tag);

            // --- BTB (16 slots/cycle readout; every slot probed).
            let btb_hit: Option<(BranchKind, Addr)> = if self.cfg.perfect_btb {
                let visible = slot_idx.filter(|&i| {
                    self.perfect_btb_bits
                        .get(i / 64)
                        .is_some_and(|w| w >> (i % 64) & 1 == 1)
                });
                match (visible, actual_branch) {
                    (Some(i), Some(kind)) => {
                        // Indirect targets are not in the instruction
                        // word; a perfect BTB still remembers the last
                        // observed target like a real one.
                        let embedded = self.meta.target(i);
                        let target = if embedded.is_null() {
                            self.preds.btb.lookup(pc).map_or(Addr::NULL, |e| e.target)
                        } else {
                            embedded
                        };
                        Some((kind, target))
                    }
                    _ => None,
                }
            } else {
                self.preds.btb.lookup(pc).map(|e| (e.kind, e.target))
            };
            let detected = btb_hit.is_some();

            // --- Direction prediction. Hardware predicts every slot
            // (EV8-style); only actual-branch slots consume the result,
            // so the simulator computes just those (functionally
            // equivalent, DESIGN.md §4).
            let mut tage_pred = TagePrediction::default();
            let mut hint = false;
            if let Some(k) = actual_branch {
                if k.is_conditional() {
                    let oracle_dir = slot_seq.map(|s| self.oracle.get(s).taken);
                    tage_pred = self.preds.dir.predict(
                        pc,
                        &self.hist.folds,
                        &self.hist.ideal_dir,
                        oracle_dir,
                    );
                    hint = tage_pred.taken;
                    // A confident loop-predictor entry overrides the
                    // direction predictor (§II-A).
                    if let Some(lp) = self.preds.loop_pred.as_mut() {
                        if let Some(p) = lp.predict(pc) {
                            if p.confident {
                                hint = p.taken;
                                tage_pred.taken = p.taken;
                            }
                        }
                    }
                } else {
                    hint = true;
                }
            }

            // --- Checkpoint before this slot's speculative effects.
            // Only branch slots need one, and the copy is several hundred
            // bytes, so it is written straight into the boxed record the
            // branch will travel in (predictions are patched in below).
            let mut rec = actual_branch.map(|k| {
                Box::new(SlotBranch {
                    offset,
                    kind: k,
                    ckpt: self.hist,
                    tage_pred,
                    itt_pred: IttagePrediction::default(),
                    predicted_taken: false,
                    predicted_target: Addr::NULL,
                    detected,
                })
            });
            let mut itt_pred = IttagePrediction::default();
            let mut predicted_taken = false;
            let mut predicted_target = Addr::NULL;
            let mut next = pc.next_instr();

            if let Some((k, btb_target)) = btb_hit {
                let mut taken = if k.is_conditional() {
                    tage_pred.taken
                } else {
                    true
                };
                let mut target = btb_target;
                if taken && k.is_indirect() {
                    itt_pred = self.preds.ittage.predict(pc, &self.hist.folds);
                    if self.cfg.perfect_indirect {
                        if let Some(s) = slot_seq {
                            target = self.oracle.get(s).next_pc;
                        } else if !itt_pred.target.is_null() {
                            target = itt_pred.target;
                        }
                    } else if !itt_pred.target.is_null() {
                        target = itt_pred.target;
                    }
                }
                if taken && k.is_return() {
                    target = self.hist.ras.top().unwrap_or(btb_target);
                }
                if taken && target.is_null() {
                    // No target available (e.g. cold indirect): the
                    // frontend cannot redirect; flow continues
                    // sequentially.
                    taken = false;
                }
                if taken {
                    if k.is_return() {
                        self.hist.ras.pop();
                    }
                    if k.is_call() {
                        self.hist.ras.push(pc.next_instr());
                    }
                }
                self.hist
                    .record_branch(&self.preds.plan, self.cfg.policy, pc, taken, target);
                self.hist.push_ideal_dir(taken);
                predicted_taken = taken;
                predicted_target = target;
                if taken {
                    next = target;
                }
            } else if let Some(k) = actual_branch {
                // Undetected branch: flows sequentially. The Ideal
                // policy still sees it (oracle detection) and records
                // its predicted direction.
                let bit = if k.is_conditional() { hint } else { true };
                if self.cfg.policy.oracle_detection() {
                    self.hist
                        .record_branch(&self.preds.plan, self.cfg.policy, pc, bit, Addr::NULL);
                }
                self.hist.push_ideal_dir(bit);
            }

            // --- Record into the open block.
            {
                let Some(e) = open.as_mut() else { break };
                e.end_offset = offset;
                if hint {
                    e.hints |= 1 << offset;
                }
                if let Some(mut r) = rec.take() {
                    r.itt_pred = itt_pred;
                    r.predicted_taken = predicted_taken;
                    r.predicted_target = predicted_target;
                    e.branches.push(r);
                }
            }

            // --- Advance the correct-path cursor.
            if let Some(s) = slot_seq {
                if self.oracle.get(s).next_pc == next {
                    self.pred_seq = s + 1;
                } else {
                    self.pred_on_path = false;
                }
            }

            slots -= 1;
            cursor = next;

            if predicted_taken {
                let Some(mut e) = open.take() else { break };
                e.predicted_taken = true;
                e.next_block = next;
                self.push_ftq(e);
                if !self.cfg.multi_taken {
                    break;
                }
            } else if offset == 7 {
                let Some(mut e) = open.take() else { break };
                e.next_block = next;
                self.push_ftq(e);
            }
        }
        if let Some(mut e) = open.take() {
            e.next_block = cursor;
            self.push_ftq(e);
        }
        self.pred_pc = cursor;
    }

    /// Inserts a completed block into the FTQ, tracing the enqueue.
    fn push_ftq(&mut self, e: FtqEntry) {
        self.trace.record(
            self.now,
            TraceEventKind::FtqEnqueue,
            e.start.raw(),
            e.line(),
        );
        self.ftq.push(e);
    }

    // ----------------------------------------------------------------
    // Prefetch issue
    // ----------------------------------------------------------------

    fn issue_prefetches(&mut self) {
        // Re-issue filter: a line prefetched recently is not issued
        // again, preventing aggressive prefetchers from churning the
        // small L1I with repeated fills. Only FNL+MMA implements such a
        // filter (paper §VI-D footnote); unfiltered prefetchers probe
        // the I-cache tags for every candidate. The filter is a
        // fixed-size probe table, so its memory is capped regardless of
        // how many distinct lines the prefetcher touches.
        let mut issued = 0;
        while issued < self.cfg.prefetch_issue_bw {
            let Some(line) = self.pf_queue.pop_front() else {
                break;
            };
            let now = self.now;
            if let Some(f) = self.pf_recent.as_mut() {
                if f.filter(line, now, REISSUE_WINDOW) {
                    continue;
                }
            }
            let filled = self.mem.prefetch_instr_line(line, now);
            self.trace
                .record(now, TraceEventKind::PrefetchIssue, line, 0);
            if filled {
                self.trace
                    .record(now, TraceEventKind::PrefetchFill, line, 0);
            }
            issued += 1;
        }
        // Bound queue growth under pathological candidate floods (drop
        // the newest, least-urgent candidates).
        self.pf_queue.truncate(256);
    }
}

/// Convenience: build, run, and return measurement statistics for one
/// (config, program) pair.
///
/// # Examples
///
/// ```no_run
/// use fdip_program::workload::{Workload, WorkloadFamily};
/// use fdip_sim::{run_workload, CoreConfig};
///
/// let wl = Workload::family_default("spec_a", WorkloadFamily::Spec, 301);
/// let program = wl.build();
/// let stats = run_workload(&CoreConfig::fdp(), &program, 10_000, 50_000);
/// println!("IPC {:.2}", stats.ipc());
/// ```
pub fn run_workload(cfg: &CoreConfig, program: &Program, warmup: u64, measure: u64) -> SimStats {
    run_workload_detailed(cfg, program, warmup, measure).0
}

/// Like [`run_workload`], but also returns the distribution telemetry
/// (histograms and sampled IPC) of the measurement interval.
pub fn run_workload_detailed(
    cfg: &CoreConfig,
    program: &Program,
    warmup: u64,
    measure: u64,
) -> (SimStats, SimDists) {
    let mut sim = Simulator::new(cfg.clone(), program, 0xf0cced);
    sim.run_detailed(warmup, measure)
}

/// Like [`run_workload_detailed`], but with the event tracer enabled at
/// `trace_capacity` ring slots. The returned tracer holds the (tail of
/// the) measurement interval's events, ready for
/// [`Tracer::to_chrome_trace`].
pub fn run_workload_traced(
    cfg: &CoreConfig,
    program: &Program,
    warmup: u64,
    measure: u64,
    trace_capacity: usize,
) -> (SimStats, SimDists, Tracer) {
    let mut sim = Simulator::new(cfg.clone(), program, 0xf0cced);
    sim.enable_trace(trace_capacity);
    let (stats, dists) = sim.run_detailed(warmup, measure);
    (stats, dists, sim.take_tracer())
}

/// The `Send`-safe (`'static`) run entry point for job pools: owns its
/// configuration and shares the program behind an [`Arc`](std::sync::Arc),
/// so the closure capturing the arguments can cross threads without
/// borrowing the submitter's stack.
///
/// Identical results to [`run_workload_detailed`] — same fixed seed, so a
/// given `(cfg, program, warmup, measure)` is deterministic no matter
/// which thread runs it.
pub fn run_workload_job(
    cfg: CoreConfig,
    program: std::sync::Arc<Program>,
    warmup: u64,
    measure: u64,
) -> (SimStats, SimDists) {
    run_workload_detailed(&cfg, &program, warmup, measure)
}

/// Compile-time proof that everything a pool job captures or returns can
/// cross threads.
#[allow(dead_code)]
fn assert_run_entry_points_are_send() {
    fn check<T: Send + Sync>() {}
    check::<CoreConfig>();
    check::<Program>();
    check::<SimStats>();
    check::<SimDists>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_prefetch::PrefetcherKind;
    use fdip_program::{ProgramBuilder, ProgramParams};

    fn small_program(seed: u64) -> Program {
        ProgramBuilder::new(ProgramParams {
            seed,
            num_funcs: 48,
            ..ProgramParams::default()
        })
        .build("sim-test")
    }

    fn quick(cfg: &CoreConfig, p: &Program) -> SimStats {
        run_workload(cfg, p, 3_000, 15_000)
    }

    #[test]
    fn retires_the_requested_instructions() {
        let p = small_program(1);
        let s = quick(&CoreConfig::fdp(), &p);
        // Warm-up may overshoot by up to retire_width.
        assert!(s.retired >= 15_000 - 8, "{}", s.retired);
        assert!(s.cycles > 0);
        let ipc = s.ipc();
        assert!(ipc > 0.1 && ipc < 8.0, "implausible IPC {ipc}");
    }

    #[test]
    fn deterministic_runs() {
        let p = small_program(2);
        let a = quick(&CoreConfig::fdp(), &p);
        let b = quick(&CoreConfig::fdp(), &p);
        assert_eq!(a, b);
    }

    #[test]
    fn fdp_beats_no_fdp() {
        let p = small_program(3);
        let fdp = quick(&CoreConfig::fdp(), &p);
        let no = quick(&CoreConfig::no_fdp(), &p);
        assert!(
            fdp.ipc() > no.ipc(),
            "FDP {:.3} vs no-FDP {:.3}",
            fdp.ipc(),
            no.ipc()
        );
    }

    #[test]
    fn mispredictions_are_bounded_and_nonzero() {
        let p = small_program(4);
        let s = quick(&CoreConfig::fdp(), &p);
        assert!(s.mispredicts > 0, "a real workload mispredicts sometimes");
        let mpki = s.branch_mpki();
        assert!(mpki < 150.0, "MPKI {mpki} absurdly high");
    }

    #[test]
    fn perfect_btb_and_direction_reduce_mispredicts() {
        let p = small_program(5);
        let base = quick(&CoreConfig::fdp(), &p);
        let perfect = quick(
            &CoreConfig {
                perfect_btb: true,
                perfect_indirect: true,
                direction: crate::config::DirectionConfig::Perfect,
                ..CoreConfig::fdp()
            },
            &p,
        );
        assert!(
            perfect.mispredicts < base.mispredicts / 2,
            "perfect {} vs base {}",
            perfect.mispredicts,
            base.mispredicts
        );
    }

    #[test]
    fn perfect_btb_table_is_only_allocated_when_enabled() {
        let p = small_program(5);
        let off = Simulator::new(CoreConfig::fdp(), &p, 1);
        assert_eq!(off.perfect_btb_table_words(), 0);
        let on = Simulator::new(
            CoreConfig {
                perfect_btb: true,
                ..CoreConfig::fdp()
            },
            &p,
            1,
        );
        assert!(on.perfect_btb_table_words() > 0);
    }

    #[test]
    fn perfect_prefetch_removes_starvation_misses() {
        let p = small_program(6);
        let base = quick(&CoreConfig::fdp(), &p);
        let perfect = quick(
            &CoreConfig::fdp().with_prefetcher(PrefetcherKind::Perfect),
            &p,
        );
        assert!(perfect.ipc() >= base.ipc() * 0.98);
        // Exposed misses should essentially vanish.
        assert!(perfect.miss_full + perfect.miss_partial <= base.miss_full + base.miss_partial);
    }

    #[test]
    fn pfc_restreams_fire_on_small_btbs() {
        let p = small_program(7);
        // No functional warm-up: a cold, tiny BTB misses on taken
        // branches, which is exactly what PFC recovers.
        let mut cfg = CoreConfig::fdp().with_btb_entries(64);
        cfg.func_warmup = 0;
        let s = quick(&cfg, &p);
        assert!(s.pfc_restreams > 0, "small BTB must trigger PFC");
        let off = quick(&cfg.with_pfc(false), &p);
        assert_eq!(off.pfc_restreams, 0);
    }

    #[test]
    fn larger_ftq_improves_ipc_on_icache_bound_work() {
        let p = ProgramBuilder::new(ProgramParams {
            seed: 8,
            num_funcs: 600,
            ..ProgramParams::default()
        })
        .build("big");
        let small = quick(&CoreConfig::fdp().with_ftq(2), &p);
        let large = quick(&CoreConfig::fdp().with_ftq(24), &p);
        assert!(
            large.ipc() > small.ipc() * 1.02,
            "24-entry {:.3} vs 2-entry {:.3}",
            large.ipc(),
            small.ipc()
        );
    }

    #[test]
    fn detailed_run_populates_distributions() {
        let p = small_program(10);
        let mut sim = Simulator::new(CoreConfig::fdp(), &p, 1);
        let (s, d) = sim.run_detailed(3_000, 15_000);
        // Per-cycle distributions cover exactly the measured interval.
        assert_eq!(d.ftq_occupancy.count(), s.cycles);
        assert_eq!(d.decode_queue_fill.count(), s.cycles);
        // Every consumed FTQ entry contributes a lead-time sample, and a
        // decoupled frontend achieves nonzero lead on at least some.
        assert!(d.prefetch_lead_time.count() > 0);
        assert!(d.prefetch_lead_time.max().unwrap_or(0) > 0);
        // 15K instructions at IPC ~1-3 spans multiple 4096-cycle windows.
        assert!(!d.sampled_ipc.is_empty());
        let overall = s.ipc();
        for ipc in &d.sampled_ipc {
            assert!(*ipc >= 0.0 && *ipc <= 8.0, "implausible sample {ipc}");
        }
        let mean: f64 = d.sampled_ipc.iter().sum::<f64>() / d.sampled_ipc.len() as f64;
        assert!(
            (mean - overall).abs() < overall * 0.5,
            "sample mean {mean} far from overall IPC {overall}"
        );
    }

    #[test]
    fn warmup_is_excluded_from_stats() {
        let p = small_program(9);
        let mut sim = Simulator::new(CoreConfig::fdp(), &p, 1);
        let s = sim.run(5_000, 10_000);
        assert!(
            s.retired >= 10_000 - 8 && s.retired < 12_000,
            "{}",
            s.retired
        );
    }
}
