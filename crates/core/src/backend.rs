//! Backend building blocks: in-flight instruction records, the ROB
//! entry, unresolved-branch records, and the synthetic data-address
//! generator for the load/store stream.

use crate::ftq::SlotBranch;
use fdip_types::{Addr, BranchKind, Cycle};

/// An instruction travelling from fetch to dispatch (the decode queue).
#[derive(Clone, Debug)]
pub struct FetchedInstr {
    /// Monotonic fetch id (program order).
    pub id: u64,
    /// Program counter.
    pub pc: Addr,
    /// Pre-decoded dense kind tag (see [`crate::meta`]).
    pub tag: u8,
    /// Committed-path sequence number, if on the correct path.
    pub seq: Option<u64>,
    /// Branch speculation record (actual branches only).
    pub branch: Option<Box<SlotBranch>>,
}

/// A ROB entry (timing-only; branch metadata lives in
/// [`UnresolvedBranch`]).
#[derive(Copy, Clone, Debug)]
pub struct RobEntry {
    /// Fetch id (program order).
    pub id: u64,
    /// Committed-path sequence number, if on the correct path.
    pub seq: Option<u64>,
    /// Is this an actual branch?
    pub is_branch: bool,
    /// Is this a conditional branch?
    pub is_cond: bool,
    /// Cycle at which execution completes.
    pub complete_at: Cycle,
}

/// A dispatched correct-path branch awaiting execute-time resolution.
///
/// Branch execute latency is constant, so records are naturally sorted
/// by `resolve_at` in dispatch order.
#[derive(Clone, Debug)]
pub struct UnresolvedBranch {
    /// Fetch id (program order).
    pub id: u64,
    /// Cycle at which the branch resolves.
    pub resolve_at: Cycle,
    /// Branch address.
    pub pc: Addr,
    /// Committed-path sequence number.
    pub seq: u64,
    /// Actual branch kind.
    pub kind: BranchKind,
    /// Speculation record carried from prediction (possibly updated by
    /// PFC).
    pub rec: Box<SlotBranch>,
}

/// Deterministic synthetic data-address generator.
///
/// The IPC-1 traces carry real load/store addresses; the synthetic
/// programs do not, so each static memory instruction gets a
/// deterministic pseudo-random address stream over a two-level working
/// set (a hot region that mostly fits in the L1D plus a large cold
/// region), giving the backend a realistic mix of data-cache hits and
/// misses.
#[derive(Clone, Debug)]
pub struct DataAddressGen {
    /// Per-static-instruction occurrence counters.
    counters: Vec<u32>,
    hot_bytes: u64,
    total_bytes: u64,
    hot_pct: u8,
}

/// Base virtual address of the synthetic data segment.
const DATA_BASE: u64 = 0x4000_0000;

impl DataAddressGen {
    /// Creates a generator for a program with `image_len` static
    /// instructions.
    pub fn new(image_len: usize, hot_bytes: u64, total_bytes: u64, hot_pct: u8) -> Self {
        DataAddressGen {
            counters: vec![0; image_len],
            hot_bytes: hot_bytes.max(64),
            total_bytes: total_bytes.max(128),
            hot_pct: hot_pct.min(100),
        }
    }

    /// Next data line number for the memory instruction at image slot
    /// `instr_idx`.
    pub fn next_line(&mut self, instr_idx: usize) -> u64 {
        let n = &mut self.counters[instr_idx];
        *n = n.wrapping_add(1);
        let mut x = (instr_idx as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(*n as u64);
        x ^= x >> 29;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 32;
        let addr = if (x % 100) < self.hot_pct as u64 {
            DATA_BASE + x % self.hot_bytes
        } else {
            DATA_BASE + self.hot_bytes + x % (self.total_bytes - self.hot_bytes)
        };
        addr / 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_gen_is_deterministic() {
        let mut a = DataAddressGen::new(100, 32 * 1024, 1024 * 1024, 90);
        let mut b = DataAddressGen::new(100, 32 * 1024, 1024 * 1024, 90);
        for i in 0..500 {
            assert_eq!(a.next_line(i % 100), b.next_line(i % 100));
        }
    }

    #[test]
    fn hot_region_dominates() {
        let hot = 32 * 1024u64;
        let mut g = DataAddressGen::new(10, hot, 8 * 1024 * 1024, 90);
        let hot_lines = (DATA_BASE + hot) / 64;
        let in_hot = (0..10_000)
            .filter(|i| g.next_line(i % 10) < hot_lines)
            .count();
        assert!(in_hot > 8_000, "{in_hot}");
        assert!(in_hot < 9_800, "{in_hot}");
    }

    #[test]
    fn occurrences_vary_per_instruction() {
        let mut g = DataAddressGen::new(4, 64 * 1024, 1024 * 1024, 50);
        let l1 = g.next_line(0);
        let l2 = g.next_line(0);
        // Same static instruction, different occurrences -> (almost
        // always) different lines.
        assert_ne!(l1, l2);
    }
}
