//! Core configuration — the paper's Table IV parameter set.
//!
//! Defaults model an Intel Sunny Cove-class core (§V): 6-wide
//! fetch/decode, 352-entry ROB, 12-instruction/cycle branch-prediction
//! bandwidth (2× fetch, for run-ahead), 8K-entry 4-way BTB with 2-cycle
//! latency, ~18KB TAGE with 260-bit taken-only target history, ITTAGE,
//! RAS, a 24-entry FTQ (192 instructions), and PFC enabled.

use fdip_bpred::{BtbConfig, GshareConfig, HistoryPolicy, IttageConfig, TageConfig};
use fdip_mem::HierarchyConfig;
use fdip_prefetch::PrefetcherKind;

/// Which conditional direction predictor to build (Fig. 12 sweep).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DirectionConfig {
    /// TAGE at a given size point.
    Tage(TageConfig),
    /// Gshare with idealized direction history.
    Gshare(GshareConfig),
    /// Perfect direction prediction on the committed path.
    Perfect,
}

impl Default for DirectionConfig {
    fn default() -> Self {
        DirectionConfig::Tage(TageConfig::kb18())
    }
}

/// Backend timing parameters.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BackendConfig {
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Decode-queue capacity (frontend/backend interface).
    pub decode_queue: usize,
    /// Instructions dispatched from the decode queue per cycle.
    pub dispatch_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Decode-to-execute pipeline depth in cycles (sets the base
    /// misprediction penalty).
    pub frontend_depth: u64,
    /// Synthetic data working set: hot-region bytes (mostly L1D-resident).
    pub data_hot_bytes: u64,
    /// Synthetic data working set: total bytes.
    pub data_total_bytes: u64,
    /// Fraction (percent) of data accesses that stay in the hot region.
    pub data_hot_pct: u8,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            rob_size: 352,
            decode_queue: 64,
            dispatch_width: 6,
            retire_width: 8,
            frontend_depth: 14,
            data_hot_bytes: 32 * 1024,
            data_total_bytes: 8 * 1024 * 1024,
            data_hot_pct: 94,
        }
    }
}

/// Full core configuration (the paper's Table IV).
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Instructions fetched from the I-cache per cycle.
    pub fetch_width: usize,
    /// Decode width; a cycle with fewer decode-queue instructions than
    /// this counts as a starvation cycle (§VI-D).
    pub decode_width: usize,
    /// Branch-prediction bandwidth in instruction slots per cycle
    /// (baseline 12 = 2× fetch; Fig. 13 sweeps 6/12/18).
    pub pred_bw: usize,
    /// Allow more than one predicted-taken branch per cycle (B18m).
    pub multi_taken: bool,
    /// FTQ capacity in 32-byte-block entries (24 = 192 instructions;
    /// 2 disables FDP's run-ahead).
    pub ftq_entries: usize,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// BTB access latency in cycles (Fig. 13 sweeps 1–4).
    pub btb_latency: u64,
    /// Model a perfect BTB (every actual branch detected, §VI-A).
    pub perfect_btb: bool,
    /// Oracle targets for register-indirect branches ("Perfect All").
    pub perfect_indirect: bool,
    /// Conditional direction predictor.
    pub direction: DirectionConfig,
    /// ITTAGE geometry.
    pub ittage: IttageConfig,
    /// Branch-history management policy (Table V).
    pub policy: HistoryPolicy,
    /// Post-fetch correction enabled (§III-B).
    pub pfc: bool,
    /// Enable the loop predictor (§II-A): confident fixed-trip loops
    /// override the direction predictor. Off in the paper's baseline.
    pub loop_predictor: bool,
    /// Dedicated instruction prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Prefetch requests issued into the hierarchy per cycle.
    pub prefetch_issue_bw: usize,
    /// Extra redirect bubble after an execute-time flush.
    pub redirect_penalty: u64,
    /// Extra redirect bubble after a PFC / history-fixup restream.
    pub pfc_redirect_penalty: u64,
    /// Functional-warmup instructions: before timed simulation, the
    /// committed stream is replayed architecturally to pre-train the BTB
    /// (modelling the paper's 50M-instruction ChampSim warm-up, which
    /// the reduced timed run lengths cannot reproduce; DESIGN.md §2).
    pub func_warmup: u64,
    /// Memory hierarchy.
    pub mem: HierarchyConfig,
    /// Backend parameters.
    pub backend: BackendConfig,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 6,
            decode_width: 6,
            pred_bw: 12,
            multi_taken: false,
            ftq_entries: 24,
            btb: BtbConfig::default(),
            btb_latency: 2,
            perfect_btb: false,
            perfect_indirect: false,
            direction: DirectionConfig::default(),
            ittage: IttageConfig::default(),
            policy: HistoryPolicy::Thr,
            pfc: true,
            loop_predictor: false,
            prefetcher: PrefetcherKind::None,
            prefetch_issue_bw: 8,
            redirect_penalty: 1,
            pfc_redirect_penalty: 1,
            func_warmup: 2_000_000,
            mem: HierarchyConfig::default(),
            backend: BackendConfig::default(),
        }
    }
}

impl CoreConfig {
    /// The paper's improved-FDP configuration: 24-entry FTQ, PFC on,
    /// taken-only target history, no dedicated prefetcher.
    pub fn fdp() -> Self {
        CoreConfig::default()
    }

    /// The paper's no-FDP baseline: a 2-entry FTQ removes the run-ahead
    /// capability (§V); PFC is pointless without run-ahead but remains
    /// configurable.
    pub fn no_fdp() -> Self {
        CoreConfig {
            ftq_entries: 2,
            pfc: false,
            ..CoreConfig::default()
        }
    }

    /// Returns this config with a different prefetcher.
    pub fn with_prefetcher(mut self, p: PrefetcherKind) -> Self {
        self.prefetcher = p;
        self
    }

    /// Returns this config with a different BTB entry count.
    pub fn with_btb_entries(mut self, entries: usize) -> Self {
        self.btb = BtbConfig::with_entries(entries);
        self
    }

    /// Returns this config with PFC on or off.
    pub fn with_pfc(mut self, pfc: bool) -> Self {
        self.pfc = pfc;
        self
    }

    /// Returns this config with a different history policy.
    pub fn with_policy(mut self, policy: HistoryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns this config with a different FTQ depth.
    pub fn with_ftq(mut self, entries: usize) -> Self {
        self.ftq_entries = entries;
        self
    }

    /// Maximum FTQ entries one prediction cycle can produce (used to gate
    /// prediction on FTQ space).
    pub fn max_blocks_per_predict(&self) -> usize {
        self.pred_bw / 8 + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = CoreConfig::default();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.pred_bw, 12);
        assert_eq!(c.ftq_entries, 24);
        assert_eq!(c.btb.entries, 8 * 1024);
        assert_eq!(c.btb_latency, 2);
        assert_eq!(c.policy, HistoryPolicy::Thr);
        assert!(c.pfc);
        assert_eq!(c.backend.rob_size, 352);
    }

    #[test]
    fn no_fdp_uses_two_entry_ftq() {
        let c = CoreConfig::no_fdp();
        assert_eq!(c.ftq_entries, 2);
        assert!(!c.pfc);
    }

    #[test]
    fn builder_methods_compose() {
        let c = CoreConfig::fdp()
            .with_btb_entries(1024)
            .with_pfc(false)
            .with_policy(HistoryPolicy::Ghr3)
            .with_ftq(12)
            .with_prefetcher(PrefetcherKind::NextLine);
        assert_eq!(c.btb.entries, 1024);
        assert!(!c.pfc);
        assert_eq!(c.policy, HistoryPolicy::Ghr3);
        assert_eq!(c.ftq_entries, 12);
        assert_eq!(c.prefetcher, PrefetcherKind::NextLine);
    }

    #[test]
    fn predict_block_bound_covers_bandwidth() {
        let c = CoreConfig::default();
        // 12 slots starting at the last slot of a block span at most 3
        // blocks.
        assert!(c.max_blocks_per_predict() >= 3);
    }
}
