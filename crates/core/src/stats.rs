//! Simulation statistics: raw counters plus the derived metrics the
//! paper's figures report (IPC, branch MPKI, starvation cycles/KI,
//! I-cache tag accesses/KI, exposure classification).

use fdip_bpred::BtbStats;
use fdip_mem::{CacheStats, TrafficStats};
use fdip_telemetry::{Json, ToJson};

/// Raw counters collected over a simulation interval.
///
/// Supports interval arithmetic (`delta`) so warm-up can be excluded.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Committed (correct-path) instructions retired.
    pub retired: u64,
    /// Committed branches retired.
    pub retired_branches: u64,
    /// Committed conditional branches retired.
    pub retired_cond: u64,
    /// Branch mispredictions resolved at execute (all causes).
    pub mispredicts: u64,
    /// ... of which: conditional direction wrong (branch was detected).
    pub misp_cond_dir: u64,
    /// ... of which: BTB-miss taken branches that went undetected.
    pub misp_undetected: u64,
    /// ... of which: wrong target from the indirect predictor.
    pub misp_indirect: u64,
    /// ... of which: wrong return target from the RAS.
    pub misp_return: u64,
    /// Execute-time pipeline flushes.
    pub flushes: u64,
    /// PFC restreams performed (both Fig. 5 cases).
    pub pfc_restreams: u64,
    /// ... of which case 1 (unconditional before block end).
    pub pfc_case1: u64,
    /// ... of which case 2 (hinted conditional, BTB miss).
    pub pfc_case2: u64,
    /// PFC restreams that steered onto a wrong path (harmful PFC,
    /// §VI-B) — known when the restreamed branch was on the committed
    /// path and actually not taken.
    pub pfc_harmful: u64,
    /// Frontend flushes performed to repair direction history on
    /// BTB-miss branches (GHR2/GHR3 policies).
    pub fixup_flushes: u64,
    /// Cycles in which the decode queue held fewer than `decode_width`
    /// instructions (§VI-D "starvation").
    pub starvation_cycles: u64,
    /// Sum of FTQ occupancy per cycle (for average occupancy).
    pub ftq_occupancy_sum: u64,
    /// I-cache misses (from FTQ fill probes) that were covered: the line
    /// arrived before causing a starvation cycle (§VI-G).
    pub miss_covered: u64,
    /// ... partially exposed.
    pub miss_partial: u64,
    /// ... fully exposed (requested only once the entry was FTQ head).
    pub miss_full: u64,
    /// Prefetch candidate lines emitted by the dedicated prefetcher.
    pub prefetch_candidates: u64,
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Below-L1 traffic counters.
    pub traffic: TrafficStats,
    /// BTB counters.
    pub btb: BtbStats,
}

macro_rules! sub_fields {
    ($a:expr, $b:expr, { $($f:ident),* $(,)? }) => {
        SimStats { $($f: $a.$f - $b.$f,)* l1i: sub_cache($a.l1i, $b.l1i),
                   l1d: sub_cache($a.l1d, $b.l1d), l2: sub_cache($a.l2, $b.l2),
                   traffic: TrafficStats {
                       dram_accesses: $a.traffic.dram_accesses - $b.traffic.dram_accesses,
                       prefetch_traffic: $a.traffic.prefetch_traffic - $b.traffic.prefetch_traffic,
                       ifetch_wait_cycles: $a.traffic.ifetch_wait_cycles
                           - $b.traffic.ifetch_wait_cycles,
                   },
                   btb: BtbStats {
                       lookups: $a.btb.lookups - $b.btb.lookups,
                       hits: $a.btb.hits - $b.btb.hits,
                       allocs: $a.btb.allocs - $b.btb.allocs,
                   },
        }
    };
}

fn sub_cache(a: CacheStats, b: CacheStats) -> CacheStats {
    CacheStats {
        demand_accesses: a.demand_accesses - b.demand_accesses,
        demand_hits: a.demand_hits - b.demand_hits,
        demand_misses: a.demand_misses - b.demand_misses,
        demand_merged: a.demand_merged - b.demand_merged,
        prefetch_requests: a.prefetch_requests - b.prefetch_requests,
        prefetch_fills: a.prefetch_fills - b.prefetch_fills,
        prefetch_dropped: a.prefetch_dropped - b.prefetch_dropped,
        useful_prefetches: a.useful_prefetches - b.useful_prefetches,
        tag_probes: a.tag_probes - b.tag_probes,
        evictions: a.evictions - b.evictions,
    }
}

impl SimStats {
    /// Counters accumulated between `earlier` and `self` (used to strip
    /// warm-up).
    pub fn delta(&self, earlier: &SimStats) -> SimStats {
        sub_fields!(self, earlier, {
            cycles, retired, retired_branches, retired_cond, mispredicts,
            misp_cond_dir, misp_undetected, misp_indirect, misp_return,
            flushes, pfc_restreams, pfc_case1, pfc_case2, pfc_harmful,
            fixup_flushes, starvation_cycles, ftq_occupancy_sum,
            miss_covered, miss_partial, miss_full, prefetch_candidates,
        })
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.retired as f64 / self.cycles as f64
    }

    /// Branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        1000.0 * self.mispredicts as f64 / self.retired as f64
    }

    /// L1I demand misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        1000.0 * self.l1i.demand_misses as f64 / self.retired as f64
    }

    /// Starvation cycles per kilo-instruction (§VI-D).
    pub fn starvation_pki(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        1000.0 * self.starvation_cycles as f64 / self.retired as f64
    }

    /// I-cache tag-array accesses per kilo-instruction (Fig. 9).
    pub fn icache_tag_pki(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        1000.0 * self.l1i.tag_probes as f64 / self.retired as f64
    }

    /// Average FTQ occupancy.
    pub fn avg_ftq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ftq_occupancy_sum as f64 / self.cycles as f64
    }

    /// Fraction of I-cache misses that were fully or partially exposed
    /// (§VI-G).
    pub fn exposed_fraction(&self) -> f64 {
        let total = self.miss_covered + self.miss_partial + self.miss_full;
        if total == 0 {
            return 0.0;
        }
        (self.miss_partial + self.miss_full) as f64 / total as f64
    }

    /// BTB demand hit rate.
    pub fn btb_hit_rate(&self) -> f64 {
        if self.btb.lookups == 0 {
            return 0.0;
        }
        self.btb.hits as f64 / self.btb.lookups as f64
    }

    /// Fraction of PFC restreams that steered onto a wrong path
    /// (harmful PFC, §VI-B).
    pub fn pfc_harmful_rate(&self) -> f64 {
        if self.pfc_restreams == 0 {
            return 0.0;
        }
        self.pfc_harmful as f64 / self.pfc_restreams as f64
    }
}

fn cache_json(c: &CacheStats) -> Json {
    Json::obj()
        .with("demand_accesses", c.demand_accesses)
        .with("demand_hits", c.demand_hits)
        .with("demand_misses", c.demand_misses)
        .with("demand_merged", c.demand_merged)
        .with("prefetch_requests", c.prefetch_requests)
        .with("prefetch_fills", c.prefetch_fills)
        .with("prefetch_dropped", c.prefetch_dropped)
        .with("useful_prefetches", c.useful_prefetches)
        .with("tag_probes", c.tag_probes)
        .with("evictions", c.evictions)
}

impl ToJson for SimStats {
    /// Serializes as `{counters: {...}, derived: {...}}` — every raw
    /// counter (with nested `l1i`/`l1d`/`l2`/`traffic`/`btb` groups)
    /// plus every derived metric. The field names are the schema
    /// documented in `docs/METRICS.md`.
    fn to_json(&self) -> Json {
        let counters = Json::obj()
            .with("cycles", self.cycles)
            .with("retired", self.retired)
            .with("retired_branches", self.retired_branches)
            .with("retired_cond", self.retired_cond)
            .with("mispredicts", self.mispredicts)
            .with("misp_cond_dir", self.misp_cond_dir)
            .with("misp_undetected", self.misp_undetected)
            .with("misp_indirect", self.misp_indirect)
            .with("misp_return", self.misp_return)
            .with("flushes", self.flushes)
            .with("pfc_restreams", self.pfc_restreams)
            .with("pfc_case1", self.pfc_case1)
            .with("pfc_case2", self.pfc_case2)
            .with("pfc_harmful", self.pfc_harmful)
            .with("fixup_flushes", self.fixup_flushes)
            .with("starvation_cycles", self.starvation_cycles)
            .with("ftq_occupancy_sum", self.ftq_occupancy_sum)
            .with("miss_covered", self.miss_covered)
            .with("miss_partial", self.miss_partial)
            .with("miss_full", self.miss_full)
            .with("prefetch_candidates", self.prefetch_candidates)
            .with("l1i", cache_json(&self.l1i))
            .with("l1d", cache_json(&self.l1d))
            .with("l2", cache_json(&self.l2))
            .with(
                "traffic",
                Json::obj()
                    .with("dram_accesses", self.traffic.dram_accesses)
                    .with("prefetch_traffic", self.traffic.prefetch_traffic)
                    .with("ifetch_wait_cycles", self.traffic.ifetch_wait_cycles),
            )
            .with(
                "btb",
                Json::obj()
                    .with("lookups", self.btb.lookups)
                    .with("hits", self.btb.hits)
                    .with("allocs", self.btb.allocs),
            );
        let derived = Json::obj()
            .with("ipc", self.ipc())
            .with("branch_mpki", self.branch_mpki())
            .with("l1i_mpki", self.l1i_mpki())
            .with("starvation_pki", self.starvation_pki())
            .with("icache_tag_pki", self.icache_tag_pki())
            .with("avg_ftq_occupancy", self.avg_ftq_occupancy())
            .with("exposed_fraction", self.exposed_fraction())
            .with("btb_hit_rate", self.btb_hit_rate())
            .with("pfc_harmful_rate", self.pfc_harmful_rate());
        Json::obj()
            .with("counters", counters)
            .with("derived", derived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        SimStats {
            cycles: 1000,
            retired: 2000,
            retired_branches: 400,
            mispredicts: 10,
            starvation_cycles: 100,
            miss_covered: 30,
            miss_partial: 10,
            miss_full: 10,
            ftq_occupancy_sum: 12_000,
            ..SimStats::default()
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        assert!((s.ipc() - 2.0).abs() < 1e-9);
        assert!((s.branch_mpki() - 5.0).abs() < 1e-9);
        assert!((s.starvation_pki() - 50.0).abs() < 1e-9);
        assert!((s.avg_ftq_occupancy() - 12.0).abs() < 1e-9);
        assert!((s.exposed_fraction() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let z = SimStats::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.branch_mpki(), 0.0);
        assert_eq!(z.exposed_fraction(), 0.0);
        assert_eq!(z.btb_hit_rate(), 0.0);
    }

    #[test]
    fn to_json_round_trips_counters_and_derived() {
        let s = sample();
        let j = s.to_json();
        let round = Json::parse(&j.to_string()).unwrap();
        let counters = round.get("counters").unwrap();
        assert_eq!(counters.get("cycles").and_then(Json::as_u64), Some(1000));
        assert_eq!(counters.get("retired").and_then(Json::as_u64), Some(2000));
        assert!(counters
            .get("l1i")
            .and_then(|c| c.get("tag_probes"))
            .is_some());
        let derived = round.get("derived").unwrap();
        assert!((derived.get("ipc").and_then(Json::as_f64).unwrap() - 2.0).abs() < 1e-9);
        assert!(
            (derived
                .get("starvation_pki")
                .and_then(Json::as_f64)
                .unwrap()
                - 50.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn pfc_harmful_rate_guards_zero_restreams() {
        let mut s = sample();
        assert_eq!(s.pfc_harmful_rate(), 0.0);
        s.pfc_restreams = 8;
        s.pfc_harmful = 2;
        assert!((s.pfc_harmful_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_all_core_fields() {
        let a = sample();
        let mut b = sample();
        b.cycles += 500;
        b.retired += 1500;
        b.mispredicts += 7;
        b.l1i.tag_probes += 42;
        let d = b.delta(&a);
        assert_eq!(d.cycles, 500);
        assert_eq!(d.retired, 1500);
        assert_eq!(d.mispredicts, 7);
        assert_eq!(d.l1i.tag_probes, 42);
        assert_eq!(d.starvation_cycles, 0);
    }
}
