//! Simulation statistics: raw counters plus the derived metrics the
//! paper's figures report (IPC, branch MPKI, starvation cycles/KI,
//! I-cache tag accesses/KI, exposure classification).

use fdip_bpred::BtbStats;
use fdip_mem::{CacheStats, PrefetchOutcomes, TrafficStats};
use fdip_telemetry::{Json, ToJson};

/// Display/schema names of the stall buckets, indexed by
/// [`StallReason::index`]. Also the label table handed to
/// `fdip_trace::Tracer::to_chrome_trace`.
pub const STALL_REASON_NAMES: [&str; 8] = [
    "committing",
    "backend",
    "fetch_bw",
    "icache_miss",
    "ftq_empty",
    "pred_latency",
    "redirect",
    "pfc_restream",
];

/// The single bucket a simulated cycle is charged to.
///
/// Classification is a priority tree evaluated once per cycle at the end
/// of `Simulator::step`; every cycle lands in exactly one bucket, so the
/// per-bucket counters in [`StallCycles`] always sum to `cycles`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum StallReason {
    /// At least one instruction retired this cycle.
    Committing = 0,
    /// Nothing retired but the decode queue is full: the backend
    /// (execution latency, ROB, retire width) is the bottleneck.
    Backend = 1,
    /// The FTQ head is fetch-ready but the decode queue still starved:
    /// fetch bandwidth (or a mid-entry taken-branch break) limited
    /// delivery.
    FetchBw = 2,
    /// The decode queue starved while the FTQ head waits on an
    /// in-flight I-cache fill — the exposed-miss stall of §VI-G.
    IcacheMiss = 3,
    /// The decode queue starved with an empty FTQ (prediction pipeline
    /// could not stay ahead).
    FtqEmpty = 4,
    /// Predictor/BTB/fetch-pipeline latency: the BTB-latency portion of
    /// a redirect, an entry awaiting its tag lookup, or an I-cache hit
    /// still in its hit-latency window.
    PredLatency = 5,
    /// The post-BTB-latency portion of an execute-time misprediction
    /// redirect penalty.
    Redirect = 6,
    /// The post-BTB-latency portion of a PFC restream penalty (§III-B).
    PfcRestream = 7,
}

impl StallReason {
    /// Every bucket, in [`STALL_REASON_NAMES`] order.
    pub const ALL: [StallReason; 8] = [
        StallReason::Committing,
        StallReason::Backend,
        StallReason::FetchBw,
        StallReason::IcacheMiss,
        StallReason::FtqEmpty,
        StallReason::PredLatency,
        StallReason::Redirect,
        StallReason::PfcRestream,
    ];

    /// Index into [`STALL_REASON_NAMES`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Schema name of this bucket.
    pub fn name(self) -> &'static str {
        STALL_REASON_NAMES[self.index()]
    }
}

/// Per-bucket cycle counts; the invariant `sum() == cycles` is asserted
/// at the end of every `Simulator::run_detailed` and in tests.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct StallCycles {
    /// Cycles with at least one retirement.
    pub committing: u64,
    /// Backend-bound cycles (decode queue full, nothing retired).
    pub backend: u64,
    /// Fetch-bandwidth-bound cycles.
    pub fetch_bw: u64,
    /// Cycles exposed to an in-flight I-cache fill.
    pub icache_miss: u64,
    /// Cycles starved with an empty FTQ.
    pub ftq_empty: u64,
    /// Predictor/BTB/fetch-pipeline latency cycles.
    pub pred_latency: u64,
    /// Redirect-penalty cycles (execute-time flush).
    pub redirect: u64,
    /// PFC-restream-penalty cycles.
    pub pfc_restream: u64,
}

impl StallCycles {
    fn slot_mut(&mut self, r: StallReason) -> &mut u64 {
        match r {
            StallReason::Committing => &mut self.committing,
            StallReason::Backend => &mut self.backend,
            StallReason::FetchBw => &mut self.fetch_bw,
            StallReason::IcacheMiss => &mut self.icache_miss,
            StallReason::FtqEmpty => &mut self.ftq_empty,
            StallReason::PredLatency => &mut self.pred_latency,
            StallReason::Redirect => &mut self.redirect,
            StallReason::PfcRestream => &mut self.pfc_restream,
        }
    }

    /// Charges one cycle to bucket `r`.
    pub fn charge(&mut self, r: StallReason) {
        *self.slot_mut(r) += 1;
    }

    /// Cycles charged to bucket `r`.
    pub fn get(&self, r: StallReason) -> u64 {
        match r {
            StallReason::Committing => self.committing,
            StallReason::Backend => self.backend,
            StallReason::FetchBw => self.fetch_bw,
            StallReason::IcacheMiss => self.icache_miss,
            StallReason::FtqEmpty => self.ftq_empty,
            StallReason::PredLatency => self.pred_latency,
            StallReason::Redirect => self.redirect,
            StallReason::PfcRestream => self.pfc_restream,
        }
    }

    /// Total cycles across all buckets (must equal `cycles`).
    pub fn sum(&self) -> u64 {
        StallReason::ALL.iter().map(|&r| self.get(r)).sum()
    }

    /// Field-wise difference (interval arithmetic).
    pub fn sub(&self, b: &StallCycles) -> StallCycles {
        StallCycles {
            committing: self.committing - b.committing,
            backend: self.backend - b.backend,
            fetch_bw: self.fetch_bw - b.fetch_bw,
            icache_miss: self.icache_miss - b.icache_miss,
            ftq_empty: self.ftq_empty - b.ftq_empty,
            pred_latency: self.pred_latency - b.pred_latency,
            redirect: self.redirect - b.redirect,
            pfc_restream: self.pfc_restream - b.pfc_restream,
        }
    }
}

/// Raw counters collected over a simulation interval.
///
/// Supports interval arithmetic (`delta`) so warm-up can be excluded.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Committed (correct-path) instructions retired.
    pub retired: u64,
    /// Committed branches retired.
    pub retired_branches: u64,
    /// Committed conditional branches retired.
    pub retired_cond: u64,
    /// Branch mispredictions resolved at execute (all causes).
    pub mispredicts: u64,
    /// ... of which: conditional direction wrong (branch was detected).
    pub misp_cond_dir: u64,
    /// ... of which: BTB-miss taken branches that went undetected.
    pub misp_undetected: u64,
    /// ... of which: wrong target from the indirect predictor.
    pub misp_indirect: u64,
    /// ... of which: wrong return target from the RAS.
    pub misp_return: u64,
    /// Execute-time pipeline flushes.
    pub flushes: u64,
    /// PFC restreams performed (both Fig. 5 cases).
    pub pfc_restreams: u64,
    /// ... of which case 1 (unconditional before block end).
    pub pfc_case1: u64,
    /// ... of which case 2 (hinted conditional, BTB miss).
    pub pfc_case2: u64,
    /// PFC restreams that steered onto a wrong path (harmful PFC,
    /// §VI-B) — known when the restreamed branch was on the committed
    /// path and actually not taken.
    pub pfc_harmful: u64,
    /// Frontend flushes performed to repair direction history on
    /// BTB-miss branches (GHR2/GHR3 policies).
    pub fixup_flushes: u64,
    /// Cycles in which the decode queue held fewer than `decode_width`
    /// instructions (§VI-D "starvation").
    pub starvation_cycles: u64,
    /// Sum of FTQ occupancy per cycle (for average occupancy).
    pub ftq_occupancy_sum: u64,
    /// I-cache misses (from FTQ fill probes) that were covered: the line
    /// arrived before causing a starvation cycle (§VI-G).
    pub miss_covered: u64,
    /// ... partially exposed.
    pub miss_partial: u64,
    /// ... fully exposed (requested only once the entry was FTQ head).
    pub miss_full: u64,
    /// Prefetch candidate lines emitted by the dedicated prefetcher.
    pub prefetch_candidates: u64,
    /// Per-bucket cycle attribution (`sum == cycles` always).
    pub stall: StallCycles,
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Below-L1 traffic counters.
    pub traffic: TrafficStats,
    /// BTB counters.
    pub btb: BtbStats,
}

macro_rules! sub_fields {
    ($a:expr, $b:expr, { $($f:ident),* $(,)? }) => {
        SimStats { $($f: $a.$f - $b.$f,)* stall: $a.stall.sub(&$b.stall),
                   l1i: sub_cache($a.l1i, $b.l1i),
                   l1d: sub_cache($a.l1d, $b.l1d), l2: sub_cache($a.l2, $b.l2),
                   traffic: TrafficStats {
                       dram_accesses: $a.traffic.dram_accesses - $b.traffic.dram_accesses,
                       prefetch_traffic: $a.traffic.prefetch_traffic - $b.traffic.prefetch_traffic,
                       ifetch_wait_cycles: $a.traffic.ifetch_wait_cycles
                           - $b.traffic.ifetch_wait_cycles,
                   },
                   btb: BtbStats {
                       lookups: $a.btb.lookups - $b.btb.lookups,
                       hits: $a.btb.hits - $b.btb.hits,
                       allocs: $a.btb.allocs - $b.btb.allocs,
                   },
        }
    };
}

fn sub_outcomes(a: PrefetchOutcomes, b: PrefetchOutcomes) -> PrefetchOutcomes {
    PrefetchOutcomes {
        requests: a.requests - b.requests,
        timely: a.timely - b.timely,
        late: a.late - b.late,
        useless_evicted: a.useless_evicted - b.useless_evicted,
        useless_replaced: a.useless_replaced - b.useless_replaced,
        dropped: a.dropped - b.dropped,
    }
}

fn sub_cache(a: CacheStats, b: CacheStats) -> CacheStats {
    CacheStats {
        demand_accesses: a.demand_accesses - b.demand_accesses,
        demand_hits: a.demand_hits - b.demand_hits,
        demand_misses: a.demand_misses - b.demand_misses,
        demand_merged: a.demand_merged - b.demand_merged,
        prefetch_requests: a.prefetch_requests - b.prefetch_requests,
        prefetch_fills: a.prefetch_fills - b.prefetch_fills,
        prefetch_dropped: a.prefetch_dropped - b.prefetch_dropped,
        useful_prefetches: a.useful_prefetches - b.useful_prefetches,
        tag_probes: a.tag_probes - b.tag_probes,
        evictions: a.evictions - b.evictions,
        outcomes_fdp: sub_outcomes(a.outcomes_fdp, b.outcomes_fdp),
        outcomes_pf: sub_outcomes(a.outcomes_pf, b.outcomes_pf),
    }
}

impl SimStats {
    /// Counters accumulated between `earlier` and `self` (used to strip
    /// warm-up).
    pub fn delta(&self, earlier: &SimStats) -> SimStats {
        sub_fields!(self, earlier, {
            cycles, retired, retired_branches, retired_cond, mispredicts,
            misp_cond_dir, misp_undetected, misp_indirect, misp_return,
            flushes, pfc_restreams, pfc_case1, pfc_case2, pfc_harmful,
            fixup_flushes, starvation_cycles, ftq_occupancy_sum,
            miss_covered, miss_partial, miss_full, prefetch_candidates,
        })
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.retired as f64 / self.cycles as f64
    }

    /// Branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        1000.0 * self.mispredicts as f64 / self.retired as f64
    }

    /// L1I demand misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        1000.0 * self.l1i.demand_misses as f64 / self.retired as f64
    }

    /// Starvation cycles per kilo-instruction (§VI-D).
    pub fn starvation_pki(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        1000.0 * self.starvation_cycles as f64 / self.retired as f64
    }

    /// I-cache tag-array accesses per kilo-instruction (Fig. 9).
    pub fn icache_tag_pki(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        1000.0 * self.l1i.tag_probes as f64 / self.retired as f64
    }

    /// Average FTQ occupancy.
    pub fn avg_ftq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ftq_occupancy_sum as f64 / self.cycles as f64
    }

    /// Fraction of I-cache misses that were fully or partially exposed
    /// (§VI-G).
    pub fn exposed_fraction(&self) -> f64 {
        let total = self.miss_covered + self.miss_partial + self.miss_full;
        if total == 0 {
            return 0.0;
        }
        (self.miss_partial + self.miss_full) as f64 / total as f64
    }

    /// BTB demand hit rate.
    pub fn btb_hit_rate(&self) -> f64 {
        if self.btb.lookups == 0 {
            return 0.0;
        }
        self.btb.hits as f64 / self.btb.lookups as f64
    }

    /// Fraction of PFC restreams that steered onto a wrong path
    /// (harmful PFC, §VI-B).
    pub fn pfc_harmful_rate(&self) -> f64 {
        if self.pfc_restreams == 0 {
            return 0.0;
        }
        self.pfc_harmful as f64 / self.pfc_restreams as f64
    }

    /// Fraction of cycles charged to frontend stall buckets (everything
    /// except `committing` and `backend`).
    pub fn frontend_bound_fraction(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let fe = self.stall.fetch_bw
            + self.stall.icache_miss
            + self.stall.ftq_empty
            + self.stall.pred_latency
            + self.stall.redirect
            + self.stall.pfc_restream;
        fe as f64 / self.cycles as f64
    }

    /// Dedicated-prefetcher accuracy at the L1I: demand-used fills over
    /// all fills whose fate is known (dropped requests and still-resident
    /// lines excluded).
    pub fn pf_accuracy(&self) -> f64 {
        outcome_accuracy(&self.l1i.outcomes_pf)
    }

    /// Of the demand-used dedicated-prefetcher fills, the fraction that
    /// completed before the demand arrived.
    pub fn pf_timeliness(&self) -> f64 {
        outcome_timeliness(&self.l1i.outcomes_pf)
    }

    /// Dedicated-prefetcher coverage at the L1I: demand-used fills over
    /// used fills plus remaining demand misses.
    pub fn pf_coverage(&self) -> f64 {
        outcome_coverage(&self.l1i.outcomes_pf, self.l1i.demand_misses)
    }

    /// FDP (decoupled ahead-of-head fill) accuracy at the L1I; same
    /// definition as [`SimStats::pf_accuracy`].
    pub fn fdp_accuracy(&self) -> f64 {
        outcome_accuracy(&self.l1i.outcomes_fdp)
    }

    /// Of the demand-used FDP fills, the fraction that completed before
    /// the FTQ head demanded them.
    pub fn fdp_timeliness(&self) -> f64 {
        outcome_timeliness(&self.l1i.outcomes_fdp)
    }
}

fn outcome_accuracy(o: &PrefetchOutcomes) -> f64 {
    let used = o.timely + o.late;
    let resolved_fills = used + o.useless_evicted + o.useless_replaced;
    if resolved_fills == 0 {
        return 0.0;
    }
    used as f64 / resolved_fills as f64
}

fn outcome_timeliness(o: &PrefetchOutcomes) -> f64 {
    let used = o.timely + o.late;
    if used == 0 {
        return 0.0;
    }
    o.timely as f64 / used as f64
}

fn outcome_coverage(o: &PrefetchOutcomes, demand_misses: u64) -> f64 {
    let used = o.timely + o.late;
    if used + demand_misses == 0 {
        return 0.0;
    }
    used as f64 / (used + demand_misses) as f64
}

/// Required `u64` field lookup for the `from_json` parsers.
fn req_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn outcomes_from_json(v: &Json) -> Option<PrefetchOutcomes> {
    Some(PrefetchOutcomes {
        requests: req_u64(v, "requests")?,
        timely: req_u64(v, "timely")?,
        late: req_u64(v, "late")?,
        useless_evicted: req_u64(v, "useless_evicted")?,
        useless_replaced: req_u64(v, "useless_replaced")?,
        dropped: req_u64(v, "dropped")?,
    })
}

fn cache_from_json(v: &Json) -> Option<CacheStats> {
    let outcomes = v.get("prefetch_outcomes")?;
    Some(CacheStats {
        demand_accesses: req_u64(v, "demand_accesses")?,
        demand_hits: req_u64(v, "demand_hits")?,
        demand_misses: req_u64(v, "demand_misses")?,
        demand_merged: req_u64(v, "demand_merged")?,
        prefetch_requests: req_u64(v, "prefetch_requests")?,
        prefetch_fills: req_u64(v, "prefetch_fills")?,
        prefetch_dropped: req_u64(v, "prefetch_dropped")?,
        useful_prefetches: req_u64(v, "useful_prefetches")?,
        tag_probes: req_u64(v, "tag_probes")?,
        evictions: req_u64(v, "evictions")?,
        outcomes_fdp: outcomes_from_json(outcomes.get("fdp")?)?,
        outcomes_pf: outcomes_from_json(outcomes.get("pf")?)?,
    })
}

fn stall_from_json(v: &Json) -> Option<StallCycles> {
    Some(StallCycles {
        committing: req_u64(v, "committing")?,
        backend: req_u64(v, "backend")?,
        fetch_bw: req_u64(v, "fetch_bw")?,
        icache_miss: req_u64(v, "icache_miss")?,
        ftq_empty: req_u64(v, "ftq_empty")?,
        pred_latency: req_u64(v, "pred_latency")?,
        redirect: req_u64(v, "redirect")?,
        pfc_restream: req_u64(v, "pfc_restream")?,
    })
}

impl SimStats {
    /// Reconstructs the raw counters from a [`ToJson`] document.
    ///
    /// The inverse of [`SimStats::to_json`] for the `counters` block;
    /// the `derived` block is ignored because every derived metric is a
    /// pure function of the counters and is recomputed on demand. Thus
    /// `SimStats::from_json(&s.to_json()) == Some(s)` exactly — the
    /// property the `fdip-serve` result cache relies on. Returns `None`
    /// if any counter field is missing or mistyped.
    pub fn from_json(v: &Json) -> Option<SimStats> {
        let c = v.get("counters")?;
        Some(SimStats {
            cycles: req_u64(c, "cycles")?,
            retired: req_u64(c, "retired")?,
            retired_branches: req_u64(c, "retired_branches")?,
            retired_cond: req_u64(c, "retired_cond")?,
            mispredicts: req_u64(c, "mispredicts")?,
            misp_cond_dir: req_u64(c, "misp_cond_dir")?,
            misp_undetected: req_u64(c, "misp_undetected")?,
            misp_indirect: req_u64(c, "misp_indirect")?,
            misp_return: req_u64(c, "misp_return")?,
            flushes: req_u64(c, "flushes")?,
            pfc_restreams: req_u64(c, "pfc_restreams")?,
            pfc_case1: req_u64(c, "pfc_case1")?,
            pfc_case2: req_u64(c, "pfc_case2")?,
            pfc_harmful: req_u64(c, "pfc_harmful")?,
            fixup_flushes: req_u64(c, "fixup_flushes")?,
            starvation_cycles: req_u64(c, "starvation_cycles")?,
            ftq_occupancy_sum: req_u64(c, "ftq_occupancy_sum")?,
            miss_covered: req_u64(c, "miss_covered")?,
            miss_partial: req_u64(c, "miss_partial")?,
            miss_full: req_u64(c, "miss_full")?,
            prefetch_candidates: req_u64(c, "prefetch_candidates")?,
            stall: stall_from_json(c.get("stall_cycles")?)?,
            l1i: cache_from_json(c.get("l1i")?)?,
            l1d: cache_from_json(c.get("l1d")?)?,
            l2: cache_from_json(c.get("l2")?)?,
            traffic: {
                let t = c.get("traffic")?;
                TrafficStats {
                    dram_accesses: req_u64(t, "dram_accesses")?,
                    prefetch_traffic: req_u64(t, "prefetch_traffic")?,
                    ifetch_wait_cycles: req_u64(t, "ifetch_wait_cycles")?,
                }
            },
            btb: {
                let b = c.get("btb")?;
                BtbStats {
                    lookups: req_u64(b, "lookups")?,
                    hits: req_u64(b, "hits")?,
                    allocs: req_u64(b, "allocs")?,
                }
            },
        })
    }
}

fn outcomes_json(o: &PrefetchOutcomes) -> Json {
    Json::obj()
        .with("requests", o.requests)
        .with("timely", o.timely)
        .with("late", o.late)
        .with("useless_evicted", o.useless_evicted)
        .with("useless_replaced", o.useless_replaced)
        .with("dropped", o.dropped)
}

fn cache_json(c: &CacheStats) -> Json {
    Json::obj()
        .with("demand_accesses", c.demand_accesses)
        .with("demand_hits", c.demand_hits)
        .with("demand_misses", c.demand_misses)
        .with("demand_merged", c.demand_merged)
        .with("prefetch_requests", c.prefetch_requests)
        .with("prefetch_fills", c.prefetch_fills)
        .with("prefetch_dropped", c.prefetch_dropped)
        .with("useful_prefetches", c.useful_prefetches)
        .with("tag_probes", c.tag_probes)
        .with("evictions", c.evictions)
        .with(
            "prefetch_outcomes",
            Json::obj()
                .with("fdp", outcomes_json(&c.outcomes_fdp))
                .with("pf", outcomes_json(&c.outcomes_pf)),
        )
}

fn stall_json(s: &StallCycles) -> Json {
    Json::obj()
        .with("committing", s.committing)
        .with("backend", s.backend)
        .with("fetch_bw", s.fetch_bw)
        .with("icache_miss", s.icache_miss)
        .with("ftq_empty", s.ftq_empty)
        .with("pred_latency", s.pred_latency)
        .with("redirect", s.redirect)
        .with("pfc_restream", s.pfc_restream)
}

impl ToJson for SimStats {
    /// Serializes as `{counters: {...}, derived: {...}}` — every raw
    /// counter (with nested `l1i`/`l1d`/`l2`/`traffic`/`btb` groups)
    /// plus every derived metric. The field names are the schema
    /// documented in `docs/METRICS.md`.
    fn to_json(&self) -> Json {
        let counters = Json::obj()
            .with("cycles", self.cycles)
            .with("retired", self.retired)
            .with("retired_branches", self.retired_branches)
            .with("retired_cond", self.retired_cond)
            .with("mispredicts", self.mispredicts)
            .with("misp_cond_dir", self.misp_cond_dir)
            .with("misp_undetected", self.misp_undetected)
            .with("misp_indirect", self.misp_indirect)
            .with("misp_return", self.misp_return)
            .with("flushes", self.flushes)
            .with("pfc_restreams", self.pfc_restreams)
            .with("pfc_case1", self.pfc_case1)
            .with("pfc_case2", self.pfc_case2)
            .with("pfc_harmful", self.pfc_harmful)
            .with("fixup_flushes", self.fixup_flushes)
            .with("starvation_cycles", self.starvation_cycles)
            .with("ftq_occupancy_sum", self.ftq_occupancy_sum)
            .with("miss_covered", self.miss_covered)
            .with("miss_partial", self.miss_partial)
            .with("miss_full", self.miss_full)
            .with("prefetch_candidates", self.prefetch_candidates)
            .with("stall_cycles", stall_json(&self.stall))
            .with("l1i", cache_json(&self.l1i))
            .with("l1d", cache_json(&self.l1d))
            .with("l2", cache_json(&self.l2))
            .with(
                "traffic",
                Json::obj()
                    .with("dram_accesses", self.traffic.dram_accesses)
                    .with("prefetch_traffic", self.traffic.prefetch_traffic)
                    .with("ifetch_wait_cycles", self.traffic.ifetch_wait_cycles),
            )
            .with(
                "btb",
                Json::obj()
                    .with("lookups", self.btb.lookups)
                    .with("hits", self.btb.hits)
                    .with("allocs", self.btb.allocs),
            );
        let per_ki = |v: u64| {
            if self.retired == 0 {
                0.0
            } else {
                1000.0 * v as f64 / self.retired as f64
            }
        };
        let mut stall_pki = Json::obj();
        for r in StallReason::ALL {
            stall_pki.set(r.name(), per_ki(self.stall.get(r)));
        }
        let derived = Json::obj()
            .with("ipc", self.ipc())
            .with("branch_mpki", self.branch_mpki())
            .with("l1i_mpki", self.l1i_mpki())
            .with("starvation_pki", self.starvation_pki())
            .with("icache_tag_pki", self.icache_tag_pki())
            .with("avg_ftq_occupancy", self.avg_ftq_occupancy())
            .with("exposed_fraction", self.exposed_fraction())
            .with("btb_hit_rate", self.btb_hit_rate())
            .with("pfc_harmful_rate", self.pfc_harmful_rate())
            .with("stall_pki", stall_pki)
            .with("frontend_bound_fraction", self.frontend_bound_fraction())
            .with("pf_accuracy", self.pf_accuracy())
            .with("pf_timeliness", self.pf_timeliness())
            .with("pf_coverage", self.pf_coverage())
            .with("fdp_accuracy", self.fdp_accuracy())
            .with("fdp_timeliness", self.fdp_timeliness());
        Json::obj()
            .with("counters", counters)
            .with("derived", derived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        SimStats {
            cycles: 1000,
            retired: 2000,
            retired_branches: 400,
            mispredicts: 10,
            starvation_cycles: 100,
            miss_covered: 30,
            miss_partial: 10,
            miss_full: 10,
            ftq_occupancy_sum: 12_000,
            ..SimStats::default()
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        assert!((s.ipc() - 2.0).abs() < 1e-9);
        assert!((s.branch_mpki() - 5.0).abs() < 1e-9);
        assert!((s.starvation_pki() - 50.0).abs() < 1e-9);
        assert!((s.avg_ftq_occupancy() - 12.0).abs() < 1e-9);
        assert!((s.exposed_fraction() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let z = SimStats::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.branch_mpki(), 0.0);
        assert_eq!(z.exposed_fraction(), 0.0);
        assert_eq!(z.btb_hit_rate(), 0.0);
    }

    #[test]
    fn to_json_round_trips_counters_and_derived() {
        let s = sample();
        let j = s.to_json();
        let round = Json::parse(&j.to_string()).unwrap();
        let counters = round.get("counters").unwrap();
        assert_eq!(counters.get("cycles").and_then(Json::as_u64), Some(1000));
        assert_eq!(counters.get("retired").and_then(Json::as_u64), Some(2000));
        assert!(counters
            .get("l1i")
            .and_then(|c| c.get("tag_probes"))
            .is_some());
        let derived = round.get("derived").unwrap();
        assert!((derived.get("ipc").and_then(Json::as_f64).unwrap() - 2.0).abs() < 1e-9);
        assert!(
            (derived
                .get("starvation_pki")
                .and_then(Json::as_f64)
                .unwrap()
                - 50.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn from_json_inverts_to_json_exactly() {
        let mut s = sample();
        s.stall.charge(StallReason::IcacheMiss);
        s.l1i.outcomes_fdp.requests = 9;
        s.l1i.outcomes_fdp.timely = 4;
        s.l1d.demand_accesses = 77;
        s.l2.evictions = 3;
        s.traffic.dram_accesses = 12;
        s.btb.lookups = 500;
        s.btb.hits = 480;
        let parsed = Json::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(SimStats::from_json(&parsed), Some(s));
        // A document missing a counter is rejected rather than zeroed.
        let c = parsed.get("counters").unwrap().clone();
        let truncated = Json::obj().with("counters", c.with("cycles", Json::Null));
        assert_eq!(SimStats::from_json(&truncated), None);
    }

    #[test]
    fn stall_sum_covers_every_bucket() {
        let mut s = StallCycles::default();
        for (i, r) in StallReason::ALL.into_iter().enumerate() {
            for _ in 0..=i {
                s.charge(r);
            }
            assert_eq!(s.get(r), i as u64 + 1);
            assert_eq!(r.name(), STALL_REASON_NAMES[r.index()]);
        }
        assert_eq!(s.sum(), (1..=8).sum::<u64>());
        let d = s.sub(&s);
        assert_eq!(d.sum(), 0);
    }

    #[test]
    fn stall_and_outcome_blocks_survive_json() {
        let mut s = sample();
        s.stall.charge(StallReason::IcacheMiss);
        s.stall.charge(StallReason::Committing);
        s.l1i.outcomes_fdp.requests = 9;
        s.l1i.outcomes_fdp.timely = 4;
        s.l1i.outcomes_fdp.late = 2;
        s.l1i.outcomes_fdp.useless_evicted = 3;
        s.l1i.outcomes_pf.requests = 5;
        s.l1i.outcomes_pf.dropped = 5;
        let round = Json::parse(&s.to_json().to_string()).unwrap();
        let stall = round.get("counters").and_then(|c| c.get("stall_cycles"));
        let stall = stall.expect("stall_cycles block");
        for name in STALL_REASON_NAMES {
            assert!(stall.get(name).and_then(Json::as_u64).is_some(), "{name}");
        }
        assert_eq!(stall.get("icache_miss").and_then(Json::as_u64), Some(1));
        let outcomes = round
            .get("counters")
            .and_then(|c| c.get("l1i"))
            .and_then(|c| c.get("prefetch_outcomes"))
            .expect("prefetch_outcomes block");
        let fdp = outcomes.get("fdp").expect("fdp side");
        assert_eq!(fdp.get("requests").and_then(Json::as_u64), Some(9));
        assert_eq!(fdp.get("timely").and_then(Json::as_u64), Some(4));
        let derived = round.get("derived").unwrap();
        let acc = derived.get("fdp_accuracy").and_then(Json::as_f64).unwrap();
        assert!((acc - 6.0 / 9.0).abs() < 1e-9, "{acc}");
        let tml = derived
            .get("fdp_timeliness")
            .and_then(Json::as_f64)
            .unwrap();
        assert!((tml - 4.0 / 6.0).abs() < 1e-9, "{tml}");
        assert!(derived
            .get("stall_pki")
            .and_then(|p| p.get("committing"))
            .and_then(Json::as_f64)
            .is_some());
        assert!(derived
            .get("frontend_bound_fraction")
            .and_then(Json::as_f64)
            .is_some());
    }

    #[test]
    fn pfc_harmful_rate_guards_zero_restreams() {
        let mut s = sample();
        assert_eq!(s.pfc_harmful_rate(), 0.0);
        s.pfc_restreams = 8;
        s.pfc_harmful = 2;
        assert!((s.pfc_harmful_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_all_core_fields() {
        let a = sample();
        let mut b = sample();
        b.cycles += 500;
        b.retired += 1500;
        b.mispredicts += 7;
        b.l1i.tag_probes += 42;
        b.stall.charge(StallReason::FtqEmpty);
        b.l1i.outcomes_pf.late += 3;
        let d = b.delta(&a);
        assert_eq!(d.cycles, 500);
        assert_eq!(d.retired, 1500);
        assert_eq!(d.mispredicts, 7);
        assert_eq!(d.l1i.tag_probes, 42);
        assert_eq!(d.starvation_cycles, 0);
        assert_eq!(d.stall.get(StallReason::FtqEmpty), 1);
        assert_eq!(d.l1i.outcomes_pf.late, 3);
    }
}
