#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fdip-serve` — sweep-as-a-service: a long-running daemon that accepts
//! config × workload grid submissions over a hand-rolled HTTP/1.1
//! protocol (`std::net` only), executes the cells on the shared
//! `fdip-exec` pool, and memoizes every cell in a content-addressed
//! on-disk cache so repeated sweeps — across clients and across daemon
//! restarts — never re-simulate.
//!
//! The moving parts:
//!
//! * [`http`] — request/response plumbing and the service error type;
//! * [`cache`] — the `<state_dir>/cache/` cell store, keyed by
//!   `fdip_harness::remote::cell_key`;
//! * [`journal`] — the write-ahead checkpoint log that makes a killed
//!   daemon resumable;
//! * [`scheduler`] — grid validation, admission control (bounded
//!   in-flight grids with 429 backpressure), cell classification
//!   (cache hit / coalesce onto an in-flight simulation / run), and
//!   response assembly;
//! * [`telemetry`] — the shared `fdip-obs` metrics registry behind both
//!   the Document 6 manifest (`GET /v1/telemetry`) and the Prometheus
//!   text exposition (`GET /v1/metrics`); structured logs are served at
//!   `GET /v1/logs` and grid traces dump to `--trace-dir`
//!   (`docs/OBSERVABILITY.md`).
//!
//! The wire protocol, cache-key derivation, and journal format are
//! specified in `docs/SERVE.md` and enforced bidirectionally by
//! `tests/serve_doc.rs`. The determinism contract holds end to end: a
//! grid served remotely (fresh, cached, or resumed) is byte-identical
//! to the same grid run locally once volatile manifest fields are
//! stripped, because the daemon runs the same `run_workload_job` and
//! the wire codec round-trips every counter and float exactly.

pub mod cache;
pub mod http;
pub mod journal;
pub mod scheduler;
pub mod telemetry;

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use fdip_exec::{CancelToken, Pool};
use fdip_harness::remote::{
    GRID_PATH, HEALTHZ_PATH, LOGS_PATH, METRICS_PATH, PROGRESS_PATH, SHUTDOWN_PATH, TELEMETRY_PATH,
};
use fdip_obs::clock::Timer;
use fdip_obs::log::{self, Level};
use fdip_program::workload::Workload;
use fdip_program::Program;
use fdip_telemetry::{Json, SCHEMA_VERSION};

use cache::Cache;
use http::{read_request, write_reply, Reply, Request, ServeError};
use journal::Journal;
use telemetry::ServeTelemetry;

/// Daemon configuration; [`ServerConfig::new`] picks the defaults.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Root of the daemon's persistent state (`cache/`, `journal.log`).
    pub state_dir: PathBuf,
    /// Private worker-pool size; `None` shares the process-global pool.
    pub jobs: Option<usize>,
    /// Grids admitted concurrently before 429 backpressure kicks in.
    pub max_inflight_grids: usize,
    /// Largest accepted request body, in bytes (413 beyond it).
    pub max_body_bytes: usize,
    /// Per-connection read timeout while receiving a request.
    pub read_timeout_ms: u64,
    /// Wall-clock budget for one grid; beyond it the grid's remaining
    /// cells are cancelled and the client gets `408 timeout`.
    pub grid_timeout_ms: u64,
    /// Fault injection for the resume tests: after this many cells have
    /// been simulated (daemon-wide), stop cold — cancel every in-flight
    /// grid and refuse new work — leaving the journal mid-grid.
    pub crash_after_cells: Option<u64>,
    /// When set, each grid's lifecycle spans are written there as a
    /// Chrome `trace_event` JSON file (`grid-<id>.json`).
    pub trace_dir: Option<PathBuf>,
}

impl ServerConfig {
    /// Defaults: ephemeral loopback port, shared global pool, 4
    /// in-flight grids, 8 MiB bodies, 10 s read timeout, 10 min grid
    /// budget, no fault injection.
    pub fn new(state_dir: PathBuf) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir,
            jobs: None,
            max_inflight_grids: 4,
            max_body_bytes: 8 << 20,
            read_timeout_ms: 10_000,
            grid_timeout_ms: 600_000,
            crash_after_cells: None,
            trace_dir: None,
        }
    }
}

/// Lifecycle gate: drain flag plus in-flight work accounting.
#[derive(Debug, Default)]
pub(crate) struct Gate {
    pub(crate) draining: bool,
    pub(crate) inflight_grids: usize,
    pub(crate) connections: usize,
}

/// Coalescing state of one cell key across every in-flight grid.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum SlotState {
    /// Some grid is simulating this cell right now.
    Running,
    /// The cell's result reached the cache.
    Done,
    /// The owning grid was cancelled before (or while) committing it.
    Failed,
}

/// Externally visible progress of one grid (`GET /v1/progress`).
#[derive(Clone, Debug)]
pub(crate) struct GridProgress {
    pub(crate) state: &'static str,
    pub(crate) total_cells: u64,
    pub(crate) completed_cells: u64,
    pub(crate) cache_hits: u64,
}

/// One built workload: parameters, shared program image, content hash.
pub(crate) type BuiltWorkload = (Workload, Arc<Program>, u64);

/// Everything a connection or pool-job thread needs, behind one `Arc`.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) addr: SocketAddr,
    pub(crate) pool: Option<Arc<Pool>>,
    pub(crate) cache: Cache,
    pub(crate) journal: Mutex<Journal>,
    pub(crate) telemetry: ServeTelemetry,
    pub(crate) gate: Mutex<Gate>,
    pub(crate) gate_cv: Condvar,
    pub(crate) slots: Mutex<BTreeMap<String, SlotState>>,
    pub(crate) slots_cv: Condvar,
    pub(crate) progress: Mutex<BTreeMap<String, GridProgress>>,
    pub(crate) suites: Mutex<BTreeMap<String, Arc<Vec<BuiltWorkload>>>>,
    pub(crate) tokens: Mutex<BTreeMap<String, CancelToken>>,
}

impl Shared {
    pub(crate) fn pool(&self) -> &Pool {
        self.pool.as_deref().unwrap_or_else(|| fdip_exec::global())
    }

    /// Enters drain mode: new grids are refused, in-flight grids finish,
    /// and the accept loop is woken (by a loopback connect) so it can
    /// stop accepting and wait the gate down to zero.
    pub(crate) fn begin_drain(&self) {
        {
            let mut gate = self.gate.lock().expect("gate lock");
            gate.draining = true;
        }
        self.gate_cv.notify_all();
        // Wake the accept loop if it is parked in accept().
        let _ = TcpStream::connect(self.addr);
    }

    /// The injected-crash path: like a kill, but in-process — every
    /// in-flight grid's remaining cells are cancelled (cells already on
    /// a worker finish and commit) and the daemon refuses further work.
    /// The journal keeps the interrupted grids' begin records, which is
    /// exactly what restart-resume consumes.
    pub(crate) fn interrupt_all(&self) {
        {
            let mut gate = self.gate.lock().expect("gate lock");
            gate.draining = true;
        }
        self.gate_cv.notify_all();
        for token in self.tokens.lock().expect("token lock").values() {
            token.cancel();
        }
        // Take the accept loop down too — an interrupted daemon drains
        // and exits like a killed one, once in-flight handlers return.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon: accept loop plus journal-resume worker.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    resume_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, replays the journal, and starts serving.
    ///
    /// Any grid the journal recorded as begun-but-not-ended is re-run in
    /// the background immediately (cells already in the cache are hits,
    /// so only the missing remainder simulates); clients that resubmit
    /// the same grid concurrently coalesce onto that work.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the state directory, journal, or listen
    /// socket cannot be set up.
    pub fn spawn(config: ServerConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&config.state_dir)?;
        let cache = Cache::open(config.state_dir.join("cache"))?;
        let (journal, incomplete) = Journal::open(config.state_dir.join("journal.log"))?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let pool = config.jobs.map(|n| Arc::new(Pool::new(n.max(1))));
        let shared = Arc::new(Shared {
            config,
            addr,
            pool,
            cache,
            journal: Mutex::new(journal),
            telemetry: ServeTelemetry::new(),
            gate: Mutex::new(Gate::default()),
            gate_cv: Condvar::new(),
            slots: Mutex::new(BTreeMap::new()),
            slots_cv: Condvar::new(),
            progress: Mutex::new(BTreeMap::new()),
            suites: Mutex::new(BTreeMap::new()),
            tokens: Mutex::new(BTreeMap::new()),
        });

        log::info(
            "serve",
            "daemon started",
            &[
                ("addr", addr.to_string().as_str().into()),
                (
                    "state_dir",
                    shared
                        .config
                        .state_dir
                        .display()
                        .to_string()
                        .as_str()
                        .into(),
                ),
                ("incomplete_grids", (incomplete.len() as u64).into()),
            ],
        );
        let resume_thread = (!incomplete.is_empty()).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for inc in incomplete {
                    shared.telemetry.on_journal_replay();
                    log::info(
                        "serve",
                        "resuming journaled grid",
                        &[("grid_id", inc.grid_id.as_str().into())],
                    );
                    if let Err(e) = scheduler::handle_grid(&shared, &inc.request, true) {
                        log::warn(
                            "serve",
                            "resume stopped",
                            &[
                                ("grid_id", inc.grid_id.as_str().into()),
                                ("code", e.code.into()),
                                ("message", e.message.as_str().into()),
                            ],
                        );
                    }
                }
            })
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, &accept_shared));
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            resume_thread,
        })
    }

    /// The actual bound address (resolves an ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon drains (a client posted `/v1/shutdown`,
    /// or [`Server::stop`] was called from another thread).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Initiates a graceful drain and blocks until in-flight work
    /// finishes: the equivalent of posting `/v1/shutdown` in-process.
    pub fn stop(mut self) {
        self.shared.begin_drain();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.resume_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    /// A dropped handle still shuts the daemon down cleanly.
    fn drop(&mut self) {
        self.shared.begin_drain();
        self.join_threads();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if shared.gate.lock().expect("gate lock").draining {
            break;
        }
        shared.gate.lock().expect("gate lock").connections += 1;
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            handle_connection(&shared, stream);
            shared.gate.lock().expect("gate lock").connections -= 1;
            shared.gate_cv.notify_all();
        });
    }
    // Refuse new connections while the drain completes.
    drop(listener);
    let mut gate = shared.gate.lock().expect("gate lock");
    while gate.inflight_grids > 0 || gate.connections > 0 {
        gate = shared.gate_cv.wait(gate).expect("gate lock");
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.telemetry.on_request();
    let timer = Timer::start();
    let request = read_request(
        &stream,
        shared.config.max_body_bytes,
        Duration::from_millis(shared.config.read_timeout_ms),
    );
    let route = request
        .as_ref()
        .map(|r| format!("{} {}", r.method, r.path))
        .unwrap_or_else(|_| "(unreadable)".to_string());
    let outcome = request.and_then(|req| dispatch(shared, &req));
    let (status, reply) = match outcome {
        Ok(reply) => (200, reply),
        Err(e) => {
            log::warn(
                "serve",
                "request failed",
                &[
                    ("route", route.as_str().into()),
                    ("status", u64::from(e.status).into()),
                    ("code", e.code.into()),
                    ("message", e.message.as_str().into()),
                ],
            );
            (e.status, Reply::Json(e.to_json()))
        }
    };
    let micros = timer.elapsed_micros();
    shared.telemetry.on_response(status, micros);
    log::debug(
        "serve",
        "request served",
        &[
            ("route", route.as_str().into()),
            ("status", u64::from(status).into()),
            ("micros", micros.into()),
        ],
    );
    let _ = write_reply(&mut stream, status, &reply);
}

fn dispatch(shared: &Arc<Shared>, req: &Request) -> Result<Reply, ServeError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", p) if p == GRID_PATH => {
            scheduler::handle_grid(shared, &req.body, false).map(Reply::Json)
        }
        ("GET", p) if p == HEALTHZ_PATH => Ok(Reply::Json(
            Json::obj()
                .with("schema_version", SCHEMA_VERSION)
                .with("ok", true),
        )),
        ("GET", p) if p == PROGRESS_PATH => Ok(Reply::Json(progress_json(shared))),
        ("GET", p) if p == TELEMETRY_PATH => Ok(Reply::Json(shared.telemetry.to_json())),
        ("GET", p) if p == METRICS_PATH => Ok(Reply::Text(
            shared.telemetry.render_metrics(&shared.pool().stats()),
        )),
        ("GET", p) if p == LOGS_PATH => Ok(Reply::Json(logs_json(req)?)),
        ("POST", p) if p == SHUTDOWN_PATH => {
            shared.begin_drain();
            Ok(Reply::Json(
                Json::obj()
                    .with("schema_version", SCHEMA_VERSION)
                    .with("draining", true),
            ))
        }
        (_, p) => Err(ServeError::new(
            404,
            "not_found",
            format!("no endpoint at {p}"),
        )),
    }
}

/// `GET /v1/logs` — a page of the in-memory log ring (Document 9 of
/// `docs/METRICS.md`). Query parameters: `since` (return records with
/// `seq` > it), `level` (minimum severity), `target` (exact match),
/// `limit` (page size, default 256).
fn logs_json(req: &Request) -> Result<Json, ServeError> {
    let since = match req.query("since") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| ServeError::bad_request(format!("bad since {v:?}")))?,
        None => 0,
    };
    let min_level = match req.query("level") {
        Some(v) => Some(
            Level::parse(v).ok_or_else(|| ServeError::bad_request(format!("bad level {v:?}")))?,
        ),
        None => None,
    };
    let limit = match req.query("limit") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ServeError::bad_request(format!("bad limit {v:?}")))?,
        None => 256,
    };
    let page = log::logger().recent(since, min_level, req.query("target"), limit);
    Ok(Json::obj()
        .with("schema_version", SCHEMA_VERSION)
        .with(
            "logs",
            Json::Arr(page.records.iter().map(log::LogRecord::to_json).collect()),
        )
        .with("dropped", page.dropped)
        .with("next_since", page.next_since))
}

fn progress_json(shared: &Shared) -> Json {
    let grids: Vec<Json> = shared
        .progress
        .lock()
        .expect("progress lock")
        .iter()
        .map(|(grid_id, p)| {
            Json::obj()
                .with("grid_id", grid_id.as_str())
                .with("state", p.state)
                .with("total_cells", p.total_cells)
                .with("completed_cells", p.completed_cells)
                .with("cache_hits", p.cache_hits)
        })
        .collect();
    Json::obj()
        .with("schema_version", SCHEMA_VERSION)
        .with("grids", Json::Arr(grids))
}
