//! Content-addressed result cache: one JSON document per grid cell,
//! keyed by `fdip_harness::remote::cell_key` (FNV-1a over config hash,
//! workload hash, seed, and instruction budget).
//!
//! Entries are written atomically (`<key>.json.tmp` + rename) so a
//! killed daemon never leaves a torn entry behind, and every read
//! re-parses from disk — a corrupt file is simply a miss. The entry
//! layout is specified in `docs/SERVE.md` §"Cache entries".

use std::collections::BTreeSet;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

use fdip_telemetry::Json;

/// An on-disk cell cache rooted at `<state_dir>/cache/`.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    index: Mutex<BTreeSet<String>>,
}

impl Cache {
    /// Opens (creating if needed) the cache directory and indexes the
    /// keys already present.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created or read.
    pub fn open(dir: PathBuf) -> io::Result<Cache> {
        std::fs::create_dir_all(&dir)?;
        let mut index = BTreeSet::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    index.insert(stem.to_string());
                }
            }
        }
        Ok(Cache {
            dir,
            index: Mutex::new(index),
        })
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.index.lock().expect("cache index lock").len()
    }

    /// Returns `true` if no cells are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `key` has a cached entry.
    pub fn contains(&self, key: &str) -> bool {
        self.index.lock().expect("cache index lock").contains(key)
    }

    /// Reads and parses the entry for `key`. Any read or parse failure
    /// (including a file deleted out from under the index) is a miss.
    pub fn get(&self, key: &str) -> Option<Json> {
        if !self.contains(key) {
            return None;
        }
        let text = std::fs::read_to_string(self.dir.join(format!("{key}.json"))).ok()?;
        Json::parse(&text).ok()
    }

    /// Writes the entry for `key` atomically and indexes it.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the entry cannot be written or renamed
    /// into place; the index is only updated on success.
    pub fn put(&self, key: &str, doc: &Json) -> io::Result<()> {
        let tmp = self.dir.join(format!("{key}.json.tmp"));
        let final_path = self.dir.join(format!("{key}.json"));
        std::fs::write(&tmp, doc.to_string_pretty())?;
        std::fs::rename(&tmp, &final_path)?;
        self.index
            .lock()
            .expect("cache index lock")
            .insert(key.to_string());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fdip-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips_and_survives_reopen() {
        let dir = temp_dir("roundtrip");
        let cache = Cache::open(dir.clone()).unwrap();
        assert!(cache.is_empty());
        let doc = Json::obj().with("cell", "abc").with("value", 7u64);
        cache.put("abc", &doc).unwrap();
        assert!(cache.contains("abc"));
        assert_eq!(cache.get("abc"), Some(doc.clone()));
        assert_eq!(cache.get("missing"), None);
        // A fresh Cache over the same directory sees the entry.
        let reopened = Cache::open(dir.clone()).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.get("abc"), Some(doc));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_reads_as_miss() {
        let dir = temp_dir("corrupt");
        let cache = Cache::open(dir.clone()).unwrap();
        cache.put("bad", &Json::obj().with("x", 1u64)).unwrap();
        std::fs::write(dir.join("bad.json"), "{not json").unwrap();
        assert!(cache.contains("bad"));
        assert_eq!(cache.get("bad"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_files_are_not_indexed_on_open() {
        let dir = temp_dir("tmpfiles");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("torn.json.tmp"), "{").unwrap();
        let cache = Cache::open(dir.clone()).unwrap();
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
