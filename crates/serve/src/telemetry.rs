//! Serve-side telemetry: the counters behind `GET /v1/telemetry`,
//! emitted as **Document 6** of `docs/METRICS.md` (the serve manifest).
//!
//! This is the one module in the daemon allowed to read wall clocks
//! (`lint-allow.txt` carries the justification): uptime and start time
//! are operator telemetry and never feed a simulation result. Everything
//! else is monotonic counting under a single mutex — no atomics, so a
//! snapshot is always internally consistent.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Instant, SystemTime};

use fdip_telemetry::{Histogram, Json, ToJson, SCHEMA_VERSION};

#[derive(Clone, Debug, Default)]
struct ClientStats {
    requests: u64,
    cells: u64,
    cache_hits: u64,
}

#[derive(Debug, Default)]
struct Inner {
    requests: u64,
    grids_submitted: u64,
    grids_completed: u64,
    grids_resumed: u64,
    grids_interrupted: u64,
    cells_served: u64,
    cells_cache_hits: u64,
    cells_cache_misses: u64,
    cells_simulated: u64,
    cells_coalesced: u64,
    rejected_busy: u64,
    rejected_draining: u64,
    queue_depth: Histogram,
    clients: BTreeMap<String, ClientStats>,
}

/// The daemon's telemetry state; one per [`crate::Server`].
#[derive(Debug)]
pub struct ServeTelemetry {
    started: Instant,
    started_unix: u64,
    inner: Mutex<Inner>,
}

impl Default for ServeTelemetry {
    fn default() -> Self {
        ServeTelemetry::new()
    }
}

impl ServeTelemetry {
    /// Creates zeroed telemetry stamped with the current wall clock.
    pub fn new() -> ServeTelemetry {
        let started_unix = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        ServeTelemetry {
            started: Instant::now(),
            started_unix,
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("serve telemetry lock")
    }

    /// Counts one HTTP request (any endpoint, any outcome).
    pub fn on_request(&self) {
        self.lock().requests += 1;
    }

    /// Counts an accepted grid and samples the post-admission queue
    /// depth (in-flight grids, this one included).
    pub fn on_grid_admitted(&self, resumed: bool, inflight: u64) {
        let mut g = self.lock();
        g.grids_submitted += 1;
        if resumed {
            g.grids_resumed += 1;
        }
        g.queue_depth.record(inflight);
    }

    /// Counts a grid whose response was fully assembled.
    pub fn on_grid_completed(&self) {
        self.lock().grids_completed += 1;
    }

    /// Counts a grid cut short by a timeout, drain, or injected crash.
    pub fn on_grid_interrupted(&self) {
        self.lock().grids_interrupted += 1;
    }

    /// Counts a rejected grid (`busy` = 429 backpressure, otherwise the
    /// daemon was draining).
    pub fn on_grid_rejected(&self, busy: bool) {
        let mut g = self.lock();
        if busy {
            g.rejected_busy += 1;
        } else {
            g.rejected_draining += 1;
        }
    }

    /// Accounts a completed grid's cells to the aggregate and per-client
    /// counters: `hits` came from the cache, `coalesced` waited on a
    /// concurrent grid's in-flight simulation, the rest were simulated
    /// here (simulation itself is counted by [`ServeTelemetry::on_cell_simulated`]).
    pub fn on_cells_served(&self, client: &str, total: u64, hits: u64, coalesced: u64) {
        let mut g = self.lock();
        g.cells_served += total;
        g.cells_cache_hits += hits;
        g.cells_cache_misses += total - hits;
        g.cells_coalesced += coalesced;
        let c = g.clients.entry(client.to_string()).or_default();
        c.requests += 1;
        c.cells += total;
        c.cache_hits += hits;
    }

    /// Counts one cell simulated on this daemon's pool and returns the
    /// running total (the fault-injection hook keys off it).
    pub fn on_cell_simulated(&self) -> u64 {
        let mut g = self.lock();
        g.cells_simulated += 1;
        g.cells_simulated
    }

    /// Total cells simulated so far.
    pub fn cells_simulated(&self) -> u64 {
        self.lock().cells_simulated
    }

    /// Renders Document 6, the serve manifest (`docs/METRICS.md` §6).
    pub fn to_json(&self) -> Json {
        let g = self.lock();
        let clients: Vec<Json> = g
            .clients
            .iter()
            .map(|(name, c)| {
                Json::obj()
                    .with("client", name.as_str())
                    .with("requests", c.requests)
                    .with("cells", c.cells)
                    .with("cache_hits", c.cache_hits)
            })
            .collect();
        Json::obj().with("schema_version", SCHEMA_VERSION).with(
            "serve",
            Json::obj()
                .with("tool", "fdip-serve")
                .with("started_unix", self.started_unix)
                .with("uptime_seconds", self.started.elapsed().as_secs_f64())
                .with("requests", g.requests)
                .with(
                    "grids",
                    Json::obj()
                        .with("submitted", g.grids_submitted)
                        .with("completed", g.grids_completed)
                        .with("resumed", g.grids_resumed)
                        .with("interrupted", g.grids_interrupted),
                )
                .with(
                    "cells",
                    Json::obj()
                        .with("served", g.cells_served)
                        .with("cache_hits", g.cells_cache_hits)
                        .with("cache_misses", g.cells_cache_misses)
                        .with("simulated", g.cells_simulated)
                        .with("coalesced", g.cells_coalesced),
                )
                .with(
                    "rejected",
                    Json::obj()
                        .with("busy", g.rejected_busy)
                        .with("draining", g.rejected_draining),
                )
                .with("queue_depth", g.queue_depth.to_json())
                .with("clients", Json::Arr(clients)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_six_counts_what_happened() {
        let t = ServeTelemetry::new();
        t.on_request();
        t.on_request();
        t.on_grid_admitted(false, 1);
        t.on_grid_admitted(true, 2);
        t.on_grid_completed();
        t.on_grid_interrupted();
        t.on_grid_rejected(true);
        t.on_grid_rejected(false);
        t.on_cells_served("alice", 6, 4, 1);
        t.on_cells_served("bob", 3, 0, 0);
        assert_eq!(t.on_cell_simulated(), 1);
        assert_eq!(t.on_cell_simulated(), 2);
        assert_eq!(t.cells_simulated(), 2);

        let doc = t.to_json();
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        let s = doc.get("serve").unwrap();
        assert_eq!(s.get("tool").and_then(Json::as_str), Some("fdip-serve"));
        assert_eq!(s.get("requests").and_then(Json::as_u64), Some(2));
        let grids = s.get("grids").unwrap();
        assert_eq!(grids.get("submitted").and_then(Json::as_u64), Some(2));
        assert_eq!(grids.get("resumed").and_then(Json::as_u64), Some(1));
        assert_eq!(grids.get("completed").and_then(Json::as_u64), Some(1));
        assert_eq!(grids.get("interrupted").and_then(Json::as_u64), Some(1));
        let cells = s.get("cells").unwrap();
        assert_eq!(cells.get("served").and_then(Json::as_u64), Some(9));
        assert_eq!(cells.get("cache_hits").and_then(Json::as_u64), Some(4));
        assert_eq!(cells.get("cache_misses").and_then(Json::as_u64), Some(5));
        assert_eq!(cells.get("simulated").and_then(Json::as_u64), Some(2));
        assert_eq!(cells.get("coalesced").and_then(Json::as_u64), Some(1));
        let rejected = s.get("rejected").unwrap();
        assert_eq!(rejected.get("busy").and_then(Json::as_u64), Some(1));
        assert_eq!(rejected.get("draining").and_then(Json::as_u64), Some(1));
        assert_eq!(
            s.get("queue_depth")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
        // Clients are sorted by name for deterministic output.
        let clients = s.get("clients").and_then(Json::as_arr).unwrap();
        assert_eq!(clients.len(), 2);
        assert_eq!(
            clients[0].get("client").and_then(Json::as_str),
            Some("alice")
        );
        assert_eq!(clients[0].get("cells").and_then(Json::as_u64), Some(6));
    }
}
