//! Serve-side telemetry: the counters behind `GET /v1/telemetry`
//! (**Document 6** of `docs/METRICS.md`) and `GET /v1/metrics`
//! (Prometheus text exposition, `docs/OBSERVABILITY.md`).
//!
//! Both surfaces are views over **one** [`fdip_obs::metrics::Registry`]:
//! every Document 6 value is read back from the same counter cell a
//! scrape samples, so the two cannot drift — a regression test compares
//! them field by field. Wall-clock reads (start time, uptime) go
//! through `fdip_obs::clock`, the one allowlisted clock module; this
//! file no longer touches `Instant`/`SystemTime` itself.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use fdip_exec::PoolStats;
use fdip_obs::clock::{unix_now_secs, Timer};
use fdip_obs::metrics::{Counter, Gauge, HistogramHandle, Registry};
use fdip_telemetry::{Json, ToJson, SCHEMA_VERSION};

/// Per-client counter handles (and the iteration order for the
/// Document 6 `clients` array).
struct ClientCells {
    requests: Counter,
    cells: Counter,
    cache_hits: Counter,
}

/// The daemon's telemetry state; one per [`crate::Server`], each with
/// its own private registry so tests hosting several daemons in one
/// process never cross-contaminate scrapes.
pub struct ServeTelemetry {
    started: Timer,
    started_unix: u64,
    registry: Arc<Registry>,
    requests: Counter,
    grids_submitted: Counter,
    grids_completed: Counter,
    grids_resumed: Counter,
    grids_interrupted: Counter,
    rejected_busy: Counter,
    rejected_draining: Counter,
    cells_served: Counter,
    cells_cache_hits: Counter,
    cells_cache_misses: Counter,
    cells_simulated: Counter,
    cells_coalesced: Counter,
    journal_replays: Counter,
    inflight_grids: Gauge,
    inflight_cells: Gauge,
    queue_depth: HistogramHandle,
    request_duration: HistogramHandle,
    cell_sim_duration: HistogramHandle,
    clients: Mutex<BTreeMap<String, ClientCells>>,
}

impl Default for ServeTelemetry {
    fn default() -> Self {
        ServeTelemetry::new()
    }
}

impl ServeTelemetry {
    /// Creates zeroed telemetry stamped with the current wall clock.
    /// Every metric family is registered eagerly, so a scrape taken
    /// before any traffic already exposes the full schema.
    pub fn new() -> ServeTelemetry {
        let r = Arc::new(Registry::new());
        let t = ServeTelemetry {
            started: Timer::start(),
            started_unix: unix_now_secs(),
            requests: r.counter(
                "fdip_serve_requests_total",
                "HTTP requests received (any endpoint, any outcome)",
            ),
            grids_submitted: r.counter(
                "fdip_serve_grids_submitted_total",
                "Grids admitted past backpressure (including resumed ones)",
            ),
            grids_completed: r.counter(
                "fdip_serve_grids_completed_total",
                "Grids whose response was fully assembled",
            ),
            grids_resumed: r.counter(
                "fdip_serve_grids_resumed_total",
                "Admitted grids that were journal replays after a restart",
            ),
            grids_interrupted: r.counter(
                "fdip_serve_grids_interrupted_total",
                "Grids cut short by a timeout, drain, or injected crash",
            ),
            rejected_busy: r.counter_with(
                "fdip_serve_grids_rejected_total",
                "Grids refused at admission, by reason",
                &[("reason", "busy")],
            ),
            rejected_draining: r.counter_with(
                "fdip_serve_grids_rejected_total",
                "Grids refused at admission, by reason",
                &[("reason", "draining")],
            ),
            cells_served: r.counter(
                "fdip_serve_cells_served_total",
                "Cells returned to clients in completed grid responses",
            ),
            cells_cache_hits: r.counter(
                "fdip_serve_cell_cache_hits_total",
                "Served cells answered from the content-addressed cache",
            ),
            cells_cache_misses: r.counter(
                "fdip_serve_cell_cache_misses_total",
                "Served cells that were not already cached at classification",
            ),
            cells_simulated: r.counter(
                "fdip_serve_cells_simulated_total",
                "Cells simulated on this daemon's pool",
            ),
            cells_coalesced: r.counter(
                "fdip_serve_cells_coalesced_total",
                "Served cells that waited on another grid's in-flight simulation",
            ),
            journal_replays: r.counter(
                "fdip_serve_journal_replays_total",
                "Incomplete grids replayed from the journal at startup",
            ),
            inflight_grids: r.gauge(
                "fdip_serve_inflight_grids",
                "Grids currently admitted and executing",
            ),
            inflight_cells: r.gauge(
                "fdip_serve_inflight_cells",
                "Cells currently simulating on the pool",
            ),
            queue_depth: r.histogram(
                "fdip_serve_grid_queue_depth",
                "In-flight grid count sampled at each admission",
            ),
            request_duration: r.histogram(
                "fdip_serve_request_duration_us",
                "Wall-clock microseconds from accepted connection to written response",
            ),
            cell_sim_duration: r.histogram(
                "fdip_serve_cell_sim_duration_us",
                "Wall-clock microseconds simulating one cell on a pool worker",
            ),
            registry: Arc::clone(&r),
            clients: Mutex::new(BTreeMap::new()),
        };
        // The per-status response family: register the common case so
        // it appears in a cold scrape.
        let _ = r.counter_with(
            "fdip_serve_responses_total",
            "HTTP responses written, by status code",
            &[("status", "200")],
        );
        t
    }

    /// The registry behind both telemetry surfaces (`/v1/metrics`
    /// renders it; tests sample it directly).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Counts one HTTP request (any endpoint, any outcome).
    pub fn on_request(&self) {
        self.requests.inc();
    }

    /// Counts one written response and its service latency.
    pub fn on_response(&self, status: u16, micros: u64) {
        self.registry
            .counter_with(
                "fdip_serve_responses_total",
                "HTTP responses written, by status code",
                &[("status", &status.to_string())],
            )
            .inc();
        self.request_duration.observe(micros);
    }

    /// Counts an accepted grid and samples the post-admission queue
    /// depth (in-flight grids, this one included).
    pub fn on_grid_admitted(&self, resumed: bool, inflight: u64) {
        self.grids_submitted.inc();
        if resumed {
            self.grids_resumed.inc();
        }
        self.queue_depth.observe(inflight);
        self.inflight_grids.set(inflight as f64);
    }

    /// Records a grid leaving the gate (any exit path).
    pub fn on_grid_done(&self, inflight: u64) {
        self.inflight_grids.set(inflight as f64);
    }

    /// Counts a grid whose response was fully assembled.
    pub fn on_grid_completed(&self) {
        self.grids_completed.inc();
    }

    /// Counts a grid cut short by a timeout, drain, or injected crash.
    pub fn on_grid_interrupted(&self) {
        self.grids_interrupted.inc();
    }

    /// Counts a rejected grid (`busy` = 429 backpressure, otherwise the
    /// daemon was draining).
    pub fn on_grid_rejected(&self, busy: bool) {
        if busy {
            self.rejected_busy.inc();
        } else {
            self.rejected_draining.inc();
        }
    }

    /// Counts an incomplete grid picked up from the journal at startup.
    pub fn on_journal_replay(&self) {
        self.journal_replays.inc();
    }

    /// Accounts a completed grid's cells to the aggregate and per-client
    /// counters: `hits` came from the cache, `coalesced` waited on a
    /// concurrent grid's in-flight simulation, the rest were simulated
    /// here (simulation itself is counted by
    /// [`ServeTelemetry::on_cell_simulated`]).
    pub fn on_cells_served(&self, client: &str, total: u64, hits: u64, coalesced: u64) {
        self.cells_served.add(total);
        self.cells_cache_hits.add(hits);
        self.cells_cache_misses.add(total - hits);
        self.cells_coalesced.add(coalesced);
        let mut clients = self.clients.lock().expect("client lock");
        let c = clients.entry(client.to_string()).or_insert_with(|| {
            let labels: &[(&str, &str)] = &[("client", client)];
            ClientCells {
                requests: self.registry.counter_with(
                    "fdip_serve_client_requests_total",
                    "Completed grid requests, by client name",
                    labels,
                ),
                cells: self.registry.counter_with(
                    "fdip_serve_client_cells_total",
                    "Cells served, by client name",
                    labels,
                ),
                cache_hits: self.registry.counter_with(
                    "fdip_serve_client_cache_hits_total",
                    "Cache-hit cells served, by client name",
                    labels,
                ),
            }
        });
        c.requests.inc();
        c.cells.add(total);
        c.cache_hits.add(hits);
    }

    /// Marks a cell simulation starting or finishing on a pool worker
    /// (drives the in-flight cells gauge).
    pub fn on_cell_sim_flight(&self, delta: f64) {
        self.inflight_cells.add(delta);
    }

    /// Counts one cell simulated on this daemon's pool (taking `micros`
    /// of worker wall-clock) and returns the running total (the
    /// fault-injection hook keys off it).
    pub fn on_cell_simulated(&self, micros: u64) -> u64 {
        self.cell_sim_duration.observe(micros);
        self.cells_simulated.inc()
    }

    /// Total cells simulated so far.
    pub fn cells_simulated(&self) -> u64 {
        self.cells_simulated.get()
    }

    /// Mirrors the worker pool's lifetime stats into the registry (the
    /// pool keeps its own monotonic totals, so mirrored counters use
    /// `set_total` and never double count). Called at scrape time.
    pub fn refresh_exec(&self, stats: &PoolStats) {
        let r = &self.registry;
        r.gauge("fdip_exec_workers", "Worker threads in the simulation pool")
            .set(stats.workers as f64);
        r.counter(
            "fdip_exec_jobs_completed_total",
            "Jobs finished over the pool's lifetime",
        )
        .set_total(stats.jobs_completed);
        r.counter(
            "fdip_exec_steals_total",
            "Jobs taken from a sibling worker's stripe",
        )
        .set_total(stats.steals);
        r.gauge(
            "fdip_exec_peak_busy",
            "Maximum workers simultaneously executing jobs",
        )
        .set(stats.peak_busy as f64);
        r.gauge(
            "fdip_exec_busy_fraction",
            "Fraction of workers-times-elapsed spent executing jobs",
        )
        .set(stats.busy_fraction);
        r.histogram(
            "fdip_exec_queue_depth",
            "Injector depth observed at each job submission",
        )
        .replace(stats.queue_depth.clone());
        for (i, jobs) in stats.worker_jobs.iter().enumerate() {
            r.counter_with(
                "fdip_exec_worker_jobs_total",
                "Jobs executed, by worker index",
                &[("worker", &i.to_string())],
            )
            .set_total(*jobs);
        }
    }

    /// Renders the Prometheus text exposition for `GET /v1/metrics`,
    /// after mirroring the pool's current stats.
    pub fn render_metrics(&self, pool: &PoolStats) -> String {
        self.refresh_exec(pool);
        self.registry.render()
    }

    /// Renders Document 6, the serve manifest (`docs/METRICS.md` §6).
    /// Every value is read from the same registry cells `/v1/metrics`
    /// samples.
    pub fn to_json(&self) -> Json {
        let clients: Vec<Json> = self
            .clients
            .lock()
            .expect("client lock")
            .iter()
            .map(|(name, c)| {
                Json::obj()
                    .with("client", name.as_str())
                    .with("requests", c.requests.get())
                    .with("cells", c.cells.get())
                    .with("cache_hits", c.cache_hits.get())
            })
            .collect();
        Json::obj().with("schema_version", SCHEMA_VERSION).with(
            "serve",
            Json::obj()
                .with("tool", "fdip-serve")
                .with("started_unix", self.started_unix)
                .with("uptime_seconds", self.started.elapsed_secs())
                .with("requests", self.requests.get())
                .with(
                    "grids",
                    Json::obj()
                        .with("submitted", self.grids_submitted.get())
                        .with("completed", self.grids_completed.get())
                        .with("resumed", self.grids_resumed.get())
                        .with("interrupted", self.grids_interrupted.get()),
                )
                .with(
                    "cells",
                    Json::obj()
                        .with("served", self.cells_served.get())
                        .with("cache_hits", self.cells_cache_hits.get())
                        .with("cache_misses", self.cells_cache_misses.get())
                        .with("simulated", self.cells_simulated.get())
                        .with("coalesced", self.cells_coalesced.get()),
                )
                .with(
                    "rejected",
                    Json::obj()
                        .with("busy", self.rejected_busy.get())
                        .with("draining", self.rejected_draining.get()),
                )
                .with("queue_depth", self.queue_depth.snapshot().to_json())
                .with("clients", Json::Arr(clients)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_obs::expo;
    use fdip_obs::metrics::SampleValue;

    fn drive(t: &ServeTelemetry) {
        t.on_request();
        t.on_request();
        t.on_response(200, 120);
        t.on_grid_admitted(false, 1);
        t.on_grid_admitted(true, 2);
        t.on_grid_completed();
        t.on_grid_interrupted();
        t.on_grid_rejected(true);
        t.on_grid_rejected(false);
        t.on_cells_served("alice", 6, 4, 1);
        t.on_cells_served("bob", 3, 0, 0);
        t.on_journal_replay();
        assert_eq!(t.on_cell_simulated(50), 1);
        assert_eq!(t.on_cell_simulated(70), 2);
        assert_eq!(t.cells_simulated(), 2);
    }

    #[test]
    fn document_six_counts_what_happened() {
        let t = ServeTelemetry::new();
        drive(&t);

        let doc = t.to_json();
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        let s = doc.get("serve").unwrap();
        assert_eq!(s.get("tool").and_then(Json::as_str), Some("fdip-serve"));
        assert_eq!(s.get("requests").and_then(Json::as_u64), Some(2));
        let grids = s.get("grids").unwrap();
        assert_eq!(grids.get("submitted").and_then(Json::as_u64), Some(2));
        assert_eq!(grids.get("resumed").and_then(Json::as_u64), Some(1));
        assert_eq!(grids.get("completed").and_then(Json::as_u64), Some(1));
        assert_eq!(grids.get("interrupted").and_then(Json::as_u64), Some(1));
        let cells = s.get("cells").unwrap();
        assert_eq!(cells.get("served").and_then(Json::as_u64), Some(9));
        assert_eq!(cells.get("cache_hits").and_then(Json::as_u64), Some(4));
        assert_eq!(cells.get("cache_misses").and_then(Json::as_u64), Some(5));
        assert_eq!(cells.get("simulated").and_then(Json::as_u64), Some(2));
        assert_eq!(cells.get("coalesced").and_then(Json::as_u64), Some(1));
        let rejected = s.get("rejected").unwrap();
        assert_eq!(rejected.get("busy").and_then(Json::as_u64), Some(1));
        assert_eq!(rejected.get("draining").and_then(Json::as_u64), Some(1));
        assert_eq!(
            s.get("queue_depth")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
        // Clients are sorted by name for deterministic output.
        let clients = s.get("clients").and_then(Json::as_arr).unwrap();
        assert_eq!(clients.len(), 2);
        assert_eq!(
            clients[0].get("client").and_then(Json::as_str),
            Some("alice")
        );
        assert_eq!(clients[0].get("cells").and_then(Json::as_u64), Some(6));
    }

    /// The drift regression: every Document 6 counter must equal the
    /// corresponding `/v1/metrics` sample, because both read the same
    /// registry cell.
    #[test]
    fn document_six_equals_the_metrics_scrape() {
        let t = ServeTelemetry::new();
        drive(&t);
        let pool = fdip_exec::Pool::new(2);
        pool.run_batch((0..4u64).map(|i| move || i).collect::<Vec<_>>());
        let scrape = expo::validate(&t.render_metrics(&pool.stats())).expect("scrape validates");

        let doc = t.to_json();
        let s = doc.get("serve").unwrap();
        let u64_at = |v: &Json, path: &[&str]| {
            let mut cur = v.clone();
            for p in path {
                cur = cur.get(p).cloned().unwrap();
            }
            cur.as_u64().unwrap()
        };
        for (family, path) in [
            ("fdip_serve_requests_total", &["requests"][..]),
            ("fdip_serve_grids_submitted_total", &["grids", "submitted"]),
            ("fdip_serve_grids_completed_total", &["grids", "completed"]),
            ("fdip_serve_grids_resumed_total", &["grids", "resumed"]),
            (
                "fdip_serve_grids_interrupted_total",
                &["grids", "interrupted"],
            ),
            ("fdip_serve_cells_served_total", &["cells", "served"]),
            ("fdip_serve_cell_cache_hits_total", &["cells", "cache_hits"]),
            (
                "fdip_serve_cell_cache_misses_total",
                &["cells", "cache_misses"],
            ),
            ("fdip_serve_cells_simulated_total", &["cells", "simulated"]),
            ("fdip_serve_cells_coalesced_total", &["cells", "coalesced"]),
        ] {
            assert_eq!(
                scrape.counter_total(family),
                Some(u64_at(s, path)),
                "{family} drifted from Document 6 {path:?}"
            );
        }
        // The labeled rejection family sums busy + draining.
        assert_eq!(
            scrape.counter_total("fdip_serve_grids_rejected_total"),
            Some(u64_at(s, &["rejected", "busy"]) + u64_at(s, &["rejected", "draining"])),
        );
        // Per-client counters carry the client label.
        let family = &scrape.families["fdip_serve_client_cells_total"];
        let alice = family
            .samples
            .iter()
            .find(|smp| smp.label("client") == Some("alice"))
            .expect("alice sample");
        assert_eq!(alice.value, 6.0);
        // The exec mirrors match the pool exactly.
        assert_eq!(
            scrape.counter_total("fdip_exec_jobs_completed_total"),
            Some(pool.stats().jobs_completed)
        );
        assert_eq!(scrape.gauge_value("fdip_exec_workers"), Some(2.0));
    }

    #[test]
    fn a_cold_scrape_exposes_the_full_schema() {
        let t = ServeTelemetry::new();
        let pool = fdip_exec::Pool::new(1);
        let scrape = expo::validate(&t.render_metrics(&pool.stats())).expect("cold scrape");
        let serve_families = scrape
            .families
            .keys()
            .filter(|n| n.starts_with("fdip_serve_"))
            .count();
        let exec_families = scrape
            .families
            .keys()
            .filter(|n| n.starts_with("fdip_exec_"))
            .count();
        assert!(
            serve_families + exec_families >= 12,
            "only {serve_families}+{exec_families} families in a cold scrape:\n{:?}",
            scrape.families.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn registry_samples_are_readable_programmatically() {
        let t = ServeTelemetry::new();
        t.on_request();
        let samples = t.registry().samples("fdip_serve_requests_total");
        assert!(matches!(samples[0].1, SampleValue::Counter(1)));
    }
}
