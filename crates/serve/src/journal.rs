//! Write-ahead checkpoint journal: one JSON record per line, flushed
//! per record, so a daemon killed mid-grid can resume on restart
//! without re-simulating completed cells.
//!
//! Three record kinds (`docs/SERVE.md` §"Checkpoint journal"):
//!
//! * `{"op": "grid_begin", "grid_id": …, "request": {…}}` — the full
//!   grid request, written before any cell runs;
//! * `{"op": "cell_done", "grid_id": …, "cell": …}` — a cell's result
//!   has been committed to the cache;
//! * `{"op": "grid_end", "grid_id": …}` — the grid's response was
//!   assembled; the grid no longer needs replay.
//!
//! On open, the journal is replayed (grids with a `grid_end`, or whose
//! begin record is unreadable, drop out; a torn final line from a kill
//! mid-write is skipped) and compacted down to the begin records of the
//! incomplete grids. Cell-level progress needs no replay bookkeeping:
//! completed cells are found in the content-addressed cache.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;

use fdip_telemetry::Json;

/// An append-only journal at `<state_dir>/journal.log`.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

/// One incomplete grid recovered from the journal: its id and the full
/// original request body.
#[derive(Clone, Debug)]
pub struct Incomplete {
    /// The grid's content-derived id.
    pub grid_id: String,
    /// The original `POST /v1/grid` request body.
    pub request: Json,
}

impl Journal {
    /// Opens the journal, replaying and compacting any existing log.
    /// Returns the journal plus the grids that began but never ended —
    /// in original submission order — for the caller to re-run.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the log cannot be read or rewritten.
    pub fn open(path: PathBuf) -> io::Result<(Journal, Vec<Incomplete>)> {
        let incomplete = match std::fs::read_to_string(&path) {
            Ok(text) => replay(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        // Compact: only the incomplete begin records survive the rewrite.
        let tmp = path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            for inc in &incomplete {
                writeln!(f, "{}", begin_record(&inc.grid_id, &inc.request))?;
            }
        }
        std::fs::rename(&tmp, &path)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((Journal { path, file }, incomplete))
    }

    /// Filesystem path of the log (for diagnostics).
    pub fn path(&self) -> &PathBuf {
        &self.path
    }

    /// Records that a grid was accepted, before any of its cells run.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the record cannot be appended.
    pub fn grid_begin(&mut self, grid_id: &str, request: &Json) -> io::Result<()> {
        writeln!(self.file, "{}", begin_record(grid_id, request))?;
        self.file.flush()
    }

    /// Records that one cell's result reached the cache.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the record cannot be appended.
    pub fn cell_done(&mut self, grid_id: &str, cell: &str) -> io::Result<()> {
        let rec = Json::obj()
            .with("op", "cell_done")
            .with("grid_id", grid_id)
            .with("cell", cell);
        writeln!(self.file, "{}", rec.to_string())?;
        self.file.flush()
    }

    /// Records that a grid's response was fully assembled.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the record cannot be appended.
    pub fn grid_end(&mut self, grid_id: &str) -> io::Result<()> {
        let rec = Json::obj().with("op", "grid_end").with("grid_id", grid_id);
        writeln!(self.file, "{}", rec.to_string())?;
        self.file.flush()
    }
}

fn begin_record(grid_id: &str, request: &Json) -> String {
    Json::obj()
        .with("op", "grid_begin")
        .with("grid_id", grid_id)
        .with("request", request.clone())
        .to_string()
}

/// Replays a journal text into the incomplete grids, in begin order.
/// Unparseable lines (a torn tail from a kill mid-write) are skipped.
fn replay(text: &str) -> Vec<Incomplete> {
    let mut order: Vec<String> = Vec::new();
    let mut begun: Vec<(String, Json)> = Vec::new();
    let mut ended: Vec<String> = Vec::new();
    for line in text.lines() {
        let Ok(rec) = Json::parse(line) else {
            continue;
        };
        let Some(op) = rec.get("op").and_then(Json::as_str) else {
            continue;
        };
        let Some(grid_id) = rec.get("grid_id").and_then(Json::as_str) else {
            continue;
        };
        match op {
            "grid_begin" => {
                if let Some(request) = rec.get("request") {
                    if !order.iter().any(|g| g == grid_id) {
                        order.push(grid_id.to_string());
                        begun.push((grid_id.to_string(), request.clone()));
                    }
                }
            }
            "grid_end" => ended.push(grid_id.to_string()),
            _ => {}
        }
    }
    order
        .into_iter()
        .filter(|g| !ended.iter().any(|e| e == g))
        .filter_map(|g| {
            begun
                .iter()
                .find(|(id, _)| *id == g)
                .map(|(grid_id, request)| Incomplete {
                    grid_id: grid_id.clone(),
                    request: request.clone(),
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fdip-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    fn req(tag: &str) -> Json {
        Json::obj().with("suite", tag)
    }

    #[test]
    fn ended_grids_do_not_replay() {
        let path = temp_log("ended");
        {
            let (mut j, inc) = Journal::open(path.clone()).unwrap();
            assert!(inc.is_empty());
            j.grid_begin("g1", &req("a")).unwrap();
            j.cell_done("g1", "cell1").unwrap();
            j.grid_end("g1").unwrap();
            j.grid_begin("g2", &req("b")).unwrap();
            j.cell_done("g2", "cell2").unwrap();
        }
        let (_, inc) = Journal::open(path.clone()).unwrap();
        assert_eq!(inc.len(), 1);
        assert_eq!(inc[0].grid_id, "g2");
        assert_eq!(inc[0].request, req("b"));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_line_is_skipped_and_compaction_shrinks_the_log() {
        let path = temp_log("torn");
        {
            let (mut j, _) = Journal::open(path.clone()).unwrap();
            j.grid_begin("g1", &req("a")).unwrap();
            j.grid_end("g1").unwrap();
            j.grid_begin("g2", &req("b")).unwrap();
        }
        // Simulate a kill mid-write: a torn record at the tail.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"op\": \"cell_done\", \"grid").unwrap();
        drop(f);
        let (_, inc) = Journal::open(path.clone()).unwrap();
        assert_eq!(inc.len(), 1);
        assert_eq!(inc[0].grid_id, "g2");
        // Compacted: only g2's begin record remains.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("g2"));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn duplicate_begin_records_replay_once() {
        let path = temp_log("dup");
        {
            let (mut j, _) = Journal::open(path.clone()).unwrap();
            j.grid_begin("g1", &req("a")).unwrap();
            j.grid_begin("g1", &req("a")).unwrap();
        }
        let (_, inc) = Journal::open(path.clone()).unwrap();
        assert_eq!(inc.len(), 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
