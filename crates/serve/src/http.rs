//! Minimal HTTP/1.1 server plumbing on `std::net`: request parsing,
//! response writing, and the service error type.
//!
//! The daemon speaks exactly the dialect `fdip_harness::remote` sends —
//! one request per connection, `Content-Length` bodies, no keep-alive,
//! no chunked transfer — which keeps both ends tiny and auditable. The
//! wire contract is specified in `docs/SERVE.md`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use fdip_telemetry::{Json, SCHEMA_VERSION};

/// A service-level error: an HTTP status plus the machine-readable
/// `error.code` the response body carries (`docs/SERVE.md` lists the
/// codes).
#[derive(Clone, Debug)]
pub struct ServeError {
    /// HTTP status code of the response.
    pub status: u16,
    /// Stable machine-readable code (e.g. `bad_request`, `busy`).
    pub code: &'static str,
    /// Human-readable detail, for operators.
    pub message: String,
}

impl ServeError {
    /// Builds an error from its three parts.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> ServeError {
        ServeError {
            status,
            code,
            message: message.into(),
        }
    }

    /// `400 bad_request` — malformed or invalid request body.
    pub fn bad_request(message: impl Into<String>) -> ServeError {
        ServeError::new(400, "bad_request", message)
    }

    /// The `{schema_version, error: {code, message}}` response body.
    pub fn to_json(&self) -> Json {
        Json::obj().with("schema_version", SCHEMA_VERSION).with(
            "error",
            Json::obj()
                .with("code", self.code)
                .with("message", self.message.as_str()),
        )
    }
}

/// One parsed request: method, path, query parameters, and the JSON
/// body (`Json::Null` when the body is empty).
#[derive(Clone, Debug)]
pub struct Request {
    /// HTTP method (`GET`/`POST`).
    pub method: String,
    /// Request path with any query string stripped (e.g. `/v1/grid`).
    pub path: String,
    /// `k=v` pairs from the query string, in request order. Values are
    /// taken literally — the daemon's parameters (`since=`, `level=`,
    /// `target=`, `limit=`) never need percent-encoding.
    pub query: Vec<(String, String)>,
    /// Parsed JSON body, `Json::Null` if the request carried none.
    pub body: Json,
}

impl Request {
    /// The last value of query parameter `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// What a handler returns: most endpoints speak JSON, `/v1/metrics`
/// speaks Prometheus text exposition.
#[derive(Clone, Debug)]
pub enum Reply {
    /// An `application/json` body.
    Json(Json),
    /// A `text/plain; version=0.0.4` body (the exposition content type).
    Text(String),
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Reads and parses one request from `stream`.
///
/// `read_timeout` bounds how long a slow or stalled client can hold the
/// connection; `max_body` bounds the declared body size (`413` beyond
/// it). Any I/O or parse failure maps to a [`ServeError`] the caller
/// writes back.
pub fn read_request(
    stream: &TcpStream,
    max_body: usize,
    read_timeout: Duration,
) -> Result<Request, ServeError> {
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(|e| ServeError::new(500, "internal", format!("set_read_timeout: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| map_io("request line", &e))?;
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return Err(ServeError::bad_request(format!(
                "bad request line {line:?}"
            )))
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (
            p.to_string(),
            q.split('&')
                .filter(|pair| !pair.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (pair.to_string(), String::new()),
                })
                .collect(),
        ),
        None => (target, Vec::new()),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| map_io("headers", &e))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    ServeError::bad_request(format!("bad content-length {value:?}"))
                })?;
            }
        }
    }
    if content_length > max_body {
        return Err(ServeError::new(
            413,
            "too_large",
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut buf = vec![0u8; content_length];
    reader
        .read_exact(&mut buf)
        .map_err(|e| map_io("body", &e))?;
    let body = if buf.is_empty() {
        Json::Null
    } else {
        let text = String::from_utf8(buf)
            .map_err(|e| ServeError::bad_request(format!("body is not utf-8: {e}")))?;
        Json::parse(&text).map_err(|e| ServeError::bad_request(format!("body is not json: {e}")))?
    };
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn map_io(stage: &str, e: &io::Error) -> ServeError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ServeError::new(
            408,
            "timeout",
            format!("client stalled while sending {stage}"),
        ),
        _ => ServeError::bad_request(format!("reading {stage}: {e}")),
    }
}

/// Writes one HTTP/1.1 response with a compact JSON body and closes the
/// exchange (`Connection: close`). Write errors are returned for logging
/// only — the connection is torn down either way.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &Json) -> io::Result<()> {
    write_reply(stream, status, &Reply::Json(body.clone()))
}

/// Writes one HTTP/1.1 response for either reply flavor and closes the
/// exchange.
pub fn write_reply(stream: &mut TcpStream, status: u16, reply: &Reply) -> io::Result<()> {
    let (content_type, payload) = match reply {
        Reply::Json(body) => ("application/json", body.to_string()),
        Reply::Text(text) => ("text/plain; version=0.0.4", text.clone()),
    };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn exchange(raw: &str) -> Result<Request, ServeError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s
        });
        let (stream, _) = listener.accept().unwrap();
        let req = read_request(&stream, 1024, Duration::from_secs(5));
        drop(writer.join().unwrap());
        req
    }

    #[test]
    fn parses_a_post_with_json_body() {
        let req = exchange(
            "POST /v1/grid HTTP/1.1\r\nHost: x\r\nContent-Length: 13\r\n\r\n{\"a\": [1, 2]}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/grid");
        assert_eq!(
            req.body.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn query_strings_are_split_off_the_path() {
        let req = exchange(
            "GET /v1/logs?since=12&level=debug&target=serve&flag HTTP/1.1\r\n\
             Host: x\r\nContent-Length: 0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.path, "/v1/logs");
        assert_eq!(req.query("since"), Some("12"));
        assert_eq!(req.query("level"), Some("debug"));
        assert_eq!(req.query("target"), Some("serve"));
        assert_eq!(req.query("flag"), Some(""));
        assert_eq!(req.query("missing"), None);
    }

    #[test]
    fn empty_body_parses_as_null() {
        let req = exchange("GET /v1/healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
        assert_eq!(req.unwrap().body, Json::Null);
    }

    #[test]
    fn oversized_body_is_rejected_with_413() {
        let e = exchange("POST /v1/grid HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert_eq!((e.status, e.code), (413, "too_large"));
    }

    #[test]
    fn malformed_json_is_rejected_with_400() {
        let e = exchange("POST /v1/grid HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{").unwrap_err();
        assert_eq!((e.status, e.code), (400, "bad_request"));
    }

    #[test]
    fn error_body_carries_code_and_message() {
        let j = ServeError::new(429, "busy", "try later").to_json();
        let err = j.get("error").unwrap();
        assert_eq!(err.get("code").and_then(Json::as_str), Some("busy"));
        assert_eq!(err.get("message").and_then(Json::as_str), Some("try later"));
    }
}
