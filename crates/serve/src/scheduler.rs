//! Grid execution: validation, admission control, cell classification
//! (cache hit / coalesce / simulate), cancellable batch execution with
//! a per-grid watchdog, checkpointing, and response assembly.
//!
//! Every cell takes exactly one of three paths:
//!
//! * **hit** — its key is already in the content-addressed cache;
//! * **coalesced** — another in-flight grid owns the same key, so this
//!   grid waits on that simulation instead of duplicating it;
//! * **simulated** — this grid owns the key: the cell runs through the
//!   same [`fdip_sim::run_workload_job`] the local `Runner` uses, the
//!   result is committed to the cache, and `cell_done` is journaled.
//!
//! The response is assembled *from the cache files*, never from
//! in-memory results — so a fresh run, a 100%-hit replay, and a
//! post-restart resume all serialize through the identical path and
//! stay byte-identical.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use fdip_exec::CancelToken;
use fdip_harness::remote::{
    cell_key, config_from_json, config_hash, config_to_json, fnv1a64, workload_hash,
};
use fdip_obs::log;
use fdip_obs::span::{SpanRecorder, Track};
use fdip_sim::{run_workload_job, CoreConfig};
use fdip_telemetry::{Json, ToJson, SCHEMA_VERSION};

use crate::http::ServeError;
use crate::{BuiltWorkload, GridProgress, Shared, SlotState};

/// How a grid position resolves against the cache and the in-flight
/// coalescing map.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Plan {
    /// Served straight from the cache.
    Hit,
    /// Another grid (or an earlier duplicate position in this one) is
    /// simulating the key; wait for its slot.
    Coalesce,
    /// This grid simulates the key.
    Own,
}

/// One grid position: `(cell key, config index, workload index, plan)`.
type Cell = (String, usize, usize, Plan);

struct ValidGrid {
    client: String,
    suite: String,
    warmup: u64,
    measure: u64,
    cfgs: Vec<CoreConfig>,
    cfg_hashes: Vec<u64>,
}

/// Decrements the in-flight grid count on every exit path.
struct InflightGuard<'a>(&'a Shared);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let remaining = {
            let mut gate = self.0.gate.lock().expect("gate lock");
            gate.inflight_grids -= 1;
            gate.inflight_grids
        };
        self.0.telemetry.on_grid_done(remaining as u64);
        self.0.gate_cv.notify_all();
    }
}

/// Dumps the grid's span recorder to `--trace-dir`, if tracing is on.
fn write_trace(shared: &Shared, recorder: Option<&Arc<SpanRecorder>>, grid_id: &str) {
    if let (Some(dir), Some(rec)) = (&shared.config.trace_dir, recorder) {
        if let Err(e) = rec.write(dir, grid_id) {
            log::warn(
                "serve",
                "trace write failed",
                &[
                    ("grid_id", grid_id.into()),
                    ("error", e.to_string().as_str().into()),
                ],
            );
        }
    }
}

/// Serves one `POST /v1/grid` request (or a journal-replayed one when
/// `resumed`; resumed grids bypass 429 backpressure — they were already
/// admitted once).
pub(crate) fn handle_grid(
    shared: &Arc<Shared>,
    body: &Json,
    resumed: bool,
) -> Result<Json, ServeError> {
    let grid = validate(body)?;
    admit(shared, resumed)?;
    let guard = InflightGuard(shared);
    // The recorder's epoch is admission time; every span timestamp is
    // microseconds since this point.
    let recorder = shared
        .config
        .trace_dir
        .as_ref()
        .map(|_| Arc::new(SpanRecorder::new()));
    let suite = suite_programs(shared, &grid.suite);
    let grid_id = grid_id(&grid);

    if !resumed {
        shared
            .journal
            .lock()
            .expect("journal lock")
            .grid_begin(&grid_id, body)
            .map_err(|e| ServeError::new(500, "internal", format!("journal: {e}")))?;
    }

    let classify_start = recorder.as_ref().map(|r| r.now_us());
    let cells = classify(shared, &grid, &suite);
    let total = cells.len() as u64;
    let hits = cells.iter().filter(|c| c.3 == Plan::Hit).count() as u64;
    let coalesced = cells.iter().filter(|c| c.3 == Plan::Coalesce).count() as u64;
    if let Some(r) = &recorder {
        r.slice(
            Track::Grid,
            "classify",
            classify_start.unwrap_or(0),
            Json::obj()
                .with("grid_id", grid_id.as_str())
                .with("cells", total)
                .with("cache_hits", hits)
                .with("coalesced", coalesced)
                .with("resumed", resumed),
        );
    }
    log::info(
        "serve",
        "grid admitted",
        &[
            ("grid_id", grid_id.as_str().into()),
            ("client", grid.client.as_str().into()),
            ("suite", grid.suite.as_str().into()),
            ("cells", total.into()),
            ("cache_hits", hits.into()),
            ("coalesced", coalesced.into()),
            ("resumed", resumed.into()),
        ],
    );
    shared.progress.lock().expect("progress lock").insert(
        grid_id.clone(),
        GridProgress {
            state: "running",
            total_cells: total,
            completed_cells: hits,
            cache_hits: hits,
        },
    );

    let simulate_start = recorder.as_ref().map(|r| r.now_us());
    let run_ok = run_owned(shared, &grid, &suite, &grid_id, &cells, recorder.as_ref());
    if let Some(r) = &recorder {
        r.slice(
            Track::Grid,
            "simulate",
            simulate_start.unwrap_or(0),
            Json::obj().with("ok", run_ok.is_ok()),
        );
    }
    let wait_start = recorder.as_ref().map(|r| r.now_us());
    let wait_ok = run_ok.is_ok() && wait_coalesced(shared, &cells);
    if let Some(r) = &recorder {
        if coalesced > 0 {
            r.slice(
                Track::Grid,
                "wait_coalesced",
                wait_start.unwrap_or(0),
                Json::obj().with("cells", coalesced).with("ok", wait_ok),
            );
        }
    }
    if let Err(e) = run_ok {
        finish_interrupted(shared, &grid_id, recorder.as_ref());
        drop(guard);
        return Err(e);
    }
    if !wait_ok {
        finish_interrupted(shared, &grid_id, recorder.as_ref());
        drop(guard);
        return Err(ServeError::new(
            503,
            "interrupted",
            "a coalesced cell's owning grid was cancelled before it completed",
        ));
    }

    let assemble_start = recorder.as_ref().map(|r| r.now_us());
    let response = assemble(shared, &grid, &suite, &grid_id, &cells)?;
    if let Some(r) = &recorder {
        r.slice(
            Track::Grid,
            "assemble",
            assemble_start.unwrap_or(0),
            Json::obj().with("cells", total),
        );
    }
    shared
        .journal
        .lock()
        .expect("journal lock")
        .grid_end(&grid_id)
        .map_err(|e| ServeError::new(500, "internal", format!("journal: {e}")))?;
    if let Some(p) = shared
        .progress
        .lock()
        .expect("progress lock")
        .get_mut(&grid_id)
    {
        p.state = "done";
        p.completed_cells = total;
    }
    shared.telemetry.on_grid_completed();
    shared
        .telemetry
        .on_cells_served(&grid.client, total, hits, coalesced);
    if let Some(r) = &recorder {
        r.instant(
            Track::Grid,
            "completed",
            Json::obj().with("grid_id", grid_id.as_str()),
        );
    }
    write_trace(shared, recorder.as_ref(), &grid_id);
    log::info(
        "serve",
        "grid completed",
        &[
            ("grid_id", grid_id.as_str().into()),
            ("client", grid.client.as_str().into()),
            ("cells", total.into()),
        ],
    );
    drop(guard);
    Ok(response)
}

fn validate(body: &Json) -> Result<ValidGrid, ServeError> {
    let schema = body
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::bad_request("missing schema_version"))?;
    if schema != SCHEMA_VERSION {
        return Err(ServeError::bad_request(format!(
            "schema_version {schema} != supported {SCHEMA_VERSION}"
        )));
    }
    let client = body
        .get("client")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::bad_request("missing client"))?
        .to_string();
    let suite = body
        .get("suite")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::bad_request("missing suite"))?
        .to_string();
    if !matches!(suite.as_str(), "quick" | "full") {
        return Err(ServeError::new(
            400,
            "unsupported_suite",
            format!("suite {suite:?} is not a named suite the daemon can rebuild (quick/full)"),
        ));
    }
    let warmup = body
        .get("warmup_instrs")
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::bad_request("missing warmup_instrs"))?;
    let measure = body
        .get("measure_instrs")
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::bad_request("missing measure_instrs"))?;
    let configs = body
        .get("configs")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::bad_request("missing configs array"))?;
    if configs.is_empty() {
        return Err(ServeError::bad_request("configs array is empty"));
    }
    let mut cfgs = Vec::with_capacity(configs.len());
    for (i, c) in configs.iter().enumerate() {
        cfgs.push(
            config_from_json(c)
                .ok_or_else(|| ServeError::bad_request(format!("configs[{i}] is invalid")))?,
        );
    }
    let cfg_hashes = cfgs.iter().map(config_hash).collect();
    Ok(ValidGrid {
        client,
        suite,
        warmup,
        measure,
        cfgs,
        cfg_hashes,
    })
}

fn admit(shared: &Shared, resumed: bool) -> Result<(), ServeError> {
    let mut gate = shared.gate.lock().expect("gate lock");
    if gate.draining {
        shared.telemetry.on_grid_rejected(false);
        return Err(ServeError::new(
            503,
            "draining",
            "the daemon is draining and accepts no new grids",
        ));
    }
    if !resumed && gate.inflight_grids >= shared.config.max_inflight_grids {
        shared.telemetry.on_grid_rejected(true);
        return Err(ServeError::new(
            429,
            "busy",
            format!(
                "{} grids are already in flight (limit {}); retry later",
                gate.inflight_grids, shared.config.max_inflight_grids
            ),
        ));
    }
    gate.inflight_grids += 1;
    shared
        .telemetry
        .on_grid_admitted(resumed, gate.inflight_grids as u64);
    Ok(())
}

/// Builds (once, lazily) the named suite's programs, with per-workload
/// content hashes.
fn suite_programs(shared: &Shared, suite: &str) -> Arc<Vec<BuiltWorkload>> {
    let mut suites = shared.suites.lock().expect("suite lock");
    if let Some(s) = suites.get(suite) {
        return Arc::clone(s);
    }
    let workloads = match suite {
        "quick" => fdip_program::workload::quick_suite(),
        _ => fdip_program::workload::suite(),
    };
    let built: Vec<BuiltWorkload> = workloads
        .into_iter()
        .map(|w| {
            let h = workload_hash(&w);
            let p = Arc::new(w.build());
            (w, p, h)
        })
        .collect();
    let arc = Arc::new(built);
    suites.insert(suite.to_string(), Arc::clone(&arc));
    arc
}

/// The grid's content-derived id: FNV-1a over suite, budget, and the
/// config hashes in request order (`docs/SERVE.md` §"Grid ids").
fn grid_id(grid: &ValidGrid) -> String {
    let cfgs: Vec<String> = grid
        .cfg_hashes
        .iter()
        .map(|h| format!("{h:016x}"))
        .collect();
    let canon = format!(
        "fdip-grid-v1|suite={}|warmup={}|measure={}|cfgs={}",
        grid.suite,
        grid.warmup,
        grid.measure,
        cfgs.join(",")
    );
    format!("{:016x}", fnv1a64(canon.as_bytes()))
}

/// Resolves every grid position against the cache and the coalescing
/// map, claiming `Own` slots atomically under one lock so no two grids
/// (or duplicate positions within one grid) ever simulate the same key.
fn classify(shared: &Shared, grid: &ValidGrid, suite: &[BuiltWorkload]) -> Vec<Cell> {
    let mut slots = shared.slots.lock().expect("slot lock");
    let mut cells = Vec::with_capacity(grid.cfgs.len() * suite.len());
    for ci in 0..grid.cfgs.len() {
        for (wi, (w, _, wl_hash)) in suite.iter().enumerate() {
            let key = cell_key(
                grid.cfg_hashes[ci],
                *wl_hash,
                w.params.seed,
                grid.warmup,
                grid.measure,
            );
            let plan = match slots.get(&key) {
                Some(SlotState::Running) => Plan::Coalesce,
                Some(SlotState::Done) => Plan::Hit,
                Some(SlotState::Failed) | None => {
                    if shared.cache.contains(&key) {
                        Plan::Hit
                    } else {
                        slots.insert(key.clone(), SlotState::Running);
                        Plan::Own
                    }
                }
            };
            cells.push((key, ci, wi, plan));
        }
    }
    cells
}

/// Runs this grid's `Own` cells as one cancellable pool batch, guarded
/// by a watchdog that cancels the batch when the grid's wall-clock
/// budget runs out. Commits each result to the cache and journal as it
/// lands.
fn run_owned(
    shared: &Arc<Shared>,
    grid: &ValidGrid,
    suite: &[BuiltWorkload],
    grid_id: &str,
    cells: &[Cell],
    recorder: Option<&Arc<SpanRecorder>>,
) -> Result<(), ServeError> {
    let own: Vec<&Cell> = cells.iter().filter(|c| c.3 == Plan::Own).collect();
    if own.is_empty() {
        return Ok(());
    }
    let token = CancelToken::new();
    shared
        .tokens
        .lock()
        .expect("token lock")
        .insert(grid_id.to_string(), token.clone());

    let mut jobs = Vec::with_capacity(own.len());
    for (key, ci, wi, _) in &own {
        let shared = Arc::clone(shared);
        let grid_id = grid_id.to_string();
        let key = key.clone();
        let cfg = grid.cfgs[*ci].clone();
        let cfg_hash = grid.cfg_hashes[*ci];
        let (w, program, wl_hash) = &suite[*wi];
        let (workload, seed) = (w.name.clone(), w.params.seed);
        let (wl_hash, program) = (*wl_hash, Arc::clone(program));
        let (warmup, measure) = (grid.warmup, grid.measure);
        let recorder = recorder.map(Arc::clone);
        let config_index = *ci;
        jobs.push(move || {
            shared.telemetry.on_cell_sim_flight(1.0);
            let sim_start = recorder.as_ref().map(|r| r.now_us());
            let sim_timer = fdip_obs::clock::Timer::start();
            let (stats, dists) = run_workload_job(cfg.clone(), program, warmup, measure);
            let sim_micros = sim_timer.elapsed_micros();
            if let Some(r) = &recorder {
                r.slice(
                    Track::Cells,
                    &workload,
                    sim_start.unwrap_or(0),
                    Json::obj()
                        .with("cell", key.as_str())
                        .with("config_index", config_index as u64),
                );
            }
            shared.telemetry.on_cell_sim_flight(-1.0);
            let entry = Json::obj()
                .with("schema_version", SCHEMA_VERSION)
                .with("cell", key.as_str())
                .with("config_hash", format!("{cfg_hash:016x}"))
                .with("workload_hash", format!("{wl_hash:016x}"))
                .with("workload", workload.as_str())
                .with("seed", seed)
                .with("warmup_instrs", warmup)
                .with("measure_instrs", measure)
                .with("config", config_to_json(&cfg))
                .with("stats", stats.to_json())
                .with("dists", dists.to_json());
            let committed = shared.cache.put(&key, &entry).is_ok();
            if committed {
                let _ = shared
                    .journal
                    .lock()
                    .expect("journal lock")
                    .cell_done(&grid_id, &key);
            }
            let simulated = shared.telemetry.on_cell_simulated(sim_micros);
            if shared
                .config
                .crash_after_cells
                .is_some_and(|limit| simulated >= limit)
            {
                shared.interrupt_all();
            }
            if let Some(p) = shared
                .progress
                .lock()
                .expect("progress lock")
                .get_mut(&grid_id)
            {
                p.completed_cells += 1;
            }
            set_slot(
                &shared,
                &key,
                if committed {
                    SlotState::Done
                } else {
                    SlotState::Failed
                },
            );
            committed
        });
    }

    // Watchdog: one thread parks on a channel for the grid's budget; a
    // completed batch rings it awake, a timeout cancels the batch.
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let timed_out = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let token = token.clone();
        let timed_out = Arc::clone(&timed_out);
        let budget = Duration::from_millis(shared.config.grid_timeout_ms);
        std::thread::spawn(move || {
            if done_rx.recv_timeout(budget).is_err() {
                timed_out.store(true, Ordering::Release);
                token.cancel();
            }
        })
    };
    let results = shared.pool().run_batch_cancellable(jobs, &token);
    let _ = done_tx.send(());
    let _ = watchdog.join();
    shared.tokens.lock().expect("token lock").remove(grid_id);

    // Cells the cancellation skipped never ran their closure, so their
    // slots are still Running: fail them so coalesced waiters unblock.
    let mut ok = true;
    for ((key, _, _, _), result) in own.iter().zip(&results) {
        match result {
            Some(true) => {}
            Some(false) => ok = false,
            None => {
                ok = false;
                set_slot(shared, key, SlotState::Failed);
            }
        }
    }
    if ok {
        return Ok(());
    }
    if timed_out.load(Ordering::Acquire) {
        Err(ServeError::new(
            408,
            "timeout",
            format!(
                "grid exceeded its {} ms budget; completed cells are cached and a \
                 resubmission finishes the remainder",
                shared.config.grid_timeout_ms
            ),
        ))
    } else {
        Err(ServeError::new(
            503,
            "interrupted",
            "the grid was cancelled mid-flight (drain or injected crash); completed \
             cells are cached and journaled for resume",
        ))
    }
}

fn set_slot(shared: &Shared, key: &str, state: SlotState) {
    shared
        .slots
        .lock()
        .expect("slot lock")
        .insert(key.to_string(), state);
    shared.slots_cv.notify_all();
}

/// Blocks until every coalesced cell's owning grid resolves its slot.
/// Returns `false` if any owner failed (cancelled before commit).
fn wait_coalesced(shared: &Shared, cells: &[Cell]) -> bool {
    let mut ok = true;
    let mut slots = shared.slots.lock().expect("slot lock");
    for (key, _, _, plan) in cells {
        if *plan != Plan::Coalesce {
            continue;
        }
        loop {
            match slots.get(key) {
                Some(SlotState::Done) | None => break,
                Some(SlotState::Failed) => {
                    ok = false;
                    break;
                }
                Some(SlotState::Running) => {
                    slots = shared.slots_cv.wait(slots).expect("slot lock");
                }
            }
        }
    }
    ok
}

fn finish_interrupted(shared: &Shared, grid_id: &str, recorder: Option<&Arc<SpanRecorder>>) {
    if let Some(p) = shared
        .progress
        .lock()
        .expect("progress lock")
        .get_mut(grid_id)
    {
        p.state = "interrupted";
    }
    shared.telemetry.on_grid_interrupted();
    log::warn("serve", "grid interrupted", &[("grid_id", grid_id.into())]);
    if let Some(r) = recorder {
        r.instant(
            Track::Grid,
            "interrupted",
            Json::obj().with("grid_id", grid_id),
        );
    }
    write_trace(shared, recorder, grid_id);
}

/// Assembles the grid response by re-reading every cell from the cache
/// — the single serialization path shared by fresh, cached, coalesced,
/// and resumed cells.
fn assemble(
    shared: &Shared,
    grid: &ValidGrid,
    suite: &[BuiltWorkload],
    grid_id: &str,
    cells: &[Cell],
) -> Result<Json, ServeError> {
    let mut out = Vec::with_capacity(cells.len());
    let mut simulated = 0u64;
    for (key, ci, wi, plan) in cells {
        let entry = shared.cache.get(key).ok_or_else(|| {
            ServeError::new(
                500,
                "internal",
                format!("cache entry {key} vanished before assembly"),
            )
        })?;
        let stats = entry.get("stats").cloned().unwrap_or(Json::Null);
        let dists = entry.get("dists").cloned().unwrap_or(Json::Null);
        if stats == Json::Null || dists == Json::Null {
            return Err(ServeError::new(
                500,
                "internal",
                format!("cache entry {key} is missing stats/dists"),
            ));
        }
        if *plan == Plan::Own {
            simulated += 1;
        }
        out.push(
            Json::obj()
                .with("cell", key.as_str())
                .with("config_index", *ci as u64)
                .with("workload", suite[*wi].0.name.as_str())
                .with("cache_hit", *plan == Plan::Hit)
                .with("stats", stats)
                .with("dists", dists),
        );
    }
    let hits = cells.iter().filter(|c| c.3 == Plan::Hit).count() as u64;
    let coalesced = cells.iter().filter(|c| c.3 == Plan::Coalesce).count() as u64;
    Ok(Json::obj()
        .with("schema_version", SCHEMA_VERSION)
        .with("grid_id", grid_id)
        .with("suite", grid.suite.as_str())
        .with("warmup_instrs", grid.warmup)
        .with("measure_instrs", grid.measure)
        .with("cells", Json::Arr(out))
        .with(
            "summary",
            Json::obj()
                .with("total_cells", cells.len() as u64)
                .with("cache_hits", hits)
                .with("simulated", simulated)
                .with("coalesced", coalesced),
        ))
}
