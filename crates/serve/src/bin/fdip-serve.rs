//! `fdip-serve` — run the sweep daemon, or poke one with `ctl`.
//!
//! ```text
//! fdip-serve [--addr 127.0.0.1:0] [--state-dir DIR] [--jobs N]
//!            [--max-grids N] [--grid-timeout-ms T] [--port-file PATH]
//!            [--trace-dir DIR] [--log SPEC] [--log-file PATH]
//! fdip-serve ctl <host:port> healthz|progress|telemetry|shutdown
//! fdip-serve ctl <host:port> metrics [--interval-ms N]
//! fdip-serve ctl <host:port> tail [--since N] [--level L] [--target T]
//!                                 [--limit N] [--follow]
//! ```
//!
//! The daemon prints its actual bound address on startup (and writes it
//! to `--port-file` when given, so scripts binding port 0 can find it)
//! and runs until a client posts `/v1/shutdown` — which `ctl shutdown`
//! does. `ctl` prints the endpoint's response and exits nonzero on any
//! non-200 status, so it doubles as a health probe.
//!
//! `ctl metrics` scrapes `/v1/metrics`, checks the scrape against the
//! in-repo exposition validator, and prints it; with `--interval-ms` it
//! scrapes twice and prints per-counter deltas instead. `ctl tail`
//! pages `/v1/logs`; `--follow` keeps polling with the returned cursor.
//! Log verbosity is set by `FDIP_LOG` (e.g. `serve=debug`) or `--log`,
//! which takes precedence; `--log-file` adds a rotating file sink and
//! `--trace-dir` dumps each grid's Chrome trace.

use std::path::PathBuf;
use std::time::Duration;

use fdip_harness::remote::{
    http_json_request, http_text_request, HEALTHZ_PATH, LOGS_PATH, METRICS_PATH, PROGRESS_PATH,
    SHUTDOWN_PATH, TELEMETRY_PATH,
};
use fdip_obs::expo;
use fdip_serve::{Server, ServerConfig};
use fdip_telemetry::Json;

fn usage() -> ! {
    eprintln!(
        "usage: fdip-serve [--addr <host:port>] [--state-dir <dir>] [--jobs <n>]\n\
         \x20                 [--max-grids <n>] [--grid-timeout-ms <ms>] [--port-file <path>]\n\
         \x20                 [--trace-dir <dir>] [--log <spec>] [--log-file <path>]\n\
         \x20      fdip-serve ctl <host:port> healthz|progress|telemetry|shutdown\n\
         \x20      fdip-serve ctl <host:port> metrics [--interval-ms <ms>]\n\
         \x20      fdip-serve ctl <host:port> tail [--since <seq>] [--level <level>]\n\
         \x20                                      [--target <target>] [--limit <n>] [--follow]"
    );
    std::process::exit(2);
}

/// Scrapes `/v1/metrics`, validating with the in-repo parser.
fn scrape(addr: &str) -> expo::Scrape {
    let (status, text) = http_text_request(addr, "GET", METRICS_PATH, None).unwrap_or_else(|e| {
        eprintln!("fdip-serve ctl: {addr}: {e}");
        std::process::exit(1);
    });
    if status != 200 {
        eprintln!("fdip-serve ctl: {addr}: {METRICS_PATH} returned {status}");
        std::process::exit(1);
    }
    match expo::validate(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fdip-serve ctl: {addr}: invalid exposition: {e}");
            std::process::exit(1);
        }
    }
}

/// `ctl metrics`: one validated scrape printed as-is, or — with
/// `--interval-ms` — two scrapes printed as per-family counter deltas.
fn ctl_metrics(addr: &str, rest: &[String]) -> ! {
    let mut interval_ms: Option<u64> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--interval-ms" => {
                interval_ms = it.next().and_then(|v| v.parse().ok()).or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let first = scrape(addr);
    let Some(interval) = interval_ms else {
        // Re-fetch as text so the operator sees the raw exposition
        // (the scrape above already validated it).
        let (_, text) = http_text_request(addr, "GET", METRICS_PATH, None).expect("second fetch");
        print!("{text}");
        std::process::exit(0);
    };
    std::thread::sleep(Duration::from_millis(interval));
    let second = scrape(addr);
    println!("# counter deltas over {interval} ms");
    for (name, family) in &second.families {
        if family.kind != "counter" {
            continue;
        }
        let now = second.counter_total(name).unwrap_or(0);
        let before = first.counter_total(name).unwrap_or(0);
        if now < before {
            eprintln!("fdip-serve ctl: counter {name} went backwards ({before} -> {now})");
            std::process::exit(1);
        }
        println!("{name} +{}", now - before);
    }
    for (name, family) in &second.families {
        if family.kind != "histogram" {
            continue;
        }
        let now = second.histogram_count(name).unwrap_or(0);
        let before = first.histogram_count(name).unwrap_or(0);
        println!("{name}_count +{}", now.saturating_sub(before));
    }
    std::process::exit(0);
}

/// One `/v1/logs` page; prints records and returns the next cursor.
fn tail_page(
    addr: &str,
    since: u64,
    level: &Option<String>,
    target: &Option<String>,
    limit: u64,
) -> u64 {
    let mut path = format!("{LOGS_PATH}?since={since}&limit={limit}");
    if let Some(l) = level {
        path.push_str(&format!("&level={l}"));
    }
    if let Some(t) = target {
        path.push_str(&format!("&target={t}"));
    }
    let (status, body) = http_json_request(addr, "GET", &path, None).unwrap_or_else(|e| {
        eprintln!("fdip-serve ctl: {addr}: {e}");
        std::process::exit(1);
    });
    if status != 200 {
        eprintln!("fdip-serve ctl: {addr}: {}", body.to_string());
        std::process::exit(1);
    }
    for rec in body.get("logs").and_then(Json::as_arr).unwrap_or(&[]) {
        let s = |k: &str| rec.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
        let fields = rec
            .get("fields")
            .map(Json::to_string)
            .unwrap_or_else(|| "{}".to_string());
        println!(
            "{:>13} {:5} {:8} {} {}",
            rec.get("ts_ms").and_then(Json::as_u64).unwrap_or(0),
            s("level"),
            s("target"),
            s("msg"),
            fields
        );
    }
    body.get("next_since")
        .and_then(Json::as_u64)
        .unwrap_or(since)
}

/// `ctl tail`: page (or follow) the daemon's in-memory log ring.
fn ctl_tail(addr: &str, rest: &[String]) -> ! {
    let mut since = 0u64;
    let mut level: Option<String> = None;
    let mut target: Option<String> = None;
    let mut limit = 256u64;
    let mut follow = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--since" => since = value().parse().unwrap_or_else(|_| usage()),
            "--level" => level = Some(value()),
            "--target" => target = Some(value()),
            "--limit" => limit = value().parse().unwrap_or_else(|_| usage()),
            "--follow" => follow = true,
            _ => usage(),
        }
    }
    loop {
        since = tail_page(addr, since, &level, &target, limit);
        if !follow {
            std::process::exit(0);
        }
        std::thread::sleep(Duration::from_millis(1000));
    }
}

fn ctl(args: &[String]) -> ! {
    let (addr, verb, rest) = match args {
        [addr, verb, rest @ ..] => (addr.as_str(), verb.as_str(), rest),
        _ => usage(),
    };
    let (method, path) = match verb {
        "healthz" => ("GET", HEALTHZ_PATH),
        "progress" => ("GET", PROGRESS_PATH),
        "telemetry" => ("GET", TELEMETRY_PATH),
        "shutdown" => ("POST", SHUTDOWN_PATH),
        "metrics" => ctl_metrics(addr, rest),
        "tail" => ctl_tail(addr, rest),
        _ => usage(),
    };
    if !rest.is_empty() {
        usage();
    }
    match http_json_request(addr, method, path, None) {
        Ok((status, body)) => {
            println!("{}", body.to_string_pretty());
            std::process::exit(if status == 200 { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("fdip-serve ctl: {addr}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "ctl") {
        ctl(&args[1..]);
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }

    // The daemon mirrors structured log records to stderr; verbosity
    // comes from FDIP_LOG unless --log overrides it below.
    let logger = fdip_obs::log::logger();
    logger.set_stderr(true);

    let mut config = ServerConfig::new(PathBuf::from("fdip-serve-state"));
    let mut port_file: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--state-dir" => config.state_dir = PathBuf::from(value("--state-dir")),
            "--jobs" => match value("--jobs").parse() {
                Ok(n) => config.jobs = Some(n),
                Err(_) => {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--max-grids" => match value("--max-grids").parse() {
                Ok(n) => config.max_inflight_grids = n,
                Err(_) => {
                    eprintln!("--max-grids needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--grid-timeout-ms" => match value("--grid-timeout-ms").parse() {
                Ok(n) => config.grid_timeout_ms = n,
                Err(_) => {
                    eprintln!("--grid-timeout-ms needs a millisecond count");
                    std::process::exit(2);
                }
            },
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file"))),
            "--trace-dir" => config.trace_dir = Some(PathBuf::from(value("--trace-dir"))),
            "--log" => logger.set_filter_spec(&value("--log")),
            "--log-file" => {
                let path = PathBuf::from(value("--log-file"));
                if let Err(e) = logger.set_file(path.clone(), 8 << 20) {
                    eprintln!("fdip-serve: cannot open log file {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
            _ => usage(),
        }
    }

    let state_dir = config.state_dir.clone();
    let server = Server::spawn(config).unwrap_or_else(|e| {
        eprintln!("fdip-serve: cannot start: {e}");
        std::process::exit(1);
    });
    let addr = server.addr();
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, addr.to_string()) {
            eprintln!("fdip-serve: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    // One human-readable line for the operator; the structured record
    // behind it was emitted by Server::spawn ("daemon started").
    println!(
        "fdip-serve listening on {addr} (state: {})",
        state_dir.display()
    );
    server.join();
    println!("fdip-serve drained, exiting");
}
