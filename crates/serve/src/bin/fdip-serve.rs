//! `fdip-serve` — run the sweep daemon, or poke one with `ctl`.
//!
//! ```text
//! fdip-serve [--addr 127.0.0.1:0] [--state-dir DIR] [--jobs N]
//!            [--max-grids N] [--grid-timeout-ms T] [--port-file PATH]
//! fdip-serve ctl <host:port> healthz|progress|telemetry|shutdown
//! ```
//!
//! The daemon prints its actual bound address on startup (and writes it
//! to `--port-file` when given, so scripts binding port 0 can find it)
//! and runs until a client posts `/v1/shutdown` — which `ctl shutdown`
//! does. `ctl` prints the endpoint's JSON response and exits nonzero on
//! any non-200 status, so it doubles as a health probe.

use std::path::PathBuf;

use fdip_harness::remote::{
    http_json_request, HEALTHZ_PATH, PROGRESS_PATH, SHUTDOWN_PATH, TELEMETRY_PATH,
};
use fdip_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fdip-serve [--addr <host:port>] [--state-dir <dir>] [--jobs <n>]\n\
         \x20                 [--max-grids <n>] [--grid-timeout-ms <ms>] [--port-file <path>]\n\
         \x20      fdip-serve ctl <host:port> healthz|progress|telemetry|shutdown"
    );
    std::process::exit(2);
}

fn ctl(args: &[String]) -> ! {
    let (addr, verb) = match args {
        [addr, verb] => (addr.as_str(), verb.as_str()),
        _ => usage(),
    };
    let (method, path) = match verb {
        "healthz" => ("GET", HEALTHZ_PATH),
        "progress" => ("GET", PROGRESS_PATH),
        "telemetry" => ("GET", TELEMETRY_PATH),
        "shutdown" => ("POST", SHUTDOWN_PATH),
        _ => usage(),
    };
    match http_json_request(addr, method, path, None) {
        Ok((status, body)) => {
            println!("{}", body.to_string_pretty());
            std::process::exit(if status == 200 { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("fdip-serve ctl: {addr}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "ctl") {
        ctl(&args[1..]);
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }

    let mut config = ServerConfig::new(PathBuf::from("fdip-serve-state"));
    let mut port_file: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--state-dir" => config.state_dir = PathBuf::from(value("--state-dir")),
            "--jobs" => match value("--jobs").parse() {
                Ok(n) => config.jobs = Some(n),
                Err(_) => {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--max-grids" => match value("--max-grids").parse() {
                Ok(n) => config.max_inflight_grids = n,
                Err(_) => {
                    eprintln!("--max-grids needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--grid-timeout-ms" => match value("--grid-timeout-ms").parse() {
                Ok(n) => config.grid_timeout_ms = n,
                Err(_) => {
                    eprintln!("--grid-timeout-ms needs a millisecond count");
                    std::process::exit(2);
                }
            },
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file"))),
            _ => usage(),
        }
    }

    let state_dir = config.state_dir.clone();
    let server = Server::spawn(config).unwrap_or_else(|e| {
        eprintln!("fdip-serve: cannot start: {e}");
        std::process::exit(1);
    });
    let addr = server.addr();
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, addr.to_string()) {
            eprintln!("fdip-serve: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!(
        "fdip-serve listening on {addr} (state: {})",
        state_dir.display()
    );
    server.join();
    println!("fdip-serve drained, exiting");
}
