//! Property tests for the prefetch-lifetime taxonomy: every prefetch
//! request must end up in exactly one outcome bucket. Because lines can
//! still be resident and untouched when the run stops, the invariant is
//!
//! `resolved outcomes + unresolved resident lines == requests`
//!
//! per fill source, under arbitrary interleavings of demand traffic and
//! prefetches.

use fdip_mem::{Cache, CacheConfig, FillSrc, Hierarchy, HierarchyConfig, Lookup};
use proptest::prelude::*;

fn small_cache() -> Cache {
    Cache::new(
        "P",
        CacheConfig {
            size_bytes: 2048,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
            mshrs: 4,
        },
    )
}

fn assert_invariant(c: &Cache, src: FillSrc) {
    let s = c.stats();
    let o = match src {
        FillSrc::Fdp => s.outcomes_fdp,
        FillSrc::Pf => s.outcomes_pf,
        FillSrc::Demand => unreachable!("demand fills have no outcome bucket"),
    };
    assert_eq!(
        o.resolved() + c.unresolved_prefetches(src),
        o.requests,
        "{src:?}: outcomes {o:?} must partition the requests"
    );
}

proptest! {
    /// Cache level: arbitrary mixes of demand probes (with and without
    /// the follow-up fill) and prefetches keep the per-source ledger
    /// balanced after every single operation.
    #[test]
    fn cache_outcomes_partition_requests(
        ops in prop::collection::vec((0u64..48, 0u8..3, 1u64..24, 0u64..8), 1..400),
    ) {
        let mut c = small_cache();
        let mut now = 0u64;
        for (line, kind, latency, step) in ops {
            now += step;
            match kind {
                // Demand access, modelling the hierarchy: a miss is
                // always followed by a demand fill.
                0 => {
                    if c.probe_demand(line, now) == Lookup::Miss {
                        c.fill(line, now + latency, FillSrc::Demand);
                    }
                }
                // Prefetch: a `true` from note_prefetch promises a fill.
                1 => {
                    if c.note_prefetch(line, now) {
                        c.fill(line, now + latency, FillSrc::Pf);
                    }
                }
                // Tag-only probe: no state change in the ledger.
                _ => {
                    c.probe_tag(line);
                }
            }
            assert_invariant(&c, FillSrc::Pf);
        }
        let s = c.stats();
        // Taxonomy and the legacy useful counter must agree.
        prop_assert_eq!(s.outcomes_pf.timely + s.outcomes_pf.late, s.useful_prefetches);
    }

    /// Hierarchy level: the decoupled fetch path (FDP fills) and the
    /// dedicated-prefetcher path each balance their own ledger.
    #[test]
    fn hierarchy_outcomes_partition_requests(
        ops in prop::collection::vec((0u64..64, 0u8..3, 0u64..6), 1..300),
    ) {
        let mut mem = Hierarchy::new(HierarchyConfig::default());
        let mut now = 0u64;
        for (line, kind, step) in ops {
            now += step;
            match kind {
                0 => {
                    mem.fetch_instr_line_decoupled(line, now, false);
                }
                // Ahead-of-head FTQ probe: a miss installs an FDP fill.
                1 => {
                    mem.fetch_instr_line_decoupled(line, now, true);
                }
                _ => {
                    mem.prefetch_instr_line(line, now);
                }
            }
            let s = mem.l1i_stats();
            prop_assert_eq!(
                s.outcomes_fdp.resolved() + mem.l1i_unresolved_prefetches(FillSrc::Fdp),
                s.outcomes_fdp.requests
            );
            prop_assert_eq!(
                s.outcomes_pf.resolved() + mem.l1i_unresolved_prefetches(FillSrc::Pf),
                s.outcomes_pf.requests
            );
        }
    }
}
