//! A small open-addressed `line -> cycle` map for in-flight fill
//! tracking.
//!
//! The cache's pending-fill map sits on the demand-probe hot path: every
//! hit consults it (MSHR merge detection) and every fill inserts into
//! it. `std::collections::HashMap` pays SipHash on each of those
//! touches; line numbers are already well-distributed addresses, so this
//! map uses one Fibonacci multiply instead, with linear probing and
//! tombstone deletion. Semantics match the `HashMap` operations it
//! replaces exactly — the map is only ever iterated by `retain`, whose
//! outcome is order-independent, so replacing the hasher cannot change
//! simulation results.

use fdip_types::Cycle;

/// Sentinel key: never-used slot. Line numbers are byte addresses / 64,
/// so real keys cannot collide with the sentinels.
const EMPTY: u64 = u64::MAX;
/// Sentinel key: deleted slot (probe chains continue across it).
const TOMB: u64 = u64::MAX - 1;

/// Open-addressed hash map from cache-line number to ready cycle.
#[derive(Clone, Debug)]
pub(crate) struct FillMap {
    keys: Vec<u64>,
    vals: Vec<Cycle>,
    /// Live entries.
    len: usize,
    /// Tombstoned slots (reclaimed on rehash).
    tombs: usize,
    mask: usize,
    shift: u32,
}

const INITIAL_CAPACITY: usize = 64;

impl FillMap {
    pub(crate) fn new() -> Self {
        FillMap {
            keys: vec![EMPTY; INITIAL_CAPACITY],
            vals: vec![0; INITIAL_CAPACITY],
            len: 0,
            tombs: 0,
            mask: INITIAL_CAPACITY - 1,
            shift: 64 - INITIAL_CAPACITY.trailing_zeros(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> self.shift) as usize
    }

    #[inline]
    pub(crate) fn get(&self, key: u64) -> Option<Cycle> {
        debug_assert!(key < TOMB);
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    pub(crate) fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or updates `key`.
    pub(crate) fn insert(&mut self, key: u64, val: Cycle) {
        debug_assert!(key < TOMB);
        // Keep load (live + tombstones) at or below 1/2 so probe chains
        // stay short and lookups always terminate at an empty slot.
        if (self.len + self.tombs + 1) * 2 > self.keys.len() {
            self.rehash();
        }
        let mut i = self.home(key);
        let mut place: Option<usize> = None;
        loop {
            let k = self.keys[i];
            if k == key {
                self.vals[i] = val;
                return;
            }
            if k == TOMB {
                if place.is_none() {
                    place = Some(i);
                }
            } else if k == EMPTY {
                let slot = match place {
                    Some(p) => {
                        self.tombs -= 1;
                        p
                    }
                    None => i,
                };
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its value if present.
    pub(crate) fn remove(&mut self, key: u64) -> Option<Cycle> {
        debug_assert!(key < TOMB);
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                self.keys[i] = TOMB;
                self.len -= 1;
                self.tombs += 1;
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Keeps only the entries for which `f` returns `true`. `f` must be
    /// a pure predicate (the visit order is unspecified).
    pub(crate) fn retain(&mut self, mut f: impl FnMut(u64, Cycle) -> bool) {
        for i in 0..self.keys.len() {
            let k = self.keys[i];
            if k < TOMB && !f(k, self.vals[i]) {
                self.keys[i] = TOMB;
                self.len -= 1;
                self.tombs += 1;
            }
        }
    }

    /// Grows (or compacts tombstones) so live entries occupy at most a
    /// quarter of the table.
    #[cold]
    fn rehash(&mut self) {
        let mut cap = self.keys.len();
        while (self.len + 1) * 4 > cap {
            cap *= 2;
        }
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; cap]);
        self.mask = cap - 1;
        self.shift = 64 - cap.trailing_zeros();
        self.tombs = 0;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k < TOMB {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = FillMap::new();
        assert_eq!(m.get(5), None);
        m.insert(5, 100);
        assert_eq!(m.get(5), Some(100));
        assert!(m.contains(5));
        m.insert(5, 200); // update, not duplicate
        assert_eq!(m.get(5), Some(200));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(5), Some(200));
        assert_eq!(m.remove(5), None);
        assert_eq!(m.len(), 0);
        assert!(!m.contains(5));
    }

    #[test]
    fn reinsertion_after_removal_reuses_tombstones() {
        let mut m = FillMap::new();
        for round in 0..200u64 {
            m.insert(7, round);
            assert_eq!(m.get(7), Some(round));
            assert_eq!(m.remove(7), Some(round));
        }
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = FillMap::new();
        for k in 0..10_000u64 {
            m.insert(k, k + 1);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some(k + 1), "key {k}");
        }
    }

    #[test]
    fn retain_drops_exactly_the_failing_entries() {
        let mut m = FillMap::new();
        for k in 0..1_000u64 {
            m.insert(k, k);
        }
        m.retain(|_, v| v % 3 == 0);
        assert_eq!(m.len(), 334);
        for k in 0..1_000u64 {
            assert_eq!(m.get(k).is_some(), k % 3 == 0, "key {k}");
        }
    }

    #[test]
    fn matches_std_hashmap_under_mixed_operations() {
        let mut m = FillMap::new();
        let mut reference: HashMap<u64, Cycle> = HashMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 512; // small key space forces collisions
            match x % 4 {
                0 | 1 => {
                    m.insert(key, step);
                    reference.insert(key, step);
                }
                2 => {
                    assert_eq!(m.remove(key), reference.remove(&key), "step {step}");
                }
                _ => {
                    assert_eq!(m.get(key), reference.get(&key).copied(), "step {step}");
                }
            }
            assert_eq!(m.len(), reference.len(), "step {step}");
        }
        // Cross-check the final state both ways, plus a retain sweep.
        m.retain(|_, v| v % 2 == 0);
        reference.retain(|_, v| *v % 2 == 0);
        assert_eq!(m.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(v));
        }
    }
}
