//! The full memory hierarchy: split L1I/L1D, unified L2, LLC, DRAM.
//!
//! Parameters default to the ChampSim/IPC-1 + Sunny Cove class
//! configuration the paper uses (§V, Table IV): 32KB L1I, 48KB L1D,
//! 512KB L2, 2MB LLC, ~200-cycle DRAM.

use crate::cache::{Cache, CacheConfig, CacheStats, FillSrc, Lookup};
use fdip_types::Cycle;

/// Hierarchy-wide configuration.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
                hit_latency: 1,
                mshrs: 16,
            },
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                assoc: 12,
                line_bytes: 64,
                hit_latency: 4,
                mshrs: 16,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                assoc: 8,
                line_bytes: 64,
                hit_latency: 12,
                mshrs: 32,
            },
            llc: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
                hit_latency: 36,
                mshrs: 64,
            },
            dram_latency: 200,
        }
    }
}

/// Traffic counters below the L1s.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct TrafficStats {
    /// Requests that reached DRAM.
    pub dram_accesses: u64,
    /// Requests sent below the L1I by prefetches (traffic overhead).
    pub prefetch_traffic: u64,
    /// Total cycles instruction-fetch demands waited for data.
    pub ifetch_wait_cycles: u64,
}

/// The assembled memory hierarchy.
///
/// All addresses are **line numbers** (byte address / 64).
///
/// # Examples
///
/// ```
/// use fdip_mem::{Hierarchy, HierarchyConfig};
///
/// let mut mem = Hierarchy::new(HierarchyConfig::default());
/// let cold = mem.fetch_instr_line(100, 0);
/// assert!(cold > 200); // went to DRAM
/// let warm = mem.fetch_instr_line(100, cold);
/// assert_eq!(warm, cold + 1); // L1I hit
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    traffic: TrafficStats,
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            config,
            l1i: Cache::new("L1I", config.l1i),
            l1d: Cache::new("L1D", config.l1d),
            l2: Cache::new("L2", config.l2),
            llc: Cache::new("LLC", config.llc),
            traffic: TrafficStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// L1I counters (tag probes feed Fig. 9).
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// L1D counters.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// LLC counters.
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// Below-L1 traffic counters.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic
    }

    /// Resolves a miss below the L1s: L2 → LLC → DRAM. Returns the cycle
    /// at which the line reaches the L1's fill port.
    fn fetch_from_l2(&mut self, line: u64, now: Cycle) -> Cycle {
        match self.l2.probe_demand(line, now) {
            Lookup::Hit(r) => r,
            Lookup::Miss => {
                let at_llc = now + self.config.l2.hit_latency;
                let ready = match self.llc.probe_demand(line, at_llc) {
                    Lookup::Hit(r) => r,
                    Lookup::Miss => {
                        let r = at_llc + self.config.llc.hit_latency + self.config.dram_latency;
                        self.traffic.dram_accesses += 1;
                        self.llc.fill(line, r, FillSrc::Demand);
                        r
                    }
                };
                self.l2.fill(line, ready, FillSrc::Demand);
                ready
            }
        }
    }

    /// Demand instruction fetch of a line. Returns the data-ready cycle.
    pub fn fetch_instr_line(&mut self, line: u64, now: Cycle) -> Cycle {
        self.fetch_instr_line_decoupled(line, now, false)
    }

    /// Instruction fetch from the FTQ fill pipeline. `ahead` marks
    /// probes issued while the entry was *not yet* the FTQ head — on a
    /// miss those install the line as an [`FillSrc::Fdp`] fill, so the
    /// fetch-directed prefetch itself is tracked in the prefetch-outcome
    /// taxonomy (head probes are plain demand). Returns the data-ready
    /// cycle.
    pub fn fetch_instr_line_decoupled(&mut self, line: u64, now: Cycle, ahead: bool) -> Cycle {
        let ready = match self.l1i.probe_demand(line, now) {
            Lookup::Hit(r) => r,
            Lookup::Miss => {
                let r = self.fetch_from_l2(line, now + self.config.l1i.hit_latency);
                let src = if ahead {
                    self.l1i.note_fdp_fill();
                    FillSrc::Fdp
                } else {
                    FillSrc::Demand
                };
                self.l1i.fill(line, r, src);
                r
            }
        };
        self.traffic.ifetch_wait_cycles += ready - now;
        ready
    }

    /// Takes the source of the prefetched line the most recent
    /// instruction fetch resolved, plus whether its fill was still in
    /// flight (event-tracer hook; see [`Cache::take_last_use`]).
    pub fn take_last_instr_use(&mut self) -> Option<(FillSrc, bool)> {
        self.l1i.take_last_use()
    }

    /// Resident L1I lines filled by `src` and never demand-touched —
    /// the *unresolved* remainder of the prefetch-outcome invariant.
    /// O(capacity); for tests and end-of-run checks.
    pub fn l1i_unresolved_prefetches(&self, src: FillSrc) -> u64 {
        self.l1i.unresolved_prefetches(src)
    }

    /// Tag-only L1I probe (the FTQ fill pipeline and prefetch filters use
    /// this; every call counts an I-cache tag access for Fig. 9).
    pub fn probe_instr_tag(&mut self, line: u64) -> bool {
        self.l1i.probe_tag(line)
    }

    /// Is the line (or an in-flight fill of it) present in the L1I?
    /// Silent: no statistics.
    pub fn instr_line_present(&self, line: u64) -> bool {
        self.l1i.contains(line)
    }

    /// Issues an instruction prefetch. Probes the L1I tags; if absent and
    /// MSHR space allows, fetches the line from below and installs it
    /// (ready after the full round trip). Returns `true` if a fill was
    /// initiated.
    pub fn prefetch_instr_line(&mut self, line: u64, now: Cycle) -> bool {
        if !self.l1i.note_prefetch(line, now) {
            return false;
        }
        self.traffic.prefetch_traffic += 1;
        let ready = self.fetch_from_l2(line, now + self.config.l1i.hit_latency);
        self.l1i.fill(line, ready, FillSrc::Pf);
        true
    }

    /// Perfect-prefetch semantics (§V): the line appears in the L1I
    /// instantly, but the request still traverses the lower levels so
    /// traffic overhead is simulated.
    pub fn prefetch_instr_line_instant(&mut self, line: u64, now: Cycle) {
        if self.l1i.contains(line) {
            return;
        }
        self.l1i.note_instant_prefetch();
        self.traffic.prefetch_traffic += 1;
        let _ = self.fetch_from_l2(line, now);
        self.l1i.fill(line, now, FillSrc::Pf);
    }

    /// Pre-installs instruction lines into the LLC (used to model the
    /// paper's 50M-instruction warm-up, after which the code footprint
    /// is LLC-resident; DESIGN.md §2).
    pub fn prewarm_llc_instr(&mut self, lines: impl Iterator<Item = u64>) {
        for line in lines {
            self.llc.fill(line, 0, FillSrc::Demand);
        }
    }

    /// Demand data access (loads and stores). Returns the data-ready
    /// cycle.
    pub fn access_data_line(&mut self, line: u64, now: Cycle) -> Cycle {
        match self.l1d.probe_demand(line, now) {
            Lookup::Hit(r) => r,
            Lookup::Miss => {
                let ready = self.fetch_from_l2(line, now + self.config.l1d.hit_latency);
                self.l1d.fill(line, ready, FillSrc::Demand);
                ready
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn cold_fetch_goes_to_dram() {
        let mut m = mem();
        let ready = m.fetch_instr_line(1000, 0);
        // 1 (L1I) + 12 (L2) + 36 (LLC) + 200 (DRAM)
        assert!(ready >= 200, "ready={ready}");
        assert_eq!(m.traffic().dram_accesses, 1);
    }

    #[test]
    fn second_fetch_hits_l1i() {
        let mut m = mem();
        let r1 = m.fetch_instr_line(1000, 0);
        let r2 = m.fetch_instr_line(1000, r1 + 10);
        assert_eq!(r2, r1 + 10 + 1);
        assert_eq!(m.l1i_stats().demand_hits, 1);
    }

    #[test]
    fn l2_keeps_evicted_l1i_lines_warm() {
        let mut m = mem();
        // Fill far more lines than L1I holds (512 lines).
        let mut t = 0;
        for line in 0..2000u64 {
            t = m.fetch_instr_line(line, t);
        }
        // Re-fetch line 0: L1I evicted it, L2 (8192 lines) still has it.
        let before_dram = m.traffic().dram_accesses;
        let start = t + 10;
        let ready = m.fetch_instr_line(0, start);
        assert_eq!(m.traffic().dram_accesses, before_dram);
        assert!(ready < start + m.config().dram_latency, "hit below DRAM");
    }

    #[test]
    fn prefetch_then_demand_is_a_useful_hit() {
        let mut m = mem();
        assert!(m.prefetch_instr_line(77, 0));
        let ready = m.fetch_instr_line(77, 500);
        assert_eq!(ready, 501);
        assert_eq!(m.l1i_stats().useful_prefetches, 1);
    }

    #[test]
    fn early_demand_merges_with_prefetch() {
        let mut m = mem();
        assert!(m.prefetch_instr_line(77, 0));
        // Demand arrives before the prefetch completes: merged, waits.
        let ready = m.fetch_instr_line(77, 5);
        assert!(ready > 100, "merged onto in-flight fill: {ready}");
        assert_eq!(m.l1i_stats().demand_merged, 1);
    }

    #[test]
    fn instant_prefetch_is_ready_immediately_but_counts_traffic() {
        let mut m = mem();
        m.prefetch_instr_line_instant(55, 10);
        assert_eq!(m.fetch_instr_line(55, 11), 12);
        assert_eq!(m.traffic().prefetch_traffic, 1);
        assert_eq!(m.traffic().dram_accesses, 1);
        // Instant fills join the prefetch-outcome taxonomy too.
        let s = m.l1i_stats();
        assert_eq!(s.prefetch_requests, 1);
        assert_eq!(s.outcomes_pf.requests, 1);
        assert_eq!(s.outcomes_pf.timely, 1);
    }

    #[test]
    fn ahead_probe_installs_an_fdp_tracked_fill() {
        let mut m = mem();
        // A fill-pipeline probe ahead of the FTQ head misses: the line
        // installs as an FDP fill and stays unresolved until touched.
        let ready = m.fetch_instr_line_decoupled(500, 0, true);
        assert!(ready > 0);
        let s = m.l1i_stats();
        assert_eq!(s.outcomes_fdp.requests, 1);
        assert_eq!(m.l1i_unresolved_prefetches(FillSrc::Fdp), 1);
        // The head fetch after the fill completes resolves it as timely.
        m.fetch_instr_line(500, ready + 10);
        let o = m.l1i_stats().outcomes_fdp;
        assert_eq!((o.timely, o.late), (1, 0));
        assert_eq!(m.l1i_unresolved_prefetches(FillSrc::Fdp), 0);
        assert_eq!(m.take_last_instr_use(), Some((FillSrc::Fdp, false)));
        // FDP fills never touch the dedicated-prefetcher usefulness
        // counter.
        assert_eq!(m.l1i_stats().useful_prefetches, 0);
    }

    #[test]
    fn head_probe_that_arrives_during_fdp_fill_is_late() {
        let mut m = mem();
        let ready = m.fetch_instr_line_decoupled(501, 0, true);
        // Demand arrives before the fill completes: late FDP fill.
        m.fetch_instr_line(501, ready - 1);
        let o = m.l1i_stats().outcomes_fdp;
        assert_eq!((o.timely, o.late), (0, 1));
        assert_eq!(m.take_last_instr_use(), Some((FillSrc::Fdp, true)));
    }

    #[test]
    fn tag_probe_counts_without_lru_effects() {
        let mut m = mem();
        let probes0 = m.l1i_stats().tag_probes;
        assert!(!m.probe_instr_tag(9));
        m.fetch_instr_line(9, 0);
        assert!(m.probe_instr_tag(9));
        assert_eq!(m.l1i_stats().tag_probes, probes0 + 3); // 2 probes + 1 demand
    }

    #[test]
    fn data_side_is_independent_of_instruction_side() {
        let mut m = mem();
        m.fetch_instr_line(4, 0);
        // Same line number on the data side still misses L1D but hits L2.
        let before = m.traffic().dram_accesses;
        let ready = m.access_data_line(4, 1000);
        assert_eq!(m.traffic().dram_accesses, before);
        assert!(ready < 1000 + m.config().dram_latency);
    }

    #[test]
    fn redundant_prefetch_returns_false() {
        let mut m = mem();
        m.fetch_instr_line(3, 0);
        assert!(!m.prefetch_instr_line(3, 10));
        assert_eq!(m.traffic().prefetch_traffic, 0);
    }
}
