#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Memory-hierarchy substrate for the FDIP reproduction.
//!
//! Provides the ChampSim-class cache hierarchy the paper's evaluation sits
//! on (§V): split 32KB L1I / 48KB L1D, unified 512KB L2, 2MB LLC, and a
//! fixed-latency DRAM, with MSHR-style merging of in-flight fills,
//! prefetch plumbing (including the paper's "instant but traffic-visible"
//! perfect prefetch), and the per-cache counters the figures need —
//! notably I-cache **tag probes** (Fig. 9) and prefetch usefulness.
//!
//! # Examples
//!
//! ```
//! use fdip_mem::{Hierarchy, HierarchyConfig};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::default());
//! mem.prefetch_instr_line(7, 0);          // prefetcher fills ahead
//! let ready = mem.fetch_instr_line(7, 400); // demand hits
//! assert_eq!(ready, 401);
//! assert_eq!(mem.l1i_stats().useful_prefetches, 1);
//! ```

mod cache;
mod hierarchy;
mod table;

pub use cache::{Cache, CacheConfig, CacheStats, FillSrc, Lookup, PrefetchOutcomes};
pub use hierarchy::{Hierarchy, HierarchyConfig, TrafficStats};
