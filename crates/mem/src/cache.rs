//! A set-associative cache with LRU replacement and ready-time tracking.
//!
//! The timing model is the "ready-at" style used by trace-driven frontend
//! simulators: an access returns the cycle at which its data is available.
//! A missing line is filled immediately but marked *pending* until its
//! ready cycle, so later accesses to an in-flight line merge onto the same
//! fill (MSHR-style) instead of seeing an instant hit.
//!
//! Every fill carries a [`FillSrc`] so prefetched lines can be followed
//! from installation to their first demand touch (or eviction) and
//! classified into the [`PrefetchOutcomes`] taxonomy, separately for
//! decoupled-frontend (FDP) fills and dedicated-prefetcher fills.

use crate::table::FillMap;
use fdip_types::Cycle;

/// Geometry and timing of one cache level.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Ways per set.
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Latency from access to data for a hit, in cycles.
    pub hit_latency: u64,
    /// Maximum in-flight fills; *prefetch* requests beyond this are
    /// dropped (demand requests are always accepted).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }
}

/// Who initiated a fill. Determines which [`PrefetchOutcomes`] bucket a
/// line's fate is charged to.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum FillSrc {
    /// A demand access (or a line already demand-touched).
    #[default]
    Demand,
    /// A decoupled-frontend fill: an FTQ fill-pipeline probe that ran
    /// ahead of the FTQ head (the fetch-directed prefetch itself).
    Fdp,
    /// A dedicated instruction prefetcher.
    Pf,
}

/// Lifetime taxonomy for prefetched lines, kept per [`FillSrc`].
///
/// Every request eventually lands in exactly one of the outcome classes
/// (or is still resident and untouched — the *unresolved* gauge), so
/// `requests == timely + late + useless_evicted + useless_replaced +
/// dropped + unresolved` holds at any instant.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct PrefetchOutcomes {
    /// Prefetch requests attributed to this source.
    pub requests: u64,
    /// First demand touch arrived after the fill completed.
    pub timely: u64,
    /// First demand touch arrived while the fill was still in flight —
    /// the prefetch hid part, but not all, of the miss.
    pub late: u64,
    /// Evicted untouched by a demand fill.
    pub useless_evicted: u64,
    /// Replaced untouched by another prefetch fill.
    pub useless_replaced: u64,
    /// Dropped before filling: line already present/in flight, or no
    /// MSHR was free.
    pub dropped: u64,
}

impl PrefetchOutcomes {
    /// Sum of all resolved outcome classes (everything except the
    /// still-resident *unresolved* lines).
    pub fn resolved(&self) -> u64 {
        self.timely + self.late + self.useless_evicted + self.useless_replaced + self.dropped
    }
}

/// Per-cache event counters.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Demand accesses.
    pub demand_accesses: u64,
    /// Demand hits (including hits on still-pending lines).
    pub demand_hits: u64,
    /// Demand misses.
    pub demand_misses: u64,
    /// Demand hits that merged onto an in-flight fill.
    pub demand_merged: u64,
    /// Prefetch requests received.
    pub prefetch_requests: u64,
    /// Prefetch requests that initiated a fill.
    pub prefetch_fills: u64,
    /// Prefetches dropped because the MSHRs were full.
    pub prefetch_dropped: u64,
    /// Demand accesses that hit a line brought in by a prefetch.
    pub useful_prefetches: u64,
    /// Tag-array probes (every lookup, hit or miss, demand or prefetch).
    pub tag_probes: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Lifetime taxonomy of decoupled-frontend (FDP) fills.
    pub outcomes_fdp: PrefetchOutcomes,
    /// Lifetime taxonomy of dedicated-prefetcher fills.
    pub outcomes_pf: PrefetchOutcomes,
}

#[derive(Copy, Clone, Debug)]
struct Line {
    tag: u64,
    lru: u64,
    /// Who brought the line in; reset to [`FillSrc::Demand`] at the
    /// first demand touch (resolving its prefetch outcome).
    src: FillSrc,
}

/// Result of a cache probe.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Lookup {
    /// Present; data ready at the given cycle (>= now for pending lines).
    Hit(Cycle),
    /// Absent.
    Miss,
}

/// One cache level.
///
/// Addresses are *line numbers* (byte address / line size); the caller
/// does the division once.
///
/// # Examples
///
/// ```
/// use fdip_mem::{Cache, CacheConfig, FillSrc, Lookup};
///
/// let mut c = Cache::new("L1I", CacheConfig {
///     size_bytes: 32 * 1024, assoc: 8, line_bytes: 64, hit_latency: 1, mshrs: 8,
/// });
/// assert_eq!(c.probe_demand(42, 100), Lookup::Miss);
/// c.fill(42, 180, FillSrc::Demand);
/// assert_eq!(c.probe_demand(42, 200), Lookup::Hit(201));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    name: &'static str,
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    /// line -> ready cycle, for in-flight fills.
    pending: FillMap,
    stamp: u64,
    /// Source (and in-flight flag) of the prefetched line most recently
    /// resolved by a demand probe, if any since the last
    /// [`Cache::take_last_use`] — event-tracer hook, written only on the
    /// rare resolving probe.
    last_use: Option<(FillSrc, bool)>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a positive power of two.
    pub fn new(name: &'static str, config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "{name}: set count must be a power of two, got {sets}"
        );
        Cache {
            name,
            config,
            sets: vec![Vec::with_capacity(config.assoc); sets],
            pending: FillMap::new(),
            stamp: 0,
            last_use: None,
            stats: CacheStats::default(),
        }
    }

    /// This cache's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Geometry in use.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Event counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, line: u64) -> usize {
        (line as usize) & (self.sets.len() - 1)
    }

    fn find(&mut self, line: u64, touch: bool) -> Option<&mut Line> {
        let set = self.set_index(line);
        self.stamp += 1;
        let stamp = self.stamp;
        let l = self.sets[set].iter_mut().find(|l| l.tag == line)?;
        if touch {
            l.lru = stamp;
        }
        Some(l)
    }

    /// Demand probe: updates LRU, counts stats, detects useful prefetches.
    pub fn probe_demand(&mut self, line: u64, now: Cycle) -> Lookup {
        self.stats.tag_probes += 1;
        self.stats.demand_accesses += 1;
        let mut used: Option<FillSrc> = None;
        let hit = if let Some(l) = self.find(line, true) {
            if l.src != FillSrc::Demand {
                used = Some(l.src);
                l.src = FillSrc::Demand;
            }
            true
        } else {
            false
        };
        if hit {
            self.stats.demand_hits += 1;
            // One pending lookup answers both questions: a still-in-flight
            // fill merges the demand onto it; a completed fill releases
            // its MSHR and the hit proceeds at the normal latency.
            let pending = self.pending.get(line);
            if let Some(src) = used {
                let in_flight = matches!(pending, Some(r) if r > now);
                // `used` is only ever Fdp or Pf (set when the hit line's
                // source was not Demand).
                let o = match src {
                    FillSrc::Fdp => &mut self.stats.outcomes_fdp,
                    _ => &mut self.stats.outcomes_pf,
                };
                if in_flight {
                    o.late += 1;
                } else {
                    o.timely += 1;
                }
                if src == FillSrc::Pf {
                    self.stats.useful_prefetches += 1;
                }
                self.last_use = Some((src, in_flight));
            }
            match pending {
                Some(r) if r > now => {
                    self.stats.demand_merged += 1;
                    Lookup::Hit(r)
                }
                Some(_) => {
                    self.pending.remove(line);
                    Lookup::Hit(now + self.config.hit_latency)
                }
                None => Lookup::Hit(now + self.config.hit_latency),
            }
        } else {
            self.stats.demand_misses += 1;
            Lookup::Miss
        }
    }

    /// Takes the source of the prefetched line the most recent
    /// [`Cache::probe_demand`] resolved, plus whether its fill was still
    /// in flight (a *late* use). `None` when no probe has resolved a
    /// prefetched line since the last take — the event tracer consumes
    /// this after each demand fetch, so the hot probe path only writes
    /// the slot on the (rare) resolving probe.
    pub fn take_last_use(&mut self) -> Option<(FillSrc, bool)> {
        self.last_use.take()
    }

    /// Tag-only probe for prefetchers and fill filters: counts a tag
    /// access, does not touch LRU or demand stats.
    pub fn probe_tag(&mut self, line: u64) -> bool {
        self.stats.tag_probes += 1;
        let set = self.set_index(line);
        self.sets[set].iter().any(|l| l.tag == line)
    }

    /// Silent presence check (no statistics; for tests and oracles).
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_index(line);
        self.sets[set].iter().any(|l| l.tag == line)
    }

    /// Accounts a prefetch request arriving at this cache at cycle `now`.
    /// Returns `true` if the line was absent and the caller should
    /// perform the fill (i.e. MSHR space was available and the line is
    /// not already present or in flight).
    pub fn note_prefetch(&mut self, line: u64, now: Cycle) -> bool {
        self.stats.prefetch_requests += 1;
        self.stats.outcomes_pf.requests += 1;
        if self.probe_tag(line) || self.pending.contains(line) {
            self.stats.outcomes_pf.dropped += 1;
            return false;
        }
        if self.pending.len() >= self.config.mshrs {
            // Completed fills release their MSHRs; purge lazily.
            self.pending.retain(|_, ready| ready > now);
        }
        if self.pending.len() >= self.config.mshrs {
            self.stats.prefetch_dropped += 1;
            self.stats.outcomes_pf.dropped += 1;
            return false;
        }
        self.stats.prefetch_fills += 1;
        true
    }

    /// Accounts one decoupled-frontend fill initiation (an ahead-of-head
    /// FTQ probe that missed). The matching [`Cache::fill`] must pass
    /// [`FillSrc::Fdp`].
    pub(crate) fn note_fdp_fill(&mut self) {
        self.stats.outcomes_fdp.requests += 1;
    }

    /// Accounts one perfect-prefetcher ("instant") fill. Instant fills
    /// skip the tag/MSHR gauntlet of [`Cache::note_prefetch`] but are
    /// still prefetches: they count as a request and a fill so the
    /// outcome invariant covers them.
    pub(crate) fn note_instant_prefetch(&mut self) {
        self.stats.prefetch_requests += 1;
        self.stats.prefetch_fills += 1;
        self.stats.outcomes_pf.requests += 1;
    }

    /// Installs `line`, available at cycle `ready`, evicting LRU if the
    /// set is full. `src` records who brought the line in, for the
    /// prefetch-lifetime taxonomy; a victim that was never demand-touched
    /// resolves as `useless_evicted` (displaced by a demand fill) or
    /// `useless_replaced` (displaced by another prefetch).
    pub fn fill(&mut self, line: u64, ready: Cycle, src: FillSrc) {
        let set = self.set_index(line);
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = &mut self.sets[set];
        if let Some(l) = ways.iter_mut().find(|l| l.tag == line) {
            // Refill of a present line: refresh only.
            l.lru = stamp;
            return;
        }
        if ways.len() >= self.config.assoc {
            let victim_idx = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i);
            if let Some(victim_idx) = victim_idx {
                let victim = ways.swap_remove(victim_idx);
                self.pending.remove(victim.tag);
                self.stats.evictions += 1;
                if victim.src != FillSrc::Demand {
                    let o = match victim.src {
                        FillSrc::Fdp => &mut self.stats.outcomes_fdp,
                        _ => &mut self.stats.outcomes_pf,
                    };
                    if src == FillSrc::Demand {
                        o.useless_evicted += 1;
                    } else {
                        o.useless_replaced += 1;
                    }
                }
            }
        }
        ways.push(Line {
            tag: line,
            lru: stamp,
            src,
        });
        if ready > 0 {
            self.pending.insert(line, ready);
        }
    }

    /// Resident lines filled by `src` and not yet demand-touched — the
    /// *unresolved* remainder of the outcome invariant. O(capacity);
    /// intended for tests and end-of-run checks, not the hot path.
    pub fn unresolved_prefetches(&self, src: FillSrc) -> u64 {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|l| l.src == src)
            .count() as u64
    }

    /// Number of in-flight fills.
    pub fn inflight(&self) -> usize {
        self.pending.len()
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(
            "T",
            CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 2,
                mshrs: 4,
            },
        )
    }

    fn outcome_invariant(c: &Cache, src: FillSrc) {
        let (o, requests) = match src {
            FillSrc::Pf => (c.stats().outcomes_pf, c.stats().outcomes_pf.requests),
            FillSrc::Fdp => (c.stats().outcomes_fdp, c.stats().outcomes_fdp.requests),
            FillSrc::Demand => unreachable!(),
        };
        assert_eq!(
            o.resolved() + c.unresolved_prefetches(src),
            requests,
            "outcome invariant violated for {src:?}: {o:?}"
        );
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = small();
        assert_eq!(c.probe_demand(5, 10), Lookup::Miss);
        c.fill(5, 50, FillSrc::Demand);
        // Before ready: merged hit at the fill's ready time.
        assert_eq!(c.probe_demand(5, 20), Lookup::Hit(50));
        // After ready: normal hit latency.
        assert_eq!(c.probe_demand(5, 60), Lookup::Hit(62));
        let s = c.stats();
        assert_eq!(s.demand_misses, 1);
        assert_eq!(s.demand_hits, 2);
        assert_eq!(s.demand_merged, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = small(); // 8 sets, 2 ways
                             // Three lines mapping to set 0 (multiples of 8).
        c.fill(0, 0, FillSrc::Demand);
        c.fill(8, 0, FillSrc::Demand);
        c.probe_demand(0, 1); // touch line 0 so line 8 is LRU
        c.fill(16, 0, FillSrc::Demand);
        assert!(c.contains(0));
        assert!(!c.contains(8));
        assert!(c.contains(16));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn prefetch_usefulness_tracked() {
        let mut c = small();
        assert!(c.note_prefetch(3, 0));
        c.fill(3, 30, FillSrc::Pf);
        assert_eq!(c.probe_demand(3, 40), Lookup::Hit(42));
        assert_eq!(c.stats().useful_prefetches, 1);
        assert_eq!(c.stats().outcomes_pf.timely, 1);
        assert_eq!(c.take_last_use(), Some((FillSrc::Pf, false)));
        // Second demand hit is no longer "useful".
        c.probe_demand(3, 50);
        assert_eq!(c.stats().useful_prefetches, 1);
        assert_eq!(c.stats().outcomes_pf.timely, 1);
        assert_eq!(c.take_last_use(), None);
        outcome_invariant(&c, FillSrc::Pf);
    }

    #[test]
    fn late_prefetch_counts_as_late_not_timely() {
        let mut c = small();
        assert!(c.note_prefetch(3, 0));
        c.fill(3, 30, FillSrc::Pf);
        // Demand arrives at cycle 10, fill completes at 30: late.
        assert_eq!(c.probe_demand(3, 10), Lookup::Hit(30));
        let o = c.stats().outcomes_pf;
        assert_eq!((o.timely, o.late), (0, 1));
        // Late uses still count toward usefulness (the line was wanted).
        assert_eq!(c.stats().useful_prefetches, 1);
        assert_eq!(c.take_last_use(), Some((FillSrc::Pf, true)));
        outcome_invariant(&c, FillSrc::Pf);
    }

    #[test]
    fn untouched_prefetch_eviction_is_classified_by_displacer() {
        let mut c = small(); // 8 sets, 2 ways; lines ≡ 0 (mod 8) share set 0
        assert!(c.note_prefetch(0, 0));
        c.fill(0, 0, FillSrc::Pf);
        assert!(c.note_prefetch(8, 1));
        c.fill(8, 0, FillSrc::Pf);
        // A demand fill displaces line 0 (the LRU): useless_evicted.
        c.fill(16, 0, FillSrc::Demand);
        assert_eq!(c.stats().outcomes_pf.useless_evicted, 1);
        // Another prefetch displaces line 8: useless_replaced.
        assert!(c.note_prefetch(24, 2));
        c.fill(24, 0, FillSrc::Pf);
        assert_eq!(c.stats().outcomes_pf.useless_replaced, 1);
        outcome_invariant(&c, FillSrc::Pf);
    }

    #[test]
    fn fdp_fills_resolve_into_their_own_bucket() {
        let mut c = small();
        c.note_fdp_fill();
        c.fill(5, 40, FillSrc::Fdp);
        assert_eq!(c.probe_demand(5, 100), Lookup::Hit(102));
        let s = c.stats();
        assert_eq!(s.outcomes_fdp.timely, 1);
        // FDP fills are not dedicated-prefetcher fills: the legacy
        // usefulness counter must not move.
        assert_eq!(s.useful_prefetches, 0);
        assert_eq!(s.outcomes_pf.requests, 0);
        outcome_invariant(&c, FillSrc::Fdp);
    }

    #[test]
    fn redundant_prefetch_is_filtered_but_probes_tags() {
        let mut c = small();
        c.fill(7, 0, FillSrc::Demand);
        let before = c.stats().tag_probes;
        assert!(!c.note_prefetch(7, 0));
        assert_eq!(c.stats().tag_probes, before + 1);
        assert_eq!(c.stats().prefetch_fills, 0);
        // Redundant requests resolve immediately as dropped.
        assert_eq!(c.stats().outcomes_pf.dropped, 1);
        outcome_invariant(&c, FillSrc::Pf);
    }

    #[test]
    fn prefetch_mshr_limit_drops() {
        let mut c = small(); // mshrs = 4
        for line in 0..4 {
            assert!(c.note_prefetch(line, 0));
            c.fill(line, 1000, FillSrc::Pf);
        }
        assert_eq!(c.inflight(), 4);
        // At cycle 10 the fills are still in flight: dropped.
        assert!(!c.note_prefetch(100, 10));
        assert_eq!(c.stats().prefetch_dropped, 1);
        assert_eq!(c.stats().outcomes_pf.dropped, 1);
        // Once the fills complete, MSHRs free up again. (The invariant
        // requires the fill a `true` return promises.)
        assert!(c.note_prefetch(100, 2_000));
        c.fill(100, 2_100, FillSrc::Pf);
        outcome_invariant(&c, FillSrc::Pf);
    }

    #[test]
    fn demand_ignores_mshr_limit() {
        let mut c = small();
        for line in 0..4 {
            c.fill(line, 1000, FillSrc::Demand);
        }
        // Demand probes still work and fills still accepted.
        assert_eq!(c.probe_demand(50, 10), Lookup::Miss);
        c.fill(50, 500, FillSrc::Demand);
        assert_eq!(c.probe_demand(50, 20), Lookup::Hit(500));
    }

    #[test]
    fn eviction_clears_pending() {
        let mut c = small();
        c.fill(0, 100, FillSrc::Demand);
        c.fill(8, 100, FillSrc::Demand);
        c.fill(16, 100, FillSrc::Demand); // evicts one of the set-0 lines
        assert!(c.inflight() <= 2);
    }

    #[test]
    fn occupancy_counts() {
        let mut c = small();
        assert_eq!(c.occupancy(), 0);
        c.fill(1, 0, FillSrc::Demand);
        c.fill(2, 0, FillSrc::Demand);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(
            "bad",
            CacheConfig {
                size_bytes: 999,
                assoc: 1,
                line_bytes: 64,
                hit_latency: 1,
                mshrs: 1,
            },
        );
    }
}
