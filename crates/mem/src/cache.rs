//! A set-associative cache with LRU replacement and ready-time tracking.
//!
//! The timing model is the "ready-at" style used by trace-driven frontend
//! simulators: an access returns the cycle at which its data is available.
//! A missing line is filled immediately but marked *pending* until its
//! ready cycle, so later accesses to an in-flight line merge onto the same
//! fill (MSHR-style) instead of seeing an instant hit.

use crate::table::FillMap;
use fdip_types::Cycle;

/// Geometry and timing of one cache level.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Ways per set.
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Latency from access to data for a hit, in cycles.
    pub hit_latency: u64,
    /// Maximum in-flight fills; *prefetch* requests beyond this are
    /// dropped (demand requests are always accepted).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }
}

/// Per-cache event counters.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Demand accesses.
    pub demand_accesses: u64,
    /// Demand hits (including hits on still-pending lines).
    pub demand_hits: u64,
    /// Demand misses.
    pub demand_misses: u64,
    /// Demand hits that merged onto an in-flight fill.
    pub demand_merged: u64,
    /// Prefetch requests received.
    pub prefetch_requests: u64,
    /// Prefetch requests that initiated a fill.
    pub prefetch_fills: u64,
    /// Prefetches dropped because the MSHRs were full.
    pub prefetch_dropped: u64,
    /// Demand accesses that hit a line brought in by a prefetch.
    pub useful_prefetches: u64,
    /// Tag-array probes (every lookup, hit or miss, demand or prefetch).
    pub tag_probes: u64,
    /// Lines evicted.
    pub evictions: u64,
}

#[derive(Copy, Clone, Debug)]
struct Line {
    tag: u64,
    lru: u64,
    /// Brought in by a prefetch and not yet referenced by demand.
    prefetched: bool,
}

/// Result of a cache probe.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Lookup {
    /// Present; data ready at the given cycle (>= now for pending lines).
    Hit(Cycle),
    /// Absent.
    Miss,
}

/// One cache level.
///
/// Addresses are *line numbers* (byte address / line size); the caller
/// does the division once.
///
/// # Examples
///
/// ```
/// use fdip_mem::{Cache, CacheConfig, Lookup};
///
/// let mut c = Cache::new("L1I", CacheConfig {
///     size_bytes: 32 * 1024, assoc: 8, line_bytes: 64, hit_latency: 1, mshrs: 8,
/// });
/// assert_eq!(c.probe_demand(42, 100), Lookup::Miss);
/// c.fill(42, 180, false);
/// assert_eq!(c.probe_demand(42, 200), Lookup::Hit(201));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    name: &'static str,
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    /// line -> ready cycle, for in-flight fills.
    pending: FillMap,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a positive power of two.
    pub fn new(name: &'static str, config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "{name}: set count must be a power of two, got {sets}"
        );
        Cache {
            name,
            config,
            sets: vec![Vec::with_capacity(config.assoc); sets],
            pending: FillMap::new(),
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// This cache's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Geometry in use.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Event counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, line: u64) -> usize {
        (line as usize) & (self.sets.len() - 1)
    }

    fn find(&mut self, line: u64, touch: bool) -> Option<&mut Line> {
        let set = self.set_index(line);
        self.stamp += 1;
        let stamp = self.stamp;
        let l = self.sets[set].iter_mut().find(|l| l.tag == line)?;
        if touch {
            l.lru = stamp;
        }
        Some(l)
    }

    /// Demand probe: updates LRU, counts stats, detects useful prefetches.
    pub fn probe_demand(&mut self, line: u64, now: Cycle) -> Lookup {
        self.stats.tag_probes += 1;
        self.stats.demand_accesses += 1;
        let hit = if let Some(l) = self.find(line, true) {
            if l.prefetched {
                l.prefetched = false;
                self.stats.useful_prefetches += 1;
            }
            true
        } else {
            false
        };
        if hit {
            self.stats.demand_hits += 1;
            // One pending lookup answers both questions: a still-in-flight
            // fill merges the demand onto it; a completed fill releases
            // its MSHR and the hit proceeds at the normal latency.
            match self.pending.get(line) {
                Some(r) if r > now => {
                    self.stats.demand_merged += 1;
                    Lookup::Hit(r)
                }
                Some(_) => {
                    self.pending.remove(line);
                    Lookup::Hit(now + self.config.hit_latency)
                }
                None => Lookup::Hit(now + self.config.hit_latency),
            }
        } else {
            self.stats.demand_misses += 1;
            Lookup::Miss
        }
    }

    /// Tag-only probe for prefetchers and fill filters: counts a tag
    /// access, does not touch LRU or demand stats.
    pub fn probe_tag(&mut self, line: u64) -> bool {
        self.stats.tag_probes += 1;
        let set = self.set_index(line);
        self.sets[set].iter().any(|l| l.tag == line)
    }

    /// Silent presence check (no statistics; for tests and oracles).
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_index(line);
        self.sets[set].iter().any(|l| l.tag == line)
    }

    /// Accounts a prefetch request arriving at this cache at cycle `now`.
    /// Returns `true` if the line was absent and the caller should
    /// perform the fill (i.e. MSHR space was available and the line is
    /// not already present or in flight).
    pub fn note_prefetch(&mut self, line: u64, now: Cycle) -> bool {
        self.stats.prefetch_requests += 1;
        if self.probe_tag(line) || self.pending.contains(line) {
            return false;
        }
        if self.pending.len() >= self.config.mshrs {
            // Completed fills release their MSHRs; purge lazily.
            self.pending.retain(|_, ready| ready > now);
        }
        if self.pending.len() >= self.config.mshrs {
            self.stats.prefetch_dropped += 1;
            return false;
        }
        self.stats.prefetch_fills += 1;
        true
    }

    /// Installs `line`, available at cycle `ready`, evicting LRU if the
    /// set is full. `prefetched` marks prefetch-brought lines for
    /// usefulness accounting.
    pub fn fill(&mut self, line: u64, ready: Cycle, prefetched: bool) {
        let set = self.set_index(line);
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = &mut self.sets[set];
        if let Some(l) = ways.iter_mut().find(|l| l.tag == line) {
            // Refill of a present line: refresh only.
            l.lru = stamp;
            return;
        }
        if ways.len() >= self.config.assoc {
            let victim_idx = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("set not empty");
            let victim = ways.swap_remove(victim_idx);
            self.pending.remove(victim.tag);
            self.stats.evictions += 1;
        }
        ways.push(Line {
            tag: line,
            lru: stamp,
            prefetched,
        });
        if ready > 0 {
            self.pending.insert(line, ready);
        }
    }

    /// Number of in-flight fills.
    pub fn inflight(&self) -> usize {
        self.pending.len()
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(
            "T",
            CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 2,
                mshrs: 4,
            },
        )
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = small();
        assert_eq!(c.probe_demand(5, 10), Lookup::Miss);
        c.fill(5, 50, false);
        // Before ready: merged hit at the fill's ready time.
        assert_eq!(c.probe_demand(5, 20), Lookup::Hit(50));
        // After ready: normal hit latency.
        assert_eq!(c.probe_demand(5, 60), Lookup::Hit(62));
        let s = c.stats();
        assert_eq!(s.demand_misses, 1);
        assert_eq!(s.demand_hits, 2);
        assert_eq!(s.demand_merged, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = small(); // 8 sets, 2 ways
                             // Three lines mapping to set 0 (multiples of 8).
        c.fill(0, 0, false);
        c.fill(8, 0, false);
        c.probe_demand(0, 1); // touch line 0 so line 8 is LRU
        c.fill(16, 0, false);
        assert!(c.contains(0));
        assert!(!c.contains(8));
        assert!(c.contains(16));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn prefetch_usefulness_tracked() {
        let mut c = small();
        assert!(c.note_prefetch(3, 0));
        c.fill(3, 30, true);
        assert_eq!(c.probe_demand(3, 40), Lookup::Hit(42));
        assert_eq!(c.stats().useful_prefetches, 1);
        // Second demand hit is no longer "useful".
        c.probe_demand(3, 50);
        assert_eq!(c.stats().useful_prefetches, 1);
    }

    #[test]
    fn redundant_prefetch_is_filtered_but_probes_tags() {
        let mut c = small();
        c.fill(7, 0, false);
        let before = c.stats().tag_probes;
        assert!(!c.note_prefetch(7, 0));
        assert_eq!(c.stats().tag_probes, before + 1);
        assert_eq!(c.stats().prefetch_fills, 0);
    }

    #[test]
    fn prefetch_mshr_limit_drops() {
        let mut c = small(); // mshrs = 4
        for line in 0..4 {
            assert!(c.note_prefetch(line, 0));
            c.fill(line, 1000, true);
        }
        assert_eq!(c.inflight(), 4);
        // At cycle 10 the fills are still in flight: dropped.
        assert!(!c.note_prefetch(100, 10));
        assert_eq!(c.stats().prefetch_dropped, 1);
        // Once the fills complete, MSHRs free up again.
        assert!(c.note_prefetch(100, 2_000));
    }

    #[test]
    fn demand_ignores_mshr_limit() {
        let mut c = small();
        for line in 0..4 {
            c.fill(line, 1000, false);
        }
        // Demand probes still work and fills still accepted.
        assert_eq!(c.probe_demand(50, 10), Lookup::Miss);
        c.fill(50, 500, false);
        assert_eq!(c.probe_demand(50, 20), Lookup::Hit(500));
    }

    #[test]
    fn eviction_clears_pending() {
        let mut c = small();
        c.fill(0, 100, false);
        c.fill(8, 100, false);
        c.fill(16, 100, false); // evicts one of the set-0 lines
        assert!(c.inflight() <= 2);
    }

    #[test]
    fn occupancy_counts() {
        let mut c = small();
        assert_eq!(c.occupancy(), 0);
        c.fill(1, 0, false);
        c.fill(2, 0, false);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(
            "bad",
            CacheConfig {
                size_bytes: 999,
                assoc: 1,
                line_bytes: 64,
                hit_latency: 1,
                mshrs: 1,
            },
        );
    }
}
