//! The fuzz-report document (METRICS.md Document 7).
//!
//! Reports are fully deterministic for a fixed `(seed, count, profile,
//! warmup, measure, inject)` tuple: no wall-clock timestamps, no host
//! identity, and no worker count — results are asserted
//! `FDIP_JOBS`-independent, so the pool size cannot leak into any
//! counter and is deliberately not echoed. `scripts/verify.sh` relies
//! on this to byte-diff reports across runs and worker counts.

use crate::matrix::{MatrixOptions, MatrixOutcome};
use fdip_telemetry::{Json, SCHEMA_VERSION};

/// Run metadata echoed into the report.
#[derive(Clone, Debug)]
pub struct ReportMeta {
    /// Base generator seed.
    pub seed: u64,
    /// Programs generated.
    pub count: u64,
    /// Generator profile name.
    pub profile: String,
    /// Shrunk replayable cases written (file stems, sorted).
    pub cases: Vec<String>,
}

/// Builds the Document 7 fuzz report.
pub fn report_to_json(meta: &ReportMeta, opts: &MatrixOptions, out: &MatrixOutcome) -> Json {
    let configs: Vec<Json> = crate::matrix::config_matrix()
        .iter()
        .map(|(name, _)| Json::from(*name))
        .collect();
    let mut checks = Json::obj();
    for &(name, n) in &out.checks {
        checks = checks.with(name, n);
    }
    let violations: Vec<Json> = out
        .violations
        .iter()
        .map(|v| {
            Json::obj()
                .with("program", v.program.as_str())
                .with("config", v.config.as_str())
                .with("invariant", v.violation.invariant)
                .with("detail", v.violation.detail.as_str())
        })
        .collect();
    let cases: Vec<Json> = meta.cases.iter().map(|c| Json::from(c.as_str())).collect();
    Json::obj().with("schema_version", SCHEMA_VERSION).with(
        "fuzz",
        Json::obj()
            .with("tool", "fdip-fuzz")
            .with("seed", meta.seed)
            .with("count", meta.count)
            .with("profile", meta.profile.as_str())
            .with("warmup", opts.warmup)
            .with("measure", opts.measure)
            .with("inject", opts.inject.name())
            .with("configs", Json::Arr(configs))
            .with("programs", meta.count)
            .with("sims", out.sims)
            .with("checks", checks)
            .with("violations", Json::Arr(violations))
            .with("failures", out.failing_programs().len() as u64)
            .with("cases", Json::Arr(cases)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{fuzz_seed_range, Inject};
    use crate::FuzzProfile;

    fn quick_opts(inject: Inject) -> MatrixOptions {
        MatrixOptions {
            warmup: 500,
            measure: 1_500,
            jobs: 2,
            inject,
        }
    }

    #[test]
    fn report_is_deterministic_and_well_formed() {
        let opts = quick_opts(Inject::None);
        let run = || {
            let (_, out) = fuzz_seed_range(FuzzProfile::Tiny, 11, 2, &opts);
            let meta = ReportMeta {
                seed: 11,
                count: 2,
                profile: "tiny".to_string(),
                cases: vec![],
            };
            report_to_json(&meta, &opts, &out).to_string()
        };
        let a = run();
        assert_eq!(a, run(), "report bytes differ across identical runs");
        let doc = Json::parse(&a).unwrap();
        let fuzz = doc.get("fuzz").unwrap();
        assert_eq!(fuzz.get("tool").and_then(Json::as_str), Some("fdip-fuzz"));
        assert_eq!(fuzz.get("sims").and_then(Json::as_u64), Some(40));
        assert_eq!(fuzz.get("failures").and_then(Json::as_u64), Some(0));
        assert_eq!(
            fuzz.get("configs")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(5)
        );
        let checks = fuzz.get("checks").unwrap();
        for name in crate::matrix::CHECK_NAMES {
            assert!(
                checks.get(name).and_then(Json::as_u64).unwrap_or(0) > 0,
                "check {name} missing from report"
            );
        }
    }

    #[test]
    fn injected_failures_surface_in_the_report() {
        let opts = quick_opts(Inject::StallLeak);
        let (_, out) = fuzz_seed_range(FuzzProfile::Tiny, 3, 1, &opts);
        let meta = ReportMeta {
            seed: 3,
            count: 1,
            profile: "tiny".to_string(),
            cases: vec!["case_fuzz_tiny_00000003".to_string()],
        };
        let doc = report_to_json(&meta, &opts, &out);
        let fuzz = doc.get("fuzz").unwrap();
        assert_eq!(
            fuzz.get("inject").and_then(Json::as_str),
            Some("stall-leak")
        );
        assert_eq!(fuzz.get("failures").and_then(Json::as_u64), Some(1));
        assert!(!fuzz
            .get("violations")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
        assert_eq!(
            fuzz.get("cases").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }
}
