//! The differential-testing harness: every generated program is
//! simulated under a frontier config matrix and the cross-cutting
//! invariants are checked on each run.
//!
//! Four passes per batch:
//!
//! 1. **Checked pass** — `run_workload_checked` per `(config, program)`
//!    cell on a seeded job pool: stall-partition (measured + full
//!    interval), outcome-ledger (FDP + dedicated-prefetcher sources),
//!    and the retire-bound sanity check. Fault injection perturbs this
//!    pass's results to prove the detection pipeline is live.
//! 2. **Baseline pass** — the whole grid through
//!    [`Runner::from_programs`] on a 1-worker pool; each cell's
//!    `WorkloadResult` JSON string is the byte-identity reference, and
//!    its counters must equal the checked pass's (same seed, same run).
//! 3. **Jobs pass** — the same grid on an N-worker pool; every cell
//!    must serialize byte-identically to the baseline
//!    (`FDIP_JOBS`-independence).
//! 4. **Repeat pass** — the N-worker grid again; byte-stability across
//!    repeated runs.

use std::sync::Arc;

use crate::gen::FuzzProfile;
use fdip_exec::Pool;
use fdip_harness::{Runner, WorkloadResult};
use fdip_prefetch::PrefetcherKind;
use fdip_program::Program;
use fdip_sim::{
    check_outcome_ledger, check_stall_partition, run_workload_checked, CoreConfig,
    InvariantViolation, OutcomeLedger, StallReason,
};
use fdip_telemetry::ToJson;

/// Functional-warmup instructions for fuzz configs. The stock configs
/// pre-train architecturally for 2M instructions per run — right for
/// paper-fidelity sweeps, hopeless for thousands of fuzz sims. The
/// invariants hold for any warm-up length.
pub const FUZZ_FUNC_WARMUP: u64 = 2_000;

/// Retired instructions may miss the measure target by at most the
/// commit width of one cycle in either direction: the final cycle can
/// overshoot the boundary, and a warm-up-phase overshoot shorts the
/// measured interval by the same mechanism. 64 is a config-independent
/// ceiling on the commit width.
pub const RETIRE_SLACK: u64 = 64;

/// The frontier config matrix (mirrors `tests/stall_accounting.rs`),
/// with functional warm-up cut to [`FUZZ_FUNC_WARMUP`].
pub fn config_matrix() -> Vec<(&'static str, CoreConfig)> {
    let mut no_pfc = CoreConfig::fdp();
    no_pfc.pfc = false;
    let mut perfect_btb = CoreConfig::fdp();
    perfect_btb.perfect_btb = true;
    let mut fnlmma = CoreConfig::fdp();
    fnlmma.prefetcher = PrefetcherKind::FnlMma;
    let mut matrix = vec![
        ("fdp", CoreConfig::fdp()),
        ("fdp_no_pfc", no_pfc),
        ("no_fdp", CoreConfig::no_fdp()),
        ("perfect_btb", perfect_btb),
        ("fnlmma", fnlmma),
    ];
    for (_, cfg) in &mut matrix {
        cfg.func_warmup = FUZZ_FUNC_WARMUP;
    }
    matrix
}

/// Deliberate fault injection: perturbs every checked run's results
/// post-simulation, so the harness must detect (and shrink) a violation
/// on every program. Proves the pipeline catches real bugs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Inject {
    /// No perturbation (the honest mode).
    None,
    /// Leak one cycle into a stall bucket without advancing the clock —
    /// the stall partition no longer sums to the cycle count.
    StallLeak,
    /// Drop one request from the outcome ledger — `resolved +
    /// unresolved` no longer covers `requests`.
    LedgerDrop,
}

impl Inject {
    /// Parses an injection-mode name (`stall-leak` / `ledger-drop`).
    pub fn from_name(name: &str) -> Option<Inject> {
        match name {
            "stall-leak" => Some(Inject::StallLeak),
            "ledger-drop" => Some(Inject::LedgerDrop),
            _ => None,
        }
    }

    /// The mode's report name (inverse of [`Inject::from_name`], plus
    /// `none`).
    pub fn name(&self) -> &'static str {
        match self {
            Inject::None => "none",
            Inject::StallLeak => "stall-leak",
            Inject::LedgerDrop => "ledger-drop",
        }
    }
}

/// Harness knobs for one batch.
#[derive(Clone, Debug)]
pub struct MatrixOptions {
    /// Warm-up instructions per sim (timed, before the measured window).
    pub warmup: u64,
    /// Measured instructions per sim.
    pub measure: u64,
    /// Worker count for the N-worker passes (the baseline pass always
    /// runs 1 worker).
    pub jobs: usize,
    /// Fault injection mode.
    pub inject: Inject,
}

impl Default for MatrixOptions {
    fn default() -> Self {
        MatrixOptions {
            warmup: 1_000,
            measure: 3_000,
            jobs: 2,
            inject: Inject::None,
        }
    }
}

/// One invariant violation attributed to its `(program, config)` cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellViolation {
    /// Generated program name.
    pub program: String,
    /// Config-matrix column name.
    pub config: String,
    /// The violated invariant.
    pub violation: InvariantViolation,
}

/// Names of every check the harness performs, in report order.
pub const CHECK_NAMES: [&str; 5] = [
    "stall_partition",
    "outcome_ledger",
    "retire_bound",
    "jobs_identity",
    "repeat_identity",
];

/// Result of one differential batch.
#[derive(Clone, Debug, Default)]
pub struct MatrixOutcome {
    /// Violations in deterministic (config-major, program-minor) order.
    pub violations: Vec<CellViolation>,
    /// Simulations executed.
    pub sims: u64,
    /// Per-check assertion counts, in [`CHECK_NAMES`] order.
    pub checks: Vec<(&'static str, u64)>,
}

impl MatrixOutcome {
    /// Programs (by name) with at least one violation, deduplicated,
    /// in first-seen order.
    pub fn failing_programs(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for v in &self.violations {
            if !seen.contains(&v.program) {
                seen.push(v.program.clone());
            }
        }
        seen
    }
}

fn count(checks: &mut [(&'static str, u64)], name: &str, n: u64) {
    if let Some(slot) = checks.iter_mut().find(|(k, _)| *k == name) {
        slot.1 += n;
    }
}

/// Runs the full differential battery over `programs` and returns every
/// violation found. `programs` pairs names with already-emitted images.
pub fn run_matrix(programs: &[(String, Arc<Program>)], opts: &MatrixOptions) -> MatrixOutcome {
    let matrix = config_matrix();
    let mut out = MatrixOutcome {
        checks: CHECK_NAMES.iter().map(|&n| (n, 0)).collect(),
        ..MatrixOutcome::default()
    };
    if programs.is_empty() {
        return out;
    }
    let jobs_pool = Arc::new(Pool::new(opts.jobs.max(1)));

    // Pass 1: checked runs, batched config-major on the N-worker pool.
    let mut checked_jobs = Vec::with_capacity(matrix.len() * programs.len());
    for (_, cfg) in &matrix {
        for (_, program) in programs {
            let cfg = cfg.clone();
            let program = Arc::clone(program);
            let (warmup, measure) = (opts.warmup, opts.measure);
            checked_jobs.push(move || run_workload_checked(&cfg, &program, warmup, measure));
        }
    }
    let checked = jobs_pool.run_batch(checked_jobs);
    out.sims += checked.len() as u64;
    for (flat, run) in checked.iter().enumerate() {
        let (cname, _) = &matrix[flat / programs.len()];
        let (pname, _) = &programs[flat % programs.len()];
        let mut violations = run.violations.clone();
        count(&mut out.checks, "stall_partition", 2);
        count(&mut out.checks, "outcome_ledger", 2);

        // Retire-bound sanity: the run measured what it was told to.
        count(&mut out.checks, "retire_bound", 1);
        let retired = run.stats.retired;
        let lo = opts.measure.saturating_sub(RETIRE_SLACK);
        if retired <= lo || retired >= opts.measure + RETIRE_SLACK {
            violations.push(InvariantViolation {
                invariant: "retire_bound",
                detail: format!(
                    "retired {retired} outside ({lo}, {})",
                    opts.measure + RETIRE_SLACK
                ),
            });
        }

        // Fault injection: perturb this run's results and re-check with
        // the same checkers the honest path uses.
        match opts.inject {
            Inject::None => {}
            Inject::StallLeak => {
                let mut stats = run.stats;
                stats.stall.charge(StallReason::Backend);
                violations.extend(check_stall_partition("injected", &stats));
            }
            Inject::LedgerDrop => {
                let o = run.stats.l1i.outcomes_fdp;
                let ledger = OutcomeLedger {
                    requests: o.requests + 1,
                    resolved: o.resolved(),
                    unresolved: o.requests - o.resolved(),
                };
                violations.extend(check_outcome_ledger("fdp", ledger));
            }
        }

        out.violations
            .extend(violations.into_iter().map(|violation| CellViolation {
                program: pname.clone(),
                config: (*cname).to_string(),
                violation,
            }));
    }

    // Passes 2-4: grid byte-identity through the Runner on 1 and N
    // workers. Serialize each cell exactly the way results.json does.
    let configs: Vec<CoreConfig> = matrix.iter().map(|(_, c)| c.clone()).collect();
    let serialize_grid = |pool: Arc<Pool>| -> Vec<Vec<String>> {
        let runner =
            Runner::from_programs(programs.to_vec(), opts.warmup, opts.measure).with_pool(pool);
        runner
            .run_configs_detailed(&configs)
            .into_iter()
            .map(|per_cfg| {
                per_cfg
                    .into_iter()
                    .zip(programs)
                    .map(|((stats, dists), (name, _))| {
                        WorkloadResult {
                            name: name.clone(),
                            family: "generated".to_string(),
                            stats,
                            dists,
                        }
                        .to_json()
                        .to_string()
                    })
                    .collect()
            })
            .collect()
    };
    let baseline = serialize_grid(Arc::new(Pool::new(1)));
    let jobs_grid = serialize_grid(Arc::clone(&jobs_pool));
    let repeat_grid = serialize_grid(jobs_pool);
    out.sims += 3 * (matrix.len() * programs.len()) as u64;

    let mut diff_grids = |name: &'static str, a: &[Vec<String>], b: &[Vec<String>]| {
        for (ci, (cname, _)) in matrix.iter().enumerate() {
            for (pi, (pname, _)) in programs.iter().enumerate() {
                count(&mut out.checks, name, 1);
                if a[ci][pi] != b[ci][pi] {
                    out.violations.push(CellViolation {
                        program: pname.clone(),
                        config: (*cname).to_string(),
                        violation: InvariantViolation {
                            invariant: name,
                            detail: format!(
                                "serialized results differ between runs ({} vs {} bytes)",
                                a[ci][pi].len(),
                                b[ci][pi].len()
                            ),
                        },
                    });
                }
            }
        }
    };
    diff_grids("jobs_identity", &baseline, &jobs_grid);
    diff_grids("repeat_identity", &jobs_grid, &repeat_grid);

    out
}

/// `true` when `program` (alone) produces at least one violation under
/// `opts` — the shrinker's reproduction predicate.
pub fn program_fails(name: &str, program: Arc<Program>, opts: &MatrixOptions) -> bool {
    let batch = vec![(name.to_string(), program)];
    !run_matrix(&batch, opts).violations.is_empty()
}

/// Convenience: emit + run a whole seed range of one profile.
pub fn fuzz_seed_range(
    profile: FuzzProfile,
    base_seed: u64,
    count: u64,
    opts: &MatrixOptions,
) -> (Vec<(String, Arc<Program>)>, MatrixOutcome) {
    let params = profile.params();
    let programs: Vec<(String, Arc<Program>)> = (0..count)
        .map(|i| {
            let seed = base_seed.wrapping_add(i);
            let name = format!("fuzz_{}_{seed:08x}", profile.name());
            let program = crate::gen::generate(&params, seed)
                .emit(&name)
                .expect("generator emits valid programs");
            (name, Arc::new(program))
        })
        .collect();
    let outcome = run_matrix(&programs, opts);
    (programs, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FuzzProfile};

    fn one_program(seed: u64) -> Vec<(String, Arc<Program>)> {
        let p = generate(&FuzzProfile::Tiny.params(), seed)
            .emit("m")
            .unwrap();
        vec![("m".to_string(), Arc::new(p))]
    }

    fn quick_opts() -> MatrixOptions {
        MatrixOptions {
            warmup: 500,
            measure: 1_500,
            jobs: 2,
            inject: Inject::None,
        }
    }

    #[test]
    fn matrix_has_the_five_frontier_configs() {
        let names: Vec<&str> = config_matrix().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["fdp", "fdp_no_pfc", "no_fdp", "perfect_btb", "fnlmma"]
        );
        for (_, cfg) in config_matrix() {
            assert_eq!(cfg.func_warmup, FUZZ_FUNC_WARMUP);
        }
    }

    #[test]
    fn healthy_batch_passes_all_checks() {
        let out = run_matrix(&one_program(5), &quick_opts());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.sims, 20); // 4 passes x 5 configs x 1 program
        for &(name, n) in &out.checks {
            assert!(n > 0, "check {name} never ran");
        }
    }

    #[test]
    fn injected_stall_leak_is_caught() {
        let mut opts = quick_opts();
        opts.inject = Inject::StallLeak;
        let out = run_matrix(&one_program(6), &opts);
        assert!(!out.violations.is_empty());
        assert!(out
            .violations
            .iter()
            .all(|v| v.violation.invariant == "stall_partition"));
        assert_eq!(out.failing_programs(), ["m"]);
    }

    #[test]
    fn injected_ledger_drop_is_caught() {
        let mut opts = quick_opts();
        opts.inject = Inject::LedgerDrop;
        let out = run_matrix(&one_program(7), &opts);
        assert!(!out.violations.is_empty());
        assert!(out
            .violations
            .iter()
            .all(|v| v.violation.invariant == "outcome_ledger"));
        assert!(program_fails("m", Arc::clone(&one_program(7)[0].1), &opts));
    }

    #[test]
    fn inject_names_parse() {
        assert_eq!(Inject::from_name("stall-leak"), Some(Inject::StallLeak));
        assert_eq!(Inject::from_name("ledger-drop"), Some(Inject::LedgerDrop));
        assert_eq!(Inject::from_name("nope"), None);
    }
}
