//! `fdip-fuzz` — seeded CFG workload fuzzer + differential-invariant
//! harness.
//!
//! ```text
//! fdip-fuzz run    [--seed N] [--count N] [--profile P] [--jobs N]
//!                  [--warmup N] [--measure N] [--inject MODE]
//!                  [--json PATH] [--cases DIR] [--shrink-trials N]
//! fdip-fuzz replay [--jobs N] [--warmup N] [--measure N] FILE...
//! fdip-fuzz corpus [--seed N] [--count N] [--out DIR]
//!                  [--warmup N] [--measure N]
//! ```
//!
//! `run` generates `count` programs from `seed`, runs the differential
//! config matrix, shrinks failures to minimized replayable cases, and
//! emits the deterministic Document 7 report. Exit code 1 when any
//! invariant is violated. `replay` re-runs saved cases (honest mode) and
//! fails on any violation. `corpus` regenerates the committed corpus:
//! shrunk-but-representative programs spanning all generator profiles.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use fdip_fuzz::{
    generate, program_fails, report_to_json, run_matrix, shrink, CaseFile, FuzzProfile, Inject,
    MatrixOptions, ReportMeta,
};
use fdip_program::cfg::{CfgProgram, Terminator};
use fdip_program::Program;

/// Most failing programs shrunk + written per run; shrinking re-runs the
/// full matrix per trial, so this bounds the tail of a bad campaign.
const MAX_SHRUNK_CASES: usize = 3;

struct RunArgs {
    seed: u64,
    count: u64,
    profile: FuzzProfile,
    opts: MatrixOptions,
    json: Option<PathBuf>,
    cases: Option<PathBuf>,
    shrink_trials: usize,
}

struct ReplayArgs {
    opts: MatrixOptions,
    files: Vec<PathBuf>,
}

struct CorpusArgs {
    seed: u64,
    count: u64,
    out: PathBuf,
    opts: MatrixOptions,
}

fn usage() -> String {
    "usage: fdip-fuzz run [--seed N] [--count N] [--profile tiny|small|mixed|large] \
     [--jobs N] [--warmup N] [--measure N] [--inject stall-leak|ledger-drop] \
     [--json PATH] [--cases DIR] [--shrink-trials N]\n\
     \x20      fdip-fuzz replay [--jobs N] [--warmup N] [--measure N] FILE...\n\
     \x20      fdip-fuzz corpus [--seed N] [--count N] [--out DIR] [--warmup N] [--measure N]"
        .to_string()
}

fn parse_u64(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("{flag}: bad number `{v}`"))
}

fn parse_common(
    a: &str,
    it: &mut impl Iterator<Item = String>,
    opts: &mut MatrixOptions,
) -> Result<bool, String> {
    match a {
        "--jobs" => opts.jobs = parse_u64(it, a)?.max(1) as usize,
        "--warmup" => opts.warmup = parse_u64(it, a)?,
        "--measure" => opts.measure = parse_u64(it, a)?,
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_run(it: &mut impl Iterator<Item = String>) -> Result<RunArgs, String> {
    let mut args = RunArgs {
        seed: 0,
        count: 64,
        profile: FuzzProfile::Mixed,
        opts: MatrixOptions::default(),
        json: None,
        cases: None,
        shrink_trials: 200,
    };
    while let Some(a) = it.next() {
        if parse_common(&a, it, &mut args.opts)? {
            continue;
        }
        match a.as_str() {
            "--seed" => args.seed = parse_u64(it, "--seed")?,
            "--count" => args.count = parse_u64(it, "--count")?,
            "--shrink-trials" => args.shrink_trials = parse_u64(it, "--shrink-trials")? as usize,
            "--profile" => {
                let v = it.next().ok_or("--profile needs a value")?;
                args.profile =
                    FuzzProfile::from_name(&v).ok_or_else(|| format!("unknown profile `{v}`"))?;
            }
            "--inject" => {
                let v = it.next().ok_or("--inject needs a value")?;
                args.opts.inject =
                    Inject::from_name(&v).ok_or_else(|| format!("unknown inject mode `{v}`"))?;
            }
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json needs a value")?)),
            "--cases" => {
                args.cases = Some(PathBuf::from(it.next().ok_or("--cases needs a value")?));
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn parse_replay(it: &mut impl Iterator<Item = String>) -> Result<ReplayArgs, String> {
    let mut args = ReplayArgs {
        opts: MatrixOptions::default(),
        files: Vec::new(),
    };
    while let Some(a) = it.next() {
        if parse_common(&a, it, &mut args.opts)? {
            continue;
        }
        if a.starts_with("--") {
            return Err(format!("unknown flag `{a}`\n{}", usage()));
        }
        args.files.push(PathBuf::from(a));
    }
    if args.files.is_empty() {
        return Err(format!("replay: no case files given\n{}", usage()));
    }
    Ok(args)
}

fn parse_corpus(it: &mut impl Iterator<Item = String>) -> Result<CorpusArgs, String> {
    let mut args = CorpusArgs {
        seed: 1,
        count: 24,
        out: PathBuf::from("tests/corpus"),
        opts: MatrixOptions::default(),
    };
    while let Some(a) = it.next() {
        if parse_common(&a, it, &mut args.opts)? {
            continue;
        }
        match a.as_str() {
            "--seed" => args.seed = parse_u64(it, "--seed")?,
            "--count" => args.count = parse_u64(it, "--count")?,
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// Bitmask of terminator kinds present — the "representativeness"
/// signature corpus shrinking must preserve.
fn kind_signature(p: &CfgProgram) -> u32 {
    let mut sig = 0u32;
    for blk in p.funcs.iter().flat_map(|f| &f.blocks) {
        sig |= 1
            << match blk.term {
                Terminator::FallThrough => 0,
                Terminator::Jump { .. } => 1,
                Terminator::Cond { .. } => 2,
                Terminator::Call { .. } => 3,
                Terminator::IndirectCall { .. } => 4,
                Terminator::IndirectJump { .. } => 5,
                Terminator::Return => 6,
            };
    }
    sig
}

fn cmd_run(args: &RunArgs) -> Result<ExitCode, String> {
    let params = args.profile.params();
    let programs: Vec<(String, u64, CfgProgram, Arc<Program>)> = (0..args.count)
        .map(|i| {
            let seed = args.seed.wrapping_add(i);
            let name = format!("fuzz_{}_{seed:08x}", args.profile.name());
            let cfg_prog = generate(&params, seed);
            let image = cfg_prog
                .emit(&name)
                .map_err(|e| format!("{name}: generator emitted invalid CFG: {e}"))?;
            Ok((name, seed, cfg_prog, Arc::new(image)))
        })
        .collect::<Result<_, String>>()?;
    let batch: Vec<(String, Arc<Program>)> = programs
        .iter()
        .map(|(n, _, _, p)| (n.clone(), Arc::clone(p)))
        .collect();
    let outcome = run_matrix(&batch, &args.opts);

    // Shrink the first few failing programs to replayable cases.
    let mut case_stems = Vec::new();
    for fail_name in outcome.failing_programs().iter().take(MAX_SHRUNK_CASES) {
        let (name, seed, cfg_prog, _) = programs
            .iter()
            .find(|(n, ..)| n == fail_name)
            .expect("failing program is in the batch");
        let mut reproduces = |cand: &CfgProgram| match cand.emit(name) {
            Ok(image) => program_fails(name, Arc::new(image), &args.opts),
            Err(_) => false,
        };
        let shrunk = shrink(cfg_prog, &mut reproduces, args.shrink_trials);
        eprintln!(
            "fdip-fuzz: {name} shrunk {} -> {} instrs",
            cfg_prog.instr_count(),
            shrunk.instr_count()
        );
        let case = CaseFile {
            seed: *seed,
            profile: args.profile.name().to_string(),
            inject: args.opts.inject.name().to_string(),
            violations: outcome
                .violations
                .iter()
                .filter(|v| &v.program == name)
                .map(|v| {
                    (
                        v.config.clone(),
                        v.violation.invariant.to_string(),
                        v.violation.detail.clone(),
                    )
                })
                .collect(),
            program: shrunk
                .emit(name)
                .map_err(|e| format!("{name}: shrunk CFG failed to emit: {e}"))?,
        };
        let stem = format!("case_{name}");
        if let Some(dir) = &args.cases {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = dir.join(format!("{stem}.json"));
            case.write(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("fdip-fuzz: wrote {}", path.display());
        }
        case_stems.push(stem);
    }

    let meta = ReportMeta {
        seed: args.seed,
        count: args.count,
        profile: args.profile.name().to_string(),
        cases: case_stems,
    };
    let report = report_to_json(&meta, &args.opts, &outcome);
    if let Some(path) = &args.json {
        std::fs::write(path, report.to_string_pretty() + "\n")
            .map_err(|e| format!("{}: {e}", path.display()))?;
    } else {
        println!("{}", report.to_string_pretty());
    }
    let failures = outcome.failing_programs().len();
    eprintln!(
        "fdip-fuzz: {} programs, {} sims, {} violations, {} failing",
        args.count,
        outcome.sims,
        outcome.violations.len(),
        failures
    );
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_replay(args: &ReplayArgs) -> Result<ExitCode, String> {
    let mut failed = false;
    for path in &args.files {
        let case = CaseFile::read(path)?;
        let out = case.replay(&args.opts);
        if out.violations.is_empty() {
            eprintln!("fdip-fuzz: {}: clean ({} sims)", path.display(), out.sims);
        } else {
            failed = true;
            for v in &out.violations {
                eprintln!(
                    "fdip-fuzz: {}: [{}/{}] {}",
                    path.display(),
                    v.program,
                    v.config,
                    v.violation
                );
            }
        }
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_corpus(args: &CorpusArgs) -> Result<ExitCode, String> {
    std::fs::create_dir_all(&args.out).map_err(|e| format!("{}: {e}", args.out.display()))?;
    let mut written = 0u64;
    for i in 0..args.count {
        let profile = FuzzProfile::ALL[(i as usize) % FuzzProfile::ALL.len()];
        let seed = args.seed.wrapping_add(i);
        let original = generate(&profile.params(), seed);
        // Shrink for compactness while keeping the program's terminator
        // mix, so the corpus stays representative of what it exercises.
        let sig = kind_signature(&original);
        let mut keeps_shape = |cand: &CfgProgram| kind_signature(cand) == sig;
        let shrunk = shrink(&original, &mut keeps_shape, 2_000);
        let name = format!("corpus_{}_{seed:08x}", profile.name());
        let image = shrunk
            .emit(&name)
            .map_err(|e| format!("{name}: corpus CFG failed to emit: {e}"))?;
        let out = run_matrix(&[(name.clone(), Arc::new(image.clone()))], &args.opts);
        if !out.violations.is_empty() {
            return Err(format!(
                "{name}: corpus candidate violates invariants: {:?}",
                out.violations[0].violation
            ));
        }
        let case = CaseFile {
            seed,
            profile: profile.name().to_string(),
            inject: "none".to_string(),
            violations: vec![],
            program: image,
        };
        let path = args.out.join(format!("{name}.json"));
        case.write(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        written += 1;
    }
    eprintln!(
        "fdip-fuzz: wrote {written} corpus cases to {}",
        args.out.display()
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut it = std::env::args().skip(1);
    let cmd = match it.next() {
        Some(c) => c,
        None => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "run" => parse_run(&mut it).and_then(|a| cmd_run(&a)),
        "replay" => parse_replay(&mut it).and_then(|a| cmd_replay(&a)),
        "corpus" => parse_corpus(&mut it).and_then(|a| cmd_corpus(&a)),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`\n{}", usage())),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("fdip-fuzz: {e}");
            ExitCode::FAILURE
        }
    }
}
