//! `fdip-fuzz`: a seeded CFG-level workload fuzzer and
//! differential-invariant harness for the FDIP reproduction.
//!
//! The crate has four layers:
//!
//! - [`gen`] grows random-but-valid control-flow graphs (reducible
//!   loops, layered acyclic call graphs, tunable branch mixes and code
//!   footprints) and emits them as [`fdip_program::Program`] images
//!   through the typed `crates/program` CFG builder.
//! - [`matrix`] runs every generated program under the frontier config
//!   matrix and checks the cross-cutting invariants: stall-cycle
//!   partition, prefetch outcome ledger, retire bound, worker-count
//!   byte-identity, and repeated-run byte-stability.
//! - [`mod@shrink`] minimizes a failing program by iterative function /
//!   block / edge removal while the failure keeps reproducing.
//! - [`case`] / [`report`] persist minimized failures as replayable
//!   JSON cases and summarize runs as the deterministic METRICS.md
//!   Document 7 fuzz report.
//!
//! The `fdip-fuzz` binary fronts all of it: `run` for fuzz campaigns,
//! `replay` for saved cases, `corpus` for regenerating the committed
//! corpus under `tests/corpus/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod gen;
pub mod matrix;
pub mod report;
pub mod shrink;

pub use case::CaseFile;
pub use gen::{generate, FuzzParams, FuzzProfile};
pub use matrix::{
    config_matrix, fuzz_seed_range, program_fails, run_matrix, CellViolation, Inject,
    MatrixOptions, MatrixOutcome, CHECK_NAMES, FUZZ_FUNC_WARMUP, RETIRE_SLACK,
};
pub use report::{report_to_json, ReportMeta};
pub use shrink::shrink;
