//! The seeded CFG-level program generator.
//!
//! Programs are generated directly at the [`CfgProgram`] level —
//! functions, basic blocks, terminators — and emitted through the typed
//! `crates/program` seam, so every generated program is structurally
//! valid by construction *and* the emit-time validator double-checks it.
//!
//! # Reducibility
//!
//! Control-flow graphs are kept **reducible** by dominator-aware edge
//! insertion, the discipline structured-language compilers guarantee:
//!
//! * Loop regions are properly nested `[header, end]` intervals chosen
//!   while walking the block list; the region's end block carries the
//!   back-edge (`Cond` with a [`BranchBehavior::Loop`] trip model) to
//!   its header, so the header dominates the whole region.
//! * Every extra edge `src → dst` must satisfy: for each loop region
//!   containing `dst`, either `src` is inside that region too or `dst`
//!   *is* the region header. Nothing ever jumps into the middle of a
//!   loop from outside — the second-entry pattern that makes a CFG
//!   irreducible.
//! * Backward edges other than region back-edges target enclosing
//!   region headers only (a `continue`, never an arbitrary retreat).
//!
//! # Call graph
//!
//! Functions are layered by index: function `f` only ever calls
//! functions with a larger index, so the call graph is acyclic and the
//! call depth is bounded by the function count. Function 0 is the entry
//! dispatcher; its final block jumps back to block 0, so the program
//! runs forever (the engine samples as many committed instructions as
//! the simulator asks for).
//!
//! # Footprint knobs
//!
//! [`FuzzParams`] ranges over function count, blocks per function, and
//! body length span the L1i-resident-to-thrashing spectrum; the named
//! [`FuzzProfile`]s package the spectrum's interesting points.

use fdip_program::cfg::{CfgBlock, CfgFunction, CfgProgram, Terminator};
use fdip_program::{BranchBehavior, IndirectSelect};
use fdip_types::OpClass;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Tunable generator knobs. All ranges are inclusive.
#[derive(Clone, PartialEq, Debug)]
pub struct FuzzParams {
    /// Function count range (min 1; function 0 is the entry).
    pub funcs: (usize, usize),
    /// Blocks per function range (min 2: at least one body block plus
    /// the closing block).
    pub blocks: (usize, usize),
    /// Straight-line body instructions per block range.
    pub body: (usize, usize),
    /// Probability a block opens a loop region (when nesting allows).
    pub loop_prob: f64,
    /// Maximum loop-nest depth.
    pub max_loop_depth: usize,
    /// Loop trip-count range for generated back-edges.
    pub trip: (u32, u32),
    /// Probability a non-closing block ends in a call.
    pub call_prob: f64,
    /// Probability a non-closing block gets an extra conditional edge.
    pub cond_prob: f64,
    /// Probability a generated call site / extra jump is indirect.
    pub indirect_prob: f64,
    /// Fraction of body instructions that are loads/stores.
    pub mem_frac: f64,
}

impl Default for FuzzParams {
    fn default() -> Self {
        FuzzProfile::Mixed.params()
    }
}

/// Named points on the footprint spectrum.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FuzzProfile {
    /// A handful of tiny functions — comfortably L1i-resident.
    Tiny,
    /// Small programs with moderate control-flow density.
    Small,
    /// The default: wide knob ranges covering most shapes.
    Mixed,
    /// Code footprints past the L1i capacity — the thrashing regime
    /// where fetch-directed prefetching earns its keep.
    Large,
}

impl FuzzProfile {
    /// All profiles, in documentation order.
    pub const ALL: [FuzzProfile; 4] = [
        FuzzProfile::Tiny,
        FuzzProfile::Small,
        FuzzProfile::Mixed,
        FuzzProfile::Large,
    ];

    /// The profile's name (`tiny`/`small`/`mixed`/`large`).
    pub fn name(self) -> &'static str {
        match self {
            FuzzProfile::Tiny => "tiny",
            FuzzProfile::Small => "small",
            FuzzProfile::Mixed => "mixed",
            FuzzProfile::Large => "large",
        }
    }

    /// Parses a profile name.
    pub fn from_name(name: &str) -> Option<FuzzProfile> {
        FuzzProfile::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The knob settings this profile packages.
    pub fn params(self) -> FuzzParams {
        match self {
            FuzzProfile::Tiny => FuzzParams {
                funcs: (1, 3),
                blocks: (2, 5),
                body: (0, 4),
                loop_prob: 0.3,
                max_loop_depth: 1,
                trip: (2, 6),
                call_prob: 0.3,
                cond_prob: 0.4,
                indirect_prob: 0.2,
                mem_frac: 0.3,
            },
            FuzzProfile::Small => FuzzParams {
                funcs: (3, 8),
                blocks: (3, 8),
                body: (1, 8),
                loop_prob: 0.35,
                max_loop_depth: 2,
                trip: (2, 12),
                call_prob: 0.35,
                cond_prob: 0.5,
                indirect_prob: 0.25,
                mem_frac: 0.3,
            },
            FuzzProfile::Mixed => FuzzParams {
                funcs: (2, 32),
                blocks: (2, 12),
                body: (0, 12),
                loop_prob: 0.35,
                max_loop_depth: 3,
                trip: (2, 24),
                call_prob: 0.4,
                cond_prob: 0.5,
                indirect_prob: 0.3,
                mem_frac: 0.35,
            },
            FuzzProfile::Large => FuzzParams {
                funcs: (48, 96),
                blocks: (6, 16),
                body: (6, 24),
                loop_prob: 0.3,
                max_loop_depth: 2,
                trip: (2, 16),
                call_prob: 0.45,
                cond_prob: 0.45,
                indirect_prob: 0.3,
                mem_frac: 0.35,
            },
        }
    }
}

/// One open loop region while walking a function's blocks.
struct Region {
    header: usize,
    end: usize,
}

fn sample(rng: &mut SmallRng, (lo, hi): (usize, usize)) -> usize {
    let lo = lo.min(hi);
    rng.gen_range(lo..=lo.max(hi))
}

/// Generates one program description from `(params, seed)`. The same
/// pair always yields the same [`CfgProgram`].
pub fn generate(params: &FuzzParams, seed: u64) -> CfgProgram {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xcf6_f0dd);
    let nfuncs = sample(&mut rng, params.funcs).max(1);
    let funcs = (0..nfuncs)
        .map(|f| generate_function(params, &mut rng, f, nfuncs))
        .collect();
    CfgProgram { funcs }
}

fn gen_body(params: &FuzzParams, rng: &mut SmallRng) -> Vec<OpClass> {
    let len = sample(rng, params.body);
    (0..len)
        .map(|_| {
            if rng.gen_bool(params.mem_frac) {
                if rng.gen_bool(0.6) {
                    OpClass::Load
                } else {
                    OpClass::Store
                }
            } else {
                *[OpClass::Alu, OpClass::Alu, OpClass::Mul, OpClass::Fp]
                    .choose(rng)
                    .unwrap_or(&OpClass::Alu)
            }
        })
        .collect()
}

fn gen_direction(params: &FuzzParams, rng: &mut SmallRng) -> BranchBehavior {
    match rng.gen_range(0..3u32) {
        0 => BranchBehavior::Bias {
            // Two decimals keep the JSON encoding short and exact.
            p_taken: f64::from(rng.gen_range(0..=100u32)) / 100.0,
        },
        1 => {
            let len = rng.gen_range(2..=16u32) as u8;
            BranchBehavior::Pattern {
                bits: rng.gen::<u64>() & ((1u64 << len) - 1),
                len,
            }
        }
        _ => BranchBehavior::Loop {
            trip: rng.gen_range(params.trip.0..=params.trip.0.max(params.trip.1)),
        },
    }
}

fn gen_select(rng: &mut SmallRng) -> IndirectSelect {
    match rng.gen_range(0..3u32) {
        0 => IndirectSelect::Random,
        1 => IndirectSelect::RoundRobin,
        _ => IndirectSelect::Sticky {
            switch_prob: f64::from(rng.gen_range(0..=20u32)) / 100.0,
        },
    }
}

/// Picks up to `want` distinct callees deeper than `func` in the layered
/// call graph, or `None` when `func` is the deepest layer.
fn pick_callees(rng: &mut SmallRng, func: usize, nfuncs: usize, want: usize) -> Option<Vec<usize>> {
    if func + 1 >= nfuncs {
        return None;
    }
    let mut callees: Vec<usize> = (func + 1..nfuncs).collect();
    callees.shuffle(rng);
    callees.truncate(want.clamp(1, callees.len()));
    callees.sort_unstable();
    Some(callees)
}

/// `src → dst` respects the reducibility discipline: no region that
/// contains `dst` excludes `src` unless `dst` is that region's header.
fn edge_allowed(regions: &[Region], src: usize, dst: usize) -> bool {
    regions.iter().all(|r| {
        let contains_dst = (r.header..=r.end).contains(&dst);
        let contains_src = (r.header..=r.end).contains(&src);
        !contains_dst || contains_src || dst == r.header
    })
}

/// Targets reachable from `src` under the discipline: forward blocks
/// plus headers of regions enclosing `src` (backward `continue` edges).
fn allowed_targets(regions: &[Region], src: usize, nblocks: usize) -> Vec<usize> {
    (0..nblocks)
        .filter(|&dst| {
            if dst == src {
                return false;
            }
            let backward = dst < src;
            if backward {
                // Backward edges only re-enter enclosing headers.
                regions
                    .iter()
                    .any(|r| r.header == dst && (r.header..=r.end).contains(&src))
            } else {
                edge_allowed(regions, src, dst)
            }
        })
        .collect()
}

fn generate_function(
    params: &FuzzParams,
    rng: &mut SmallRng,
    func: usize,
    nfuncs: usize,
) -> CfgFunction {
    let nblocks = sample(rng, params.blocks).max(2);
    let last = nblocks - 1;

    // Choose properly-nested loop regions over blocks 0..last-1 (the
    // closing block stays outside every region: `Cond` back-edges are
    // invalid in final position).
    let mut regions: Vec<Region> = Vec::new();
    if last >= 1 {
        let mut open: Vec<Region> = Vec::new();
        for b in 0..last {
            while open.last().is_some_and(|r| r.end < b) {
                let done = open.pop();
                regions.extend(done);
            }
            let cap = open.last().map_or(last - 1, |r| r.end);
            if open.len() < params.max_loop_depth && b < cap && rng.gen_bool(params.loop_prob) {
                let end = rng.gen_range(b..=cap).max(b);
                open.push(Region { header: b, end });
            }
        }
        regions.extend(open);
        regions.sort_unstable_by_key(|r| (r.header, r.end));
    }

    let mut blocks: Vec<CfgBlock> = (0..nblocks)
        .map(|_| CfgBlock {
            body: gen_body(params, rng),
            term: Terminator::FallThrough,
        })
        .collect();

    // Region ends carry the loop back-edge.
    for r in &regions {
        blocks[r.end].term = Terminator::Cond {
            block: r.header,
            behavior: BranchBehavior::Loop {
                trip: rng.gen_range(params.trip.0..=params.trip.0.max(params.trip.1)),
            },
        };
    }

    // Closing block: entry function spins forever, others return.
    blocks[last].term = if func == 0 {
        Terminator::Jump { block: 0 }
    } else {
        Terminator::Return
    };

    // Sprinkle calls and extra edges over the remaining fall-throughs.
    for (b, blk) in blocks.iter_mut().enumerate().take(last) {
        if !matches!(blk.term, Terminator::FallThrough) {
            continue;
        }
        if rng.gen_bool(params.call_prob) {
            let fanout = rng.gen_range(1..=3usize);
            if let Some(callees) = pick_callees(rng, func, nfuncs, fanout) {
                blk.term = if rng.gen_bool(params.indirect_prob) && callees.len() > 1 {
                    Terminator::IndirectCall {
                        funcs: callees,
                        select: gen_select(rng),
                    }
                } else {
                    Terminator::Call { func: callees[0] }
                };
                continue;
            }
        }
        if rng.gen_bool(params.cond_prob) {
            let targets = allowed_targets(&regions, b, nblocks);
            if targets.is_empty() {
                continue;
            }
            if rng.gen_bool(params.indirect_prob) && targets.len() > 1 {
                let mut picks = targets;
                picks.shuffle(rng);
                picks.truncate(rng.gen_range(2..=picks.len().min(4)));
                picks.sort_unstable();
                blk.term = Terminator::IndirectJump {
                    blocks: picks,
                    select: gen_select(rng),
                };
            } else if let Some(&t) = targets.choose(rng) {
                blk.term = Terminator::Cond {
                    block: t,
                    behavior: gen_direction(params, rng),
                };
            }
        }
    }

    CfgFunction { blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdip_program::ExecutionEngine;

    #[test]
    fn generation_is_deterministic() {
        for profile in FuzzProfile::ALL {
            let p = profile.params();
            assert_eq!(generate(&p, 42), generate(&p, 42), "{profile:?}");
            // Different seeds almost surely differ.
            assert_ne!(generate(&p, 1), generate(&p, 2), "{profile:?}");
        }
    }

    #[test]
    fn every_generated_program_emits_and_validates() {
        for profile in FuzzProfile::ALL {
            let params = profile.params();
            for seed in 0..40 {
                let cfg = generate(&params, seed);
                let program = cfg
                    .emit("g")
                    .unwrap_or_else(|e| panic!("{profile:?} seed {seed}: {e}"));
                assert!(program.image().len() >= 2);
            }
        }
    }

    #[test]
    fn generated_programs_execute_forever() {
        // The engine must be able to pull an unbounded committed stream:
        // the entry dispatcher spins, and recovery handles the rest.
        let params = FuzzProfile::Mixed.params();
        for seed in 0..10 {
            let program = generate(&params, seed).emit("g").unwrap();
            let n = ExecutionEngine::new(&program, 3).take(20_000).count();
            assert_eq!(n, 20_000, "seed {seed}");
        }
    }

    #[test]
    fn profiles_span_the_footprint_spectrum() {
        let avg = |profile: FuzzProfile| -> f64 {
            let params = profile.params();
            (0..20)
                .map(|s| generate(&params, s).instr_count())
                .sum::<usize>() as f64
                / 20.0
        };
        let tiny = avg(FuzzProfile::Tiny);
        let large = avg(FuzzProfile::Large);
        // Tiny fits an L1i set comfortably; large overflows a 32 KiB
        // L1i (8192 four-byte instruction slots).
        assert!(tiny < 64.0, "tiny average footprint {tiny}");
        assert!(large > 8192.0, "large average footprint {large}");
    }

    /// Intra-function successors of block `b`.
    fn successors(f: &CfgFunction, b: usize) -> Vec<usize> {
        let fall = (b + 1 < f.blocks.len()).then_some(b + 1);
        match &f.blocks[b].term {
            Terminator::FallThrough | Terminator::Call { .. } | Terminator::IndirectCall { .. } => {
                fall.into_iter().collect()
            }
            Terminator::Jump { block } => vec![*block],
            Terminator::Cond { block, .. } => fall.into_iter().chain([*block]).collect(),
            Terminator::IndirectJump { blocks, .. } => blocks.clone(),
            Terminator::Return => vec![],
        }
    }

    /// Iterative dominator sets (bit-per-block; functions are small).
    fn dominators(f: &CfgFunction) -> Vec<u64> {
        let n = f.blocks.len();
        assert!(n <= 64, "test helper assumes <= 64 blocks");
        let all = if n == 64 { u64::MAX } else { (1 << n) - 1 };
        let mut dom = vec![all; n];
        dom[0] = 1;
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for b in 0..n {
            for s in successors(f, b) {
                preds[s].push(b);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..n {
                let meet = preds[b].iter().map(|&p| dom[p]).fold(all, |acc, d| acc & d);
                let next = meet | (1 << b);
                if next != dom[b] {
                    dom[b] = next;
                    changed = true;
                }
            }
        }
        dom
    }

    #[test]
    fn generated_cfgs_are_reducible() {
        // Textbook check: delete every edge whose target dominates its
        // source (the back edges); a reducible CFG's remainder is
        // acyclic.
        let params = FuzzProfile::Mixed.params();
        for seed in 0..40 {
            let cfg = generate(&params, seed);
            for (fi, f) in cfg.funcs.iter().enumerate() {
                let dom = dominators(f);
                let n = f.blocks.len();
                let forward: Vec<Vec<usize>> = (0..n)
                    .map(|b| {
                        successors(f, b)
                            .into_iter()
                            .filter(|&t| dom[b] & (1 << t) == 0)
                            .collect()
                    })
                    .collect();
                // Cycle check over the forward-edge remainder.
                let mut state = vec![0u8; n]; // 0 new, 1 in stack, 2 done
                let mut stack: Vec<(usize, usize)> = Vec::new();
                for root in 0..n {
                    if state[root] != 0 {
                        continue;
                    }
                    state[root] = 1;
                    stack.push((root, 0));
                    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                        if *i < forward[b].len() {
                            let t = forward[b][*i];
                            *i += 1;
                            assert_ne!(
                                state[t], 1,
                                "seed {seed} func {fi}: irreducible cycle through {t}"
                            );
                            if state[t] == 0 {
                                state[t] = 1;
                                stack.push((t, 0));
                            }
                        } else {
                            state[b] = 2;
                            stack.pop();
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn calls_only_target_deeper_layers() {
        let params = FuzzProfile::Large.params();
        let cfg = generate(&params, 11);
        for (fi, f) in cfg.funcs.iter().enumerate() {
            for blk in &f.blocks {
                match &blk.term {
                    Terminator::Call { func } => assert!(*func > fi),
                    Terminator::IndirectCall { funcs, .. } => {
                        assert!(funcs.iter().all(|&c| c > fi))
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn profile_names_round_trip() {
        for p in FuzzProfile::ALL {
            assert_eq!(FuzzProfile::from_name(p.name()), Some(p));
        }
        assert_eq!(FuzzProfile::from_name("bogus"), None);
    }
}
