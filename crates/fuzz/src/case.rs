//! Replayable fuzz cases: a minimized program plus the violations it
//! reproduced, as a standalone JSON file.
//!
//! A case file carries the *assembled image* (via the `crates/program`
//! codec), not generator parameters, so a replay simulates exactly the
//! bytes the original run simulated even if the generator evolves. The
//! same format backs the committed corpus under `tests/corpus/`:
//! corpus entries are simply cases with an empty `violations` list.

use std::path::Path;
use std::sync::Arc;

use crate::matrix::{run_matrix, MatrixOptions, MatrixOutcome};
use fdip_program::{program_from_json, program_to_json, Program};
use fdip_telemetry::{Json, SCHEMA_VERSION};

/// One replayable case.
#[derive(Clone, Debug)]
pub struct CaseFile {
    /// Generator seed that produced the (pre-shrink) program.
    pub seed: u64,
    /// Generator profile name.
    pub profile: String,
    /// Fault-injection mode active when the case was captured
    /// (`none` for organic failures and corpus entries).
    pub inject: String,
    /// `(config, invariant, detail)` triples reproduced by the program.
    pub violations: Vec<(String, String, String)>,
    /// The minimized program image.
    pub program: Program,
}

impl CaseFile {
    /// Serializes the case document.
    pub fn to_json(&self) -> Json {
        let violations: Vec<Json> = self
            .violations
            .iter()
            .map(|(config, invariant, detail)| {
                Json::obj()
                    .with("config", config.as_str())
                    .with("invariant", invariant.as_str())
                    .with("detail", detail.as_str())
            })
            .collect();
        Json::obj().with("schema_version", SCHEMA_VERSION).with(
            "case",
            Json::obj()
                .with("tool", "fdip-fuzz")
                .with("seed", self.seed)
                .with("profile", self.profile.as_str())
                .with("inject", self.inject.as_str())
                .with("violations", Json::Arr(violations))
                .with("program", program_to_json(&self.program)),
        )
    }

    /// Decodes a case document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(doc: &Json) -> Result<CaseFile, String> {
        let case = doc.get("case").ok_or("missing `case`")?;
        let get_str = |k: &str| -> Result<String, String> {
            case.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing `{k}`"))
        };
        let violations = case
            .get("violations")
            .and_then(Json::as_arr)
            .ok_or("missing `violations`")?
            .iter()
            .map(|v| {
                let field = |k: &str| {
                    v.get(k)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("violation missing `{k}`"))
                };
                Ok((field("config")?, field("invariant")?, field("detail")?))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let program = program_from_json(case.get("program").ok_or("missing `program`")?)
            .map_err(|e| e.to_string())?;
        Ok(CaseFile {
            seed: case
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("missing `seed`")?,
            profile: get_str("profile")?,
            inject: get_str("inject")?,
            violations,
            program,
        })
    }

    /// Writes the case as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty() + "\n")
    }

    /// Reads and decodes a case file.
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable files or malformed documents.
    pub fn read(path: &Path) -> Result<CaseFile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        CaseFile::from_json(&doc)
    }

    /// Replays the case's program against the full config matrix
    /// (honest mode — no injection) and returns the outcome.
    pub fn replay(&self, opts: &MatrixOptions) -> MatrixOutcome {
        let mut honest = opts.clone();
        honest.inject = crate::matrix::Inject::None;
        let batch = vec![(
            self.program.name().to_string(),
            Arc::new(self.program.clone()),
        )];
        run_matrix(&batch, &honest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FuzzProfile};

    fn sample_case() -> CaseFile {
        let program = generate(&FuzzProfile::Tiny.params(), 4)
            .emit("case_prog")
            .unwrap();
        CaseFile {
            seed: 4,
            profile: "tiny".to_string(),
            inject: "none".to_string(),
            violations: vec![(
                "fdp".to_string(),
                "stall_partition".to_string(),
                "demo".to_string(),
            )],
            program,
        }
    }

    #[test]
    fn case_round_trips_through_text() {
        let case = sample_case();
        let text = case.to_json().to_string_pretty();
        let back = CaseFile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.seed, case.seed);
        assert_eq!(back.profile, case.profile);
        assert_eq!(back.violations, case.violations);
        assert_eq!(back.program.image().len(), case.program.image().len());
        assert_eq!(back.to_json().to_string(), case.to_json().to_string());
    }

    #[test]
    fn malformed_cases_are_rejected() {
        assert!(CaseFile::from_json(&Json::obj()).is_err());
        let mut doc = sample_case().to_json();
        doc.set("case", Json::obj().with("tool", "fdip-fuzz"));
        assert!(CaseFile::from_json(&doc).is_err());
    }

    #[test]
    fn replay_of_a_healthy_case_is_clean() {
        let case = sample_case();
        let opts = MatrixOptions {
            warmup: 500,
            measure: 1_500,
            jobs: 2,
            inject: crate::matrix::Inject::StallLeak, // replay must ignore
        };
        let out = case.replay(&opts);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }
}
