//! Test-case minimization: iterative function / block / edge removal
//! while the failure keeps reproducing.
//!
//! The shrinker is generator-agnostic — it works on the [`CfgProgram`]
//! description, not on generator parameters — and fully deterministic:
//! candidates are enumerated in a fixed order and the first one that
//! still reproduces the failure is adopted (greedy descent, restarted
//! after every adoption until a whole sweep adopts nothing or the trial
//! budget runs out). Every candidate is validated through the typed
//! `emit` seam before the predicate sees it, so the shrinker can never
//! hand the harness a malformed program.

use fdip_program::cfg::{CfgProgram, Terminator};

/// Reduction passes in sweep order, most aggressive first.
fn candidates(p: &CfgProgram) -> Vec<CfgProgram> {
    let mut out = Vec::new();
    // 1. Drop a whole function (deepest first keeps the layering tight).
    for f in (1..p.funcs.len()).rev() {
        out.push(remove_function(p, f));
    }
    // 2. Drop a non-closing block.
    for (fi, func) in p.funcs.iter().enumerate() {
        for b in 0..func.blocks.len().saturating_sub(1) {
            out.push(remove_block(p, fi, b));
        }
    }
    // 3. Simplify a terminator (remove one edge / call).
    for (fi, func) in p.funcs.iter().enumerate() {
        for (b, blk) in func.blocks.iter().enumerate() {
            if let Some(simpler) = simplify_terminator(&blk.term, b + 1 == func.blocks.len()) {
                let mut next = p.clone();
                next.funcs[fi].blocks[b].term = simpler;
                out.push(next);
            }
        }
    }
    // 4. Halve a block body.
    for (fi, func) in p.funcs.iter().enumerate() {
        for (b, blk) in func.blocks.iter().enumerate() {
            if !blk.body.is_empty() {
                let mut next = p.clone();
                next.funcs[fi].blocks[b].body.truncate(blk.body.len() / 2);
                out.push(next);
            }
        }
    }
    out
}

fn remove_function(p: &CfgProgram, target: usize) -> CfgProgram {
    let mut next = p.clone();
    next.funcs.remove(target);
    for func in &mut next.funcs {
        for blk in &mut func.blocks {
            blk.term = match blk.term.clone() {
                Terminator::Call { func } if func == target => Terminator::FallThrough,
                Terminator::Call { func } if func > target => Terminator::Call { func: func - 1 },
                Terminator::IndirectCall { funcs, select } => {
                    let remapped: Vec<usize> = funcs
                        .into_iter()
                        .filter(|&f| f != target)
                        .map(|f| if f > target { f - 1 } else { f })
                        .collect();
                    if remapped.is_empty() {
                        Terminator::FallThrough
                    } else {
                        Terminator::IndirectCall {
                            funcs: remapped,
                            select,
                        }
                    }
                }
                other => other,
            };
        }
    }
    next
}

fn remove_block(p: &CfgProgram, func: usize, target: usize) -> CfgProgram {
    let mut next = p.clone();
    next.funcs[func].blocks.remove(target);
    let remap = |t: usize| if t > target { t - 1 } else { t };
    for blk in &mut next.funcs[func].blocks {
        blk.term = match blk.term.clone() {
            Terminator::Jump { block } => Terminator::Jump {
                block: remap(block),
            },
            Terminator::Cond { block, behavior } => Terminator::Cond {
                block: remap(block),
                behavior,
            },
            Terminator::IndirectJump { blocks, select } => Terminator::IndirectJump {
                blocks: blocks.into_iter().map(remap).collect(),
                select,
            },
            other => other,
        };
    }
    next
}

/// One-step-simpler terminator, or `None` if already minimal. `last`
/// blocks keep a function-closing form.
fn simplify_terminator(t: &Terminator, last: bool) -> Option<Terminator> {
    match t {
        Terminator::FallThrough | Terminator::Return => None,
        Terminator::Jump { .. } if last => None,
        Terminator::Jump { .. } => Some(Terminator::FallThrough),
        Terminator::Cond { .. } => Some(Terminator::FallThrough),
        Terminator::Call { .. } => Some(Terminator::FallThrough),
        Terminator::IndirectCall { funcs, .. } => Some(Terminator::Call { func: funcs[0] }),
        Terminator::IndirectJump { blocks, .. } => Some(Terminator::Jump { block: blocks[0] }),
    }
}

/// Greedily minimizes `program` while `fails` keeps returning `true`.
///
/// `fails` is only ever called on programs that pass the typed CFG
/// validator; `max_trials` bounds the number of predicate evaluations
/// (each may be a full config-matrix run). Returns the smallest failing
/// program found — `program` itself if nothing smaller reproduces.
pub fn shrink(
    program: &CfgProgram,
    fails: &mut dyn FnMut(&CfgProgram) -> bool,
    max_trials: usize,
) -> CfgProgram {
    let mut best = program.clone();
    let mut trials = 0usize;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if trials >= max_trials {
                return best;
            }
            if cand.validate().is_err() {
                continue;
            }
            trials += 1;
            if fails(&cand) {
                best = cand;
                improved = true;
                break; // restart enumeration from the smaller program
            }
        }
        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FuzzProfile};
    use fdip_program::cfg::{CfgBlock, CfgFunction};

    fn has_indirect_call(p: &CfgProgram) -> bool {
        p.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .any(|b| matches!(b.term, Terminator::IndirectCall { .. }))
    }

    #[test]
    fn shrinks_to_a_minimal_reproducer() {
        // Find a generated program containing an indirect call and
        // shrink it while preserving that property.
        let params = FuzzProfile::Mixed.params();
        let original = (0..100)
            .map(|s| generate(&params, s))
            .find(has_indirect_call)
            .expect("mixed profile generates indirect calls");
        let mut predicate = has_indirect_call;
        let shrunk = shrink(&original, &mut predicate, 500);
        assert!(has_indirect_call(&shrunk));
        assert!(shrunk.validate().is_ok());
        assert!(
            shrunk.instr_count() < original.instr_count(),
            "no reduction: {} -> {}",
            original.instr_count(),
            shrunk.instr_count()
        );
        // A minimal indirect-call reproducer needs at most the entry
        // plus two callees, each as small as a function can be.
        assert!(shrunk.funcs.len() <= 3, "{} funcs", shrunk.funcs.len());
        assert!(
            shrunk.instr_count() <= 10,
            "{} instrs",
            shrunk.instr_count()
        );
    }

    #[test]
    fn non_reproducing_predicate_returns_original() {
        let original = generate(&FuzzProfile::Tiny.params(), 3);
        let shrunk = shrink(&original, &mut |_| false, 100);
        assert_eq!(shrunk, original);
    }

    #[test]
    fn trial_budget_is_respected() {
        let original = generate(&FuzzProfile::Mixed.params(), 9);
        let mut calls = 0usize;
        let _ = shrink(
            &original,
            &mut |_| {
                calls += 1;
                true
            },
            7,
        );
        assert!(calls <= 7, "{calls} predicate calls");
    }

    #[test]
    fn function_removal_remaps_calls() {
        // entry calls f1 and f2; removing f1 must remap the f2 call.
        let leaf = CfgFunction {
            blocks: vec![CfgBlock {
                body: vec![],
                term: Terminator::Return,
            }],
        };
        let p = CfgProgram {
            funcs: vec![
                CfgFunction {
                    blocks: vec![
                        CfgBlock {
                            body: vec![],
                            term: Terminator::Call { func: 2 },
                        },
                        CfgBlock {
                            body: vec![],
                            term: Terminator::Jump { block: 0 },
                        },
                    ],
                },
                leaf.clone(),
                leaf,
            ],
        };
        let next = remove_function(&p, 1);
        assert!(next.validate().is_ok());
        assert_eq!(next.funcs[0].blocks[0].term, Terminator::Call { func: 1 });
    }

    #[test]
    fn block_removal_remaps_edges() {
        let p = CfgProgram {
            funcs: vec![CfgFunction {
                blocks: vec![
                    CfgBlock {
                        body: vec![],
                        term: Terminator::FallThrough,
                    },
                    CfgBlock {
                        body: vec![],
                        term: Terminator::FallThrough,
                    },
                    CfgBlock {
                        body: vec![],
                        term: Terminator::Jump { block: 1 },
                    },
                ],
            }],
        };
        let next = remove_block(&p, 0, 1);
        assert!(next.validate().is_ok());
        // The jump followed its target's new index.
        assert_eq!(next.funcs[0].blocks[1].term, Terminator::Jump { block: 1 });
    }
}
