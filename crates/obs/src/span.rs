//! Wall-clock lifecycle spans for the daemon, exported as Chrome
//! `trace_event` JSON.
//!
//! `fdip-trace` records *cycle-domain* events inside a simulation; this
//! module records the *wall-clock* life of a grid inside `fdip-serve`:
//! submit → classify → simulate → assemble → respond, with coalesce
//! and resume edges as instants. The export uses the same Document 4
//! vocabulary (`traceEvents`, `ph`, `ts`, `dur`, `args`, …) so a dump
//! opens in Perfetto/`chrome://tracing` beside the simulator's cycle
//! traces, and the schema-drift lint sees no new wire keys.
//!
//! A [`SpanRecorder`] is created per grid, carries its own epoch
//! ([`crate::clock::Timer`]), and keeps at most [`SPAN_CAPACITY`]
//! events (earliest win — the interesting part of a runaway grid is
//! how it started). [`SpanRecorder::write`] dumps atomically via
//! tmp + rename, mirroring every other artifact writer in the repo.

use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use fdip_telemetry::Json;

use crate::clock::Timer;

/// Maximum events kept per recorder; later events are counted in
/// `metadata.dropped_events` instead of stored.
pub const SPAN_CAPACITY: usize = 16 * 1024;

/// Logical track (Chrome `tid`) an event belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Track {
    /// Grid-level lifecycle (submit, classify, assemble, respond).
    Grid,
    /// Per-cell work (simulate slices, cache commits).
    Cells,
}

impl Track {
    fn tid(self) -> u64 {
        match self {
            Track::Grid => 0,
            Track::Cells => 1,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Track::Grid => "grid lifecycle",
            Track::Cells => "cells",
        }
    }
}

enum Ev {
    /// Complete event (`ph:"X"`): name, track, start µs, duration µs,
    /// args.
    Slice(String, Track, u64, u64, Json),
    /// Instant event (`ph:"i"`): name, track, timestamp µs, args.
    Mark(String, Track, u64, Json),
}

struct Inner {
    events: Vec<Ev>,
    dropped: u64,
}

/// Records the wall-clock spans of one grid's lifecycle.
pub struct SpanRecorder {
    t0: Timer,
    inner: Mutex<Inner>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::new()
    }
}

impl SpanRecorder {
    /// A recorder whose epoch (`ts = 0`) is now.
    pub fn new() -> SpanRecorder {
        SpanRecorder {
            t0: Timer::start(),
            inner: Mutex::new(Inner {
                events: Vec::new(),
                dropped: 0,
            }),
        }
    }

    /// Microseconds since the recorder's epoch — capture before a
    /// unit of work, pass to [`SpanRecorder::slice`] after it.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed_micros()
    }

    fn push(&self, ev: Ev) {
        let mut inner = self.inner.lock().expect("span lock");
        if inner.events.len() >= SPAN_CAPACITY {
            inner.dropped += 1;
        } else {
            inner.events.push(ev);
        }
    }

    /// Records an instant (a point in time) on `track`, stamped now.
    pub fn instant(&self, track: Track, name: &str, args: Json) {
        self.push(Ev::Mark(name.to_string(), track, self.now_us(), args));
    }

    /// Records a complete span on `track` from `start_us`
    /// (a prior [`SpanRecorder::now_us`]) until now.
    pub fn slice(&self, track: Track, name: &str, start_us: u64, args: Json) {
        let dur = self.now_us().saturating_sub(start_us);
        self.push(Ev::Slice(name.to_string(), track, start_us, dur, args));
    }

    /// Events recorded so far (for tests and capacity checks).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("span lock").events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events rejected by the capacity cap.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("span lock").dropped
    }

    /// The Chrome `trace_event` document: thread-name metadata for both
    /// tracks, then every event in recording order.
    pub fn to_chrome_trace(&self) -> Json {
        let inner = self.inner.lock().expect("span lock");
        let mut events = Vec::with_capacity(inner.events.len() + 2);
        for track in [Track::Grid, Track::Cells] {
            events.push(
                Json::obj()
                    .with("name", "thread_name")
                    .with("ph", "M")
                    .with("pid", 1u64)
                    .with("tid", track.tid())
                    .with("args", Json::obj().with("name", track.name())),
            );
        }
        for ev in &inner.events {
            events.push(match ev {
                Ev::Slice(name, track, ts, dur, args) => Json::obj()
                    .with("name", name.as_str())
                    .with("ph", "X")
                    .with("pid", 1u64)
                    .with("tid", track.tid())
                    .with("ts", *ts)
                    .with("dur", *dur)
                    .with("args", args.clone()),
                Ev::Mark(name, track, ts, args) => Json::obj()
                    .with("name", name.as_str())
                    .with("ph", "i")
                    .with("s", "t")
                    .with("pid", 1u64)
                    .with("tid", track.tid())
                    .with("ts", *ts)
                    .with("args", args.clone()),
            });
        }
        Json::obj()
            .with("traceEvents", Json::Arr(events))
            .with("displayTimeUnit", "ms")
            .with(
                "metadata",
                Json::obj()
                    .with("tool", "fdip-serve")
                    .with("clock", "wall-clock microseconds since grid submission")
                    .with("dropped_events", inner.dropped)
                    .with("ring_capacity", SPAN_CAPACITY as u64),
            )
    }

    /// Writes the trace to `<dir>/grid-<grid_id>.json` atomically
    /// (tmp + rename), creating `dir` if needed.
    pub fn write(&self, dir: &Path, grid_id: &str) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        // Grid ids are hex content hashes, but sanitize anyway so a
        // hostile id cannot escape the trace directory.
        let safe: String = grid_id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("grid-{safe}.json"));
        let tmp = dir.join(format!(".grid-{safe}.json.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_chrome_trace().to_string_pretty().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_carries_both_tracks_and_events_in_order() {
        let rec = SpanRecorder::new();
        let start = rec.now_us();
        rec.instant(Track::Grid, "submit", Json::obj().with("cells", 4u64));
        rec.slice(
            Track::Cells,
            "simulate",
            start,
            Json::obj().with("cell", 0u64),
        );
        let doc = rec.to_chrome_trace();
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        assert_eq!(events.len(), 4); // 2 metas + 2 events
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(events[2].get("name").and_then(Json::as_str), Some("submit"));
        assert_eq!(events[2].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(events[2].get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(events[3].get("ph").and_then(Json::as_str), Some("X"));
        assert!(events[3].get("dur").is_some());
        let meta = doc.get("metadata").expect("metadata");
        assert_eq!(meta.get("tool").and_then(Json::as_str), Some("fdip-serve"));
        assert_eq!(meta.get("dropped_events").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn capacity_keeps_earliest_and_counts_drops() {
        let rec = SpanRecorder::new();
        for i in 0..(SPAN_CAPACITY + 10) {
            rec.instant(Track::Grid, "e", Json::obj().with("i", i as u64));
        }
        assert_eq!(rec.len(), SPAN_CAPACITY);
        assert_eq!(rec.dropped(), 10);
        let doc = rec.to_chrome_trace();
        let meta = doc.get("metadata").unwrap();
        assert_eq!(meta.get("dropped_events").and_then(Json::as_u64), Some(10));
    }

    #[test]
    fn write_dumps_atomically_and_sanitizes_ids() {
        let dir = std::env::temp_dir().join(format!("fdip-obs-span-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = SpanRecorder::new();
        rec.instant(Track::Grid, "submit", Json::obj());
        rec.write(&dir, "ab12/../evil").expect("write");
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries, vec!["grid-ab12----evil.json".to_string()]);
        let text = std::fs::read_to_string(dir.join(&entries[0])).unwrap();
        let parsed = Json::parse(&text).expect("valid json");
        assert!(parsed.get("traceEvents").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
