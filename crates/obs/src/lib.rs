#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fdip-obs` — the operational observability plane for the serving
//! stack: structured logging, a metrics registry with Prometheus text
//! exposition, and wall-clock span tracing for grid lifecycles.
//!
//! The simulator already has *result* telemetry (`fdip-telemetry`,
//! Documents 1–8 of `docs/METRICS.md`) and *cycle-domain* tracing
//! (`fdip-trace`). What it lacked was the operational layer an
//! operator of the `fdip-serve` daemon needs: "why is this grid slow",
//! "what is my cache hit rate over time", "which worker is wedged".
//! This crate provides that layer, dependency-free, in four pieces:
//!
//! * [`log`] — leveled, target-tagged structured log records (one JSON
//!   object per line), filtered by an env/flag spec
//!   (`FDIP_LOG=serve=debug,exec=info`), kept in a bounded in-memory
//!   ring (served by the daemon at `GET /v1/logs`) and optionally
//!   mirrored to stderr and a size-rotated file.
//! * [`metrics`] — named counters, gauges, and histograms (built on
//!   [`fdip_telemetry::Histogram`]) grouped in a [`metrics::Registry`]
//!   and rendered in Prometheus text exposition format
//!   (`GET /v1/metrics` on the daemon).
//! * [`expo`] — an in-repo parser/validator for that exposition
//!   format, used by tests and `fdip-serve ctl metrics` so the scrape
//!   surface is checked against an independent reading of the spec.
//! * [`span`] — a bounded recorder of wall-clock lifecycle spans
//!   (submit → classify → simulate → assemble → respond), exported as
//!   Chrome `trace_event` JSON in the Document 4 vocabulary so a slow
//!   grid opens in Perfetto next to the simulator's cycle traces.
//!
//! **Determinism contract.** Observability must never perturb results:
//! every wall-clock read in this crate is confined to [`clock`]
//! (allowlisted in `lint-allow.txt`), nothing here feeds a simulation,
//! and `scripts/verify.sh` diffs stripped `results.json` with the
//! whole plane enabled versus disabled. The `fdip-lint` determinism
//! pass covers `crates/obs` like every result-affecting crate.

pub mod clock;
pub mod expo;
pub mod log;
pub mod metrics;
pub mod span;
