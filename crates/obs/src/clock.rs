//! Wall-clock access for the observability plane — the **only** module
//! in this crate (and, together with nothing else, the only one in the
//! serving stack) that reads `Instant`/`SystemTime`.
//!
//! Confinement is the point: `fdip-lint`'s determinism pass covers
//! `crates/obs`, and the two clock reads here carry `lint-allow.txt`
//! justifications. Everything downstream (log timestamps, request
//! latencies, span durations) is operator telemetry that never enters
//! a `results.json`.

use std::time::{Instant, SystemTime};

/// A started stopwatch; the only way to measure elapsed wall time in
/// the observability plane.
#[derive(Clone, Debug)]
pub struct Timer(Instant);

impl Timer {
    /// Starts the stopwatch now.
    pub fn start() -> Timer {
        Timer(Instant::now())
    }

    /// Microseconds elapsed since [`Timer::start`], saturating.
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`Timer::start`], as a float.
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Seconds since the Unix epoch (0 if the system clock is before it).
pub fn unix_now_secs() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_now_millis() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotonic_and_clock_is_sane() {
        let t = Timer::start();
        let a = t.elapsed_micros();
        let b = t.elapsed_micros();
        assert!(b >= a);
        assert!(t.elapsed_secs() >= 0.0);
        // Both epoch reads agree to within a generous margin.
        let (s, ms) = (unix_now_secs(), unix_now_millis());
        assert!(ms / 1000 >= s.saturating_sub(2) && ms / 1000 <= s + 2);
        assert!(s > 1_500_000_000, "system clock is before 2017?");
    }
}
