//! An independent parser/validator for the Prometheus text exposition
//! format emitted by [`crate::metrics::Registry::render`].
//!
//! Tests and `fdip-serve ctl metrics` parse every scrape with this
//! module rather than trusting the renderer, so the two sides check
//! each other: the renderer encodes one reading of the format spec,
//! this parser encodes another, and a scrape is accepted only when
//! both agree. Validation is strict where the spec is strict —
//! `# TYPE` must precede samples, histogram `_bucket` series must be
//! cumulative with a `+Inf` bucket equal to `_count` — and lenient
//! where scrapers are lenient (unknown families default to `untyped`).

use std::collections::BTreeMap;

/// A parsed sample: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// The metric name as written (including `_bucket`/`_sum`/`_count`
    /// suffixes on histogram series).
    pub name: String,
    /// Label pairs in the order written.
    pub labels: Vec<(String, String)>,
    /// The sample value (`NaN`/`+Inf`/`-Inf` are legal).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One metric family: its `# TYPE`, `# HELP`, and samples.
#[derive(Clone, Debug, Default)]
pub struct ParsedFamily {
    /// `counter`, `gauge`, `histogram`, or `untyped` when no `# TYPE`
    /// line was seen.
    pub kind: String,
    /// The `# HELP` text (empty if absent).
    pub help: String,
    /// Samples in scrape order (for histograms this includes the
    /// `_bucket`/`_sum`/`_count` series).
    pub samples: Vec<Sample>,
}

/// A fully parsed scrape, keyed by family name.
#[derive(Clone, Debug, Default)]
pub struct Scrape {
    /// Families keyed by base name (histogram suffixes folded in).
    pub families: BTreeMap<String, ParsedFamily>,
}

impl Scrape {
    /// The total of a counter family, summed over its label sets.
    /// `None` if the family is missing or not a counter.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        let family = self.families.get(name)?;
        if family.kind != "counter" {
            return None;
        }
        let mut total = 0u64;
        for s in &family.samples {
            if s.value < 0.0 || s.value.fract() != 0.0 {
                return None;
            }
            total += s.value as u64;
        }
        Some(total)
    }

    /// The value of a single-sample gauge family.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let family = self.families.get(name)?;
        if family.kind != "gauge" || family.samples.len() != 1 {
            return None;
        }
        Some(family.samples[0].value)
    }

    /// The `_count` of a histogram family (summed over label sets).
    pub fn histogram_count(&self, name: &str) -> Option<u64> {
        let family = self.families.get(name)?;
        if family.kind != "histogram" {
            return None;
        }
        let mut total = 0u64;
        let mut seen = false;
        for s in &family.samples {
            if s.name == format!("{name}_count") {
                seen = true;
                total += s.value as u64;
            }
        }
        seen.then_some(total)
    }
}

/// A validation failure, with the 1-based line it was found on
/// (0 for whole-scrape failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpoError {
    /// 1-based offending line, or 0 for cross-line failures.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ExpoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "exposition: {}", self.msg)
        } else {
            write!(f, "exposition line {}: {}", self.line, self.msg)
        }
    }
}

fn err(line: usize, msg: impl Into<String>) -> ExpoError {
    ExpoError {
        line,
        msg: msg.into(),
    }
}

fn is_name(name: &str, allow_colon: bool) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    let ok = |c: char, first: bool| {
        c.is_ascii_alphabetic()
            || c == '_'
            || (allow_colon && c == ':')
            || (!first && c.is_ascii_digit())
    };
    ok(first, true) && chars.all(|c| ok(c, false))
}

/// Strips a histogram suffix to find the base family name.
fn base_name(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

fn parse_value(text: &str, line: usize) -> Result<f64, ExpoError> {
    match text {
        "NaN" => Ok(f64::NAN),
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        other => other
            .parse::<f64>()
            .map_err(|_| err(line, format!("unparseable value {other:?}"))),
    }
}

/// Label pairs in the order written on a sample line.
type Labels = Vec<(String, String)>;

/// Parses `{k="v",…}` starting at the byte after `{`; returns the
/// labels and the rest of the line after `}`.
fn parse_labels(text: &str, line: usize) -> Result<(Labels, &str), ExpoError> {
    let mut labels = Vec::new();
    let mut rest = text.trim_start();
    loop {
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| err(line, "label without '='"))?;
        let key = rest[..eq].trim();
        if !is_name(key, false) {
            return Err(err(line, format!("invalid label name {key:?}")));
        }
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(err(line, "label value must be quoted"));
        }
        let mut value = String::new();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(err(
                            line,
                            format!("bad escape \\{:?} in label value", other.map(|(_, c)| c)),
                        ))
                    }
                },
                '"' => {
                    end = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| err(line, "unterminated label value"))?;
        labels.push((key.to_string(), value));
        rest = rest[end..].trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.starts_with('}') {
            return Err(err(line, "expected ',' or '}' after label"));
        }
    }
}

/// Parses a scrape without cross-sample validation. Use
/// [`validate`] for the full check.
pub fn parse(text: &str) -> Result<Scrape, ExpoError> {
    let mut scrape = Scrape::default();
    // Families whose # TYPE/# HELP we have seen, to reject duplicates
    // and samples that precede their # TYPE.
    let mut typed: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            let (keyword, rest) = match comment.split_once(' ') {
                Some((k @ ("HELP" | "TYPE"), rest)) => (k, rest),
                _ => continue, // plain comment
            };
            let (name, payload) = rest
                .split_once(' ')
                .ok_or_else(|| err(lineno, format!("# {keyword} without payload")))?;
            if !is_name(name, true) {
                return Err(err(lineno, format!("invalid metric name {name:?}")));
            }
            let family = scrape.families.entry(name.to_string()).or_default();
            if keyword == "HELP" {
                if !family.help.is_empty() {
                    return Err(err(lineno, format!("duplicate # HELP for {name}")));
                }
                family.help = payload.to_string();
            } else {
                if typed.contains_key(name) {
                    return Err(err(lineno, format!("duplicate # TYPE for {name}")));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&payload) {
                    return Err(err(lineno, format!("unknown type {payload:?}")));
                }
                if !family.samples.is_empty() {
                    return Err(err(lineno, format!("# TYPE for {name} after its samples")));
                }
                family.kind = payload.to_string();
                typed.insert(name.to_string(), lineno);
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let name_end = line
            .find(|c: char| c == '{' || c.is_ascii_whitespace())
            .ok_or_else(|| err(lineno, "sample without value"))?;
        let name = &line[..name_end];
        if !is_name(name, true) {
            return Err(err(lineno, format!("invalid metric name {name:?}")));
        }
        let rest = &line[name_end..];
        let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
            parse_labels(body, lineno)?
        } else {
            (Vec::new(), rest)
        };
        let value_text = rest.trim();
        if value_text.is_empty() {
            return Err(err(lineno, "sample without value"));
        }
        // Timestamps (a second field) are legal in the format but the
        // renderer never emits them; reject to catch renderer drift.
        if value_text.split_ascii_whitespace().count() != 1 {
            return Err(err(lineno, "unexpected trailing field after value"));
        }
        let value = parse_value(value_text, lineno)?;
        let base = base_name(name);
        let family_name = if typed.contains_key(base) { base } else { name };
        let family = scrape.families.entry(family_name.to_string()).or_default();
        if family.kind.is_empty() {
            family.kind = "untyped".to_string();
        }
        family.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(scrape)
}

/// Parses and validates: every family has a `# TYPE`, counters are
/// non-negative finite integers, and each histogram label set has
/// cumulative non-decreasing buckets ending in `+Inf` equal to its
/// `_count`, plus exactly one `_sum` and `_count`.
pub fn validate(text: &str) -> Result<Scrape, ExpoError> {
    let scrape = parse(text)?;
    for (name, family) in &scrape.families {
        if family.kind == "untyped" {
            return Err(err(0, format!("family {name} has no # TYPE")));
        }
        match family.kind.as_str() {
            "counter" => {
                for s in &family.samples {
                    if s.name != *name {
                        return Err(err(
                            0,
                            format!("counter {name} has stray series {}", s.name),
                        ));
                    }
                    if !(s.value.is_finite() && s.value >= 0.0 && s.value.fract() == 0.0) {
                        return Err(err(
                            0,
                            format!("counter {name} sample {} is not a whole number", s.value),
                        ));
                    }
                }
            }
            "gauge" => {
                for s in &family.samples {
                    if s.name != *name {
                        return Err(err(0, format!("gauge {name} has stray series {}", s.name)));
                    }
                }
            }
            "histogram" => validate_histogram(name, family)?,
            other => {
                return Err(err(
                    0,
                    format!("family {name} has unsupported type {other}"),
                ))
            }
        }
    }
    Ok(scrape)
}

/// Groups a histogram family's samples by their non-`le` labels and
/// checks each group independently.
fn validate_histogram(name: &str, family: &ParsedFamily) -> Result<(), ExpoError> {
    #[derive(Default)]
    struct Group {
        buckets: Vec<(f64, f64)>, // (le, cumulative count)
        sum: Option<f64>,
        count: Option<f64>,
    }
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    let group_key = |labels: &[(String, String)]| {
        let mut pairs: Vec<String> = labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        pairs.sort();
        pairs.join(",")
    };
    for s in &family.samples {
        let group = groups.entry(group_key(&s.labels)).or_default();
        if s.name == format!("{name}_bucket") {
            let le = s
                .label("le")
                .ok_or_else(|| err(0, format!("{name}_bucket without le label")))?;
            let le = parse_value(le, 0)
                .map_err(|_| err(0, format!("{name}_bucket has unparseable le")))?;
            group.buckets.push((le, s.value));
        } else if s.name == format!("{name}_sum") {
            if group.sum.replace(s.value).is_some() {
                return Err(err(0, format!("duplicate {name}_sum")));
            }
        } else if s.name == format!("{name}_count") {
            if group.count.replace(s.value).is_some() {
                return Err(err(0, format!("duplicate {name}_count")));
            }
        } else {
            return Err(err(
                0,
                format!("histogram {name} has stray series {}", s.name),
            ));
        }
    }
    for (key, group) in &groups {
        let ctx = if key.is_empty() {
            name.to_string()
        } else {
            format!("{name}{{{key}}}")
        };
        let count = group
            .count
            .ok_or_else(|| err(0, format!("histogram {ctx} missing _count")))?;
        if group.sum.is_none() {
            return Err(err(0, format!("histogram {ctx} missing _sum")));
        }
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = 0.0f64;
        let mut saw_inf = false;
        for &(le, cum) in &group.buckets {
            if le <= prev_le {
                return Err(err(
                    0,
                    format!("histogram {ctx} buckets not ascending by le"),
                ));
            }
            if cum < prev_cum {
                return Err(err(0, format!("histogram {ctx} buckets not cumulative")));
            }
            prev_le = le;
            prev_cum = cum;
            if le.is_infinite() {
                saw_inf = true;
                if (cum - count).abs() > f64::EPSILON {
                    return Err(err(
                        0,
                        format!("histogram {ctx} +Inf bucket {cum} != _count {count}"),
                    ));
                }
            }
        }
        if !saw_inf {
            return Err(err(0, format!("histogram {ctx} missing +Inf bucket")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renderer_output_validates() {
        let r = Registry::new();
        r.counter("fdip_a_total", "a").add(3);
        r.counter_with("fdip_b_total", "b", &[("status", "200")])
            .inc();
        r.counter_with("fdip_b_total", "b", &[("status", "404")])
            .inc();
        r.gauge("fdip_c", "c").set(1.25);
        let h = r.histogram_with("fdip_d_us", "d", &[("op", "x")]);
        for v in [0u64, 5, 5, 100] {
            h.observe(v);
        }
        let scrape = validate(&r.render()).expect("render must validate");
        assert_eq!(scrape.counter_total("fdip_a_total"), Some(3));
        assert_eq!(scrape.counter_total("fdip_b_total"), Some(2));
        assert_eq!(scrape.gauge_value("fdip_c"), Some(1.25));
        assert_eq!(scrape.histogram_count("fdip_d_us"), Some(4));
        let d = &scrape.families["fdip_d_us"];
        assert_eq!(d.kind, "histogram");
    }

    #[test]
    fn label_escapes_round_trip() {
        let r = Registry::new();
        r.counter_with("fdip_e_total", "e", &[("path", "a\"b\\c\nd")])
            .inc();
        let scrape = validate(&r.render()).unwrap();
        let sample = &scrape.families["fdip_e_total"].samples[0];
        assert_eq!(sample.label("path"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn type_after_samples_is_rejected() {
        let text = "fdip_x_total 1\n# TYPE fdip_x_total counter\n";
        assert!(parse(text).unwrap_err().msg.contains("after its samples"));
    }

    #[test]
    fn missing_type_fails_validation_but_parses() {
        let text = "fdip_x_total 1\n";
        assert!(parse(text).is_ok());
        assert!(validate(text).unwrap_err().msg.contains("no # TYPE"));
    }

    #[test]
    fn non_cumulative_histogram_is_rejected() {
        let text = "\
# TYPE fdip_h histogram
fdip_h_bucket{le=\"1\"} 5
fdip_h_bucket{le=\"2\"} 3
fdip_h_bucket{le=\"+Inf\"} 5
fdip_h_sum 9
fdip_h_count 5
";
        assert!(validate(text).unwrap_err().msg.contains("not cumulative"));
    }

    #[test]
    fn inf_bucket_must_match_count() {
        let text = "\
# TYPE fdip_h histogram
fdip_h_bucket{le=\"+Inf\"} 4
fdip_h_sum 9
fdip_h_count 5
";
        assert!(validate(text).unwrap_err().msg.contains("!= _count"));
    }

    #[test]
    fn fractional_counters_are_rejected() {
        let text = "# TYPE fdip_x_total counter\nfdip_x_total 1.5\n";
        assert!(validate(text).unwrap_err().msg.contains("whole number"));
    }

    #[test]
    fn junk_lines_are_diagnosed_with_line_numbers() {
        let text = "# TYPE fdip_x counter\nfdip_x{bad} 1\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("'='"), "{e}");
    }
}
